"""Figure 25: context transcoder vs counter-division period (register bus).

Tables of 16 and 64 entries, divide period swept 4..16384.  Paper
shape: savings level off around a period of ~4096 cycles — dividing too
often starves the counters, dividing too rarely lets stale phases camp
in the table.
"""

import numpy as np
from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import format_series
from repro.coding import ContextTranscoder, VALUE_BASED
from repro.energy import normalized_energy_removed
from repro.workloads import register_trace

BENCHMARKS = ("li", "compress", "gcc", "perl", "fpppp", "apsi", "swim")
PERIODS = (4, 16, 64, 256, 1024, 4096, 16384)
TABLE_SIZES = (16, 64)


def compute():
    series = {}
    for name in BENCHMARKS:
        trace = register_trace(name, BENCH_CYCLES)
        for table in TABLE_SIZES:
            series[f"{name}:{table}"] = [
                normalized_energy_removed(
                    trace,
                    ContextTranscoder(
                        table, 8, VALUE_BASED, divide_period=period
                    ).encode_trace(trace),
                )
                for period in PERIODS
            ]
    return series


def test_fig25(benchmark):
    series = run_once(benchmark, compute)
    print_banner("Figure 25: % energy removed vs counter divide period")
    print(format_series("period", list(PERIODS), series, precision=1))

    index4096 = PERIODS.index(4096)
    for key, curve in series.items():
        curve = np.array(curve)
        # Levels off: past 4096 the curve moves by little.
        assert abs(curve[-1] - curve[index4096]) < 5.0, key
        # 4096 is at least competitive with the starved period-4 config.
        assert curve[index4096] >= curve[0] - 3.0, key
