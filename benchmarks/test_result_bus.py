"""The abstract's other internal bus: reorder-buffer/writeback traffic.

The paper's abstract claims "an average of 36% savings in transitions
on internal buses such as the reorder buffer and register file".  The
figures only show the register and memory buses; this bench runs the
same transcoders over the *result* (writeback) bus — the values entering
the reorder buffer — and checks the claim's direction there too.
"""

import numpy as np
from _common import BENCH_CYCLES, FIGURE_BENCHMARKS, print_banner, run_once

from repro.analysis import format_table
from repro.coding import ContextTranscoder, WindowTranscoder
from repro.energy import normalized_energy_removed
from repro.workloads import result_trace


def compute():
    rows = []
    window_savings = []
    transition_savings = []
    for name in FIGURE_BENCHMARKS:
        trace = result_trace(name, BENCH_CYCLES)
        window = normalized_energy_removed(
            trace, WindowTranscoder(8, 32).encode_trace(trace)
        )
        context = normalized_energy_removed(
            trace, ContextTranscoder(28, 8).encode_trace(trace)
        )
        transitions = normalized_energy_removed(
            trace, ContextTranscoder(28, 8).encode_trace(trace), lam=0.0
        )
        rows.append((name, window, context, transitions))
        window_savings.append(window)
        transition_savings.append(transitions)
    return rows, window_savings, transition_savings


def test_result_bus(benchmark):
    rows, window_savings, transition_savings = run_once(benchmark, compute)
    print_banner("Result/reorder-buffer bus: % energy and transitions removed")
    print(
        format_table(
            ["benchmark", "window-8 %", "context %", "context transitions %"],
            rows,
            precision=1,
        )
    )
    mean_transitions = float(np.mean(transition_savings))
    print(f"\nmean transition savings (context): {mean_transitions:.1f}%  "
          f"(paper abstract: ~36% on internal buses)")
    # The claim's direction: the dictionary transcoders remove a
    # substantial share of transitions on reorder-buffer traffic too.
    assert mean_transitions > 8.0
    assert float(np.mean(window_savings)) > 0.0
