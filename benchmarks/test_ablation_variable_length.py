"""Ablation: fixed-length transcoding vs variable-length coding (Section 6).

The paper's future work asks whether variable-length codes — more
compression, but multi-cycle words and changed bus timing — beat the
drop-in fixed-length transcoder.  This bench measures both sides of
that trade on the register-bus suite: activity moved on the wires
(energy proxy) and the timing expansion the variable-length stream
demands.
"""

import numpy as np
from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import format_table
from repro.coding import VariableLengthTranscoder, WindowTranscoder
from repro.energy import weighted_activity
from repro.workloads import register_trace

BENCHMARKS = ("gcc", "m88ksim", "compress", "ijpeg", "swim", "turb3d")


def compute():
    rows = []
    for name in BENCHMARKS:
        trace = register_trace(name, BENCH_CYCLES)
        base = weighted_activity(trace, 1.0)

        fixed = WindowTranscoder(8, 32).encode_trace(trace)
        fixed_activity = weighted_activity(fixed, 1.0)

        variable = VariableLengthTranscoder(32, 8, 8)
        report = variable.encode_trace(trace)
        assert np.array_equal(
            variable.decode_flits(report).values, trace.values
        )
        variable_activity = weighted_activity(report.flits, 1.0)

        rows.append(
            (
                name,
                100.0 * (1 - fixed_activity / base),
                100.0 * (1 - variable_activity / base),
                report.expansion,
            )
        )
    return rows


def test_ablation_variable_length(benchmark):
    rows = run_once(benchmark, compute)
    print_banner("Ablation: fixed vs variable-length coding (register bus)")
    print(
        format_table(
            ["benchmark", "fixed saved %", "variable saved %", "cycles/value"],
            rows,
            precision=2,
        )
    )

    fixed_savings = [row[1] for row in rows]
    variable_savings = [row[2] for row in rows]
    expansions = [row[3] for row in rows]
    # The measured verdict *supports* the paper's fixed-length choice:
    # on realistic register traffic the serialised narrow-bus stream
    # churns its few wires so hard that it loses to the drop-in
    # fixed-length transcoder on average...
    assert np.mean(variable_savings) < np.mean(fixed_savings)
    # ...while also demanding more bus cycles per value (the timing
    # change Section 6 warns complicates the designer's task).
    assert all(e > 1.0 for e in expansions)
    # Only strongly dictionary-friendly traffic (ijpeg here) keeps the
    # variable-length stream anywhere near break-even.
    assert max(variable_savings) > 0.0
