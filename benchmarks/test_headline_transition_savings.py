"""The paper's headline: average % of transitions removed on internal buses.

Abstract / Section 7: "an average of 36% savings in transitions on
internal buses such as the reorder buffer and register file", achieved
by the dictionary transcoders.  This bench reports our suite average
for the window and context designs at the paper's configurations
(pure transition counts, coupling ratio 0, register bus).
"""

from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import format_table, headline_transition_savings
from repro.coding import ContextTranscoder, WindowTranscoder


def compute():
    window = headline_transition_savings(
        lambda: WindowTranscoder(8, 32), cycles=BENCH_CYCLES
    )
    window16 = headline_transition_savings(
        lambda: WindowTranscoder(16, 32), cycles=BENCH_CYCLES
    )
    context = headline_transition_savings(
        lambda: ContextTranscoder(28, 8), cycles=BENCH_CYCLES
    )
    return window, window16, context


def test_headline(benchmark):
    window, window16, context = run_once(benchmark, compute)
    print_banner("Headline: average % transitions removed (register bus)")
    print(
        format_table(
            ["Design", "Avg % transitions removed", "Paper"],
            [
                ("window-8", window, "19-25 (Fig 19)"),
                ("window-16", window16, "-"),
                ("context 28+8", context, "25-36 (Fig 23, abstract)"),
            ],
            precision=1,
        )
    )
    # The dictionary transcoders remove a double-digit share of
    # transitions on average; the context design leads the window one.
    assert window > 8.0
    assert context > window - 2.0
    assert window16 >= window - 1.0
