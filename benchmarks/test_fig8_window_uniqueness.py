"""Figure 8: average fraction of unique values within a window.

Paper shape: even small windows (tens of entries) contain mostly
repeated values — the statistic that motivates the Window-based
transcoder — and the unique fraction falls as the window grows.
"""

import numpy as np
from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import format_series
from repro.traces import window_unique_curve
from repro.workloads import memory_trace, register_trace

BENCHMARKS = ("gcc", "su2cor", "swim", "turb3d")
WINDOWS = (2, 4, 8, 16, 32, 64, 128, 512, 2048)


def compute():
    series = {}
    for name in BENCHMARKS:
        for bus, fetch in (("reg", register_trace), ("mem", memory_trace)):
            trace = fetch(name, BENCH_CYCLES)
            series[f"{name} {bus}"] = list(window_unique_curve(trace, WINDOWS))
    return series


def test_fig8(benchmark):
    series = run_once(benchmark, compute)
    print_banner("Figure 8: unique fraction vs window size")
    print(format_series("window", list(WINDOWS), series, precision=3))
    for name, curve in series.items():
        curve = np.array(curve)
        # Larger windows can only lower the unique fraction.
        assert (np.diff(curve) <= 1e-9).all(), name
        # A 10-ish-entry window already sees mostly repeats (paper's
        # point): the unique fraction is well below 1.
        assert curve[2] < 0.75, name
