"""Figure 21: context transcoder (transition-based) vs table size, register bus."""

from _common import median_curve, print_banner, run_once, sweep_savings, traces_for

from repro.analysis import format_series
from repro.coding import ContextTranscoder, TRANSITION_BASED

TABLE_SIZES = (4, 8, 16, 24, 32, 48, 64)


def compute():
    return sweep_savings(
        traces_for("register"),
        lambda t: ContextTranscoder(t, 8, TRANSITION_BASED),
        TABLE_SIZES,
    )


def test_fig21(benchmark):
    curves = run_once(benchmark, compute)
    print_banner(
        "Figure 21: % energy removed vs table size "
        "(transition-based context, register bus)"
    )
    print(format_series("table", list(TABLE_SIZES), curves, precision=1))

    median = median_curve(curves)
    assert median[-1] >= median[0] - 5.0
    assert max(curves["random"]) - min(curves["random"]) < 2.0
