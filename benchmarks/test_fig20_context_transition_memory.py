"""Figure 20: context transcoder (transition-based) vs table size, memory bus.

Shift register fixed at 8 entries.  Paper shape: savings rise with the
table but the transition flavour trails the value-based design of
Figure 22 for equal hardware (many more arcs than states).
"""

from _common import median_curve, print_banner, run_once, sweep_savings, traces_for

from repro.analysis import format_series
from repro.coding import ContextTranscoder, TRANSITION_BASED

TABLE_SIZES = (4, 8, 16, 24, 32, 48, 64)


def compute():
    return sweep_savings(
        traces_for("memory"),
        lambda t: ContextTranscoder(t, 8, TRANSITION_BASED),
        TABLE_SIZES,
    )


def test_fig20(benchmark):
    curves = run_once(benchmark, compute)
    print_banner(
        "Figure 20: % energy removed vs table size "
        "(transition-based context, memory bus)"
    )
    print(format_series("table", list(TABLE_SIZES), curves, precision=1))

    median = median_curve(curves)
    # A bigger table never collapses the curve.
    assert median[-1] >= median[0] - 5.0
    # Random traffic gains only the flat polarity-mux floor; the
    # context table adds nothing.
    assert max(curves["random"]) - min(curves["random"]) < 2.0
