"""Figure 22: context transcoder (value-based) vs table size, memory bus.

Paper shapes: a clear asymptote — diminishing returns past a table of
~16-32 entries — and the value-based flavour beats the
transition-based design of Figure 20 for the same hardware.
"""

from _common import median_curve, print_banner, run_once, sweep_savings, traces_for

from repro.analysis import format_series
from repro.coding import ContextTranscoder, TRANSITION_BASED, VALUE_BASED

TABLE_SIZES = (4, 8, 16, 24, 32, 48, 64)


def compute():
    traces = traces_for("memory")
    value = sweep_savings(
        traces, lambda t: ContextTranscoder(t, 8, VALUE_BASED), TABLE_SIZES
    )
    transition = sweep_savings(
        traces, lambda t: ContextTranscoder(t, 8, TRANSITION_BASED), (32,)
    )
    return value, transition


def test_fig22(benchmark):
    value, transition = run_once(benchmark, compute)
    print_banner(
        "Figure 22: % energy removed vs table size (value-based context, memory bus)"
    )
    print(format_series("table", list(TABLE_SIZES), value, precision=1))

    median = median_curve(value)
    index32 = TABLE_SIZES.index(32)
    # Diminishing returns: the step from 32 to 64 entries is smaller
    # than the step from 4 to 32.
    assert (median[-1] - median[index32]) <= (median[index32] - median[0]) + 3.0
    # Value-based beats transition-based at equal hardware (paper's
    # reason to drop the transition flavour), on the benchmark median.
    value32 = [curve[index32] for name, curve in value.items() if name != "random"]
    trans32 = [curve[0] for name, curve in transition.items() if name != "random"]
    assert sorted(value32)[len(value32) // 2] >= sorted(trans32)[len(trans32) // 2]
