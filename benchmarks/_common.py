"""Shared configuration and helpers for the benchmark harness.

Each bench module regenerates one table or figure of the paper: it
computes the same rows/series the paper reports, prints them, asserts
the qualitative shape (who wins, which direction the curve bends), and
registers the computation with pytest-benchmark so wall-clock cost is
tracked.  Expensive sweeps run exactly once via ``benchmark.pedantic``.

Set ``REPRO_BENCH_CYCLES`` to lengthen or shorten the CPU-substrate
traces every experiment shares (default 15000 cycles; the paper used
multi-million-cycle SPEC runs, which only tightens the statistics).
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import numpy as np

from repro.energy import normalized_energy_removed
from repro.traces import BusTrace
from repro.workloads import random_trace, suite_traces

#: Trace length (cycles) for every bench.
BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "15000"))

#: Benchmarks shown in the paper's per-benchmark figures.
FIGURE_BENCHMARKS = (
    "ijpeg", "m88ksim", "go", "gcc", "compress", "perl",
    "hydro2d", "fpppp", "apsi", "applu", "wave5", "turb3d",
    "tomcatv", "swim", "su2cor", "mgrid",
)


def traces_for(bus: str, include_random: bool = True) -> Dict[str, BusTrace]:
    """The figure benchmark traces on one bus, plus uniform random."""
    traces = dict(suite_traces(bus, FIGURE_BENCHMARKS, BENCH_CYCLES))
    if include_random:
        traces = {"random": random_trace(BENCH_CYCLES, seed=1234), **traces}
    return traces


def sweep_savings(
    traces: Dict[str, BusTrace],
    coder_factory,
    parameter_values: Sequence[int],
    lam: float = 1.0,
) -> Dict[str, List[float]]:
    """Normalized-energy-removed curves, one per trace."""
    return {
        name: [
            normalized_energy_removed(trace, coder_factory(p).encode_trace(trace), lam)
            for p in parameter_values
        ]
        for name, trace in traces.items()
    }


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def median_curve(curves: Dict[str, List[float]]) -> np.ndarray:
    """Median across benchmark curves, pointwise."""
    return np.median(np.array(list(curves.values())), axis=0)
