"""Ablation: selective-precharge first-stage width (paper Section 5.3.3).

The CAM's two-stage match evaluates ``low_bits`` cheap bits first and
only completes the full compare on candidates that pass.  Sweeping the
first-stage width shows the trade the paper's circuit makes: very few
low bits pass too many candidates to the expensive stage; matching the
full width up front makes every probe expensive.  An intermediate
width (the paper uses 8, then 16-bit NAND trees) minimises energy.
"""

from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import format_table
from repro.hardware import HardwareWindowTranscoder
from repro.wires import TECH_013
from repro.workloads import register_trace

LOW_BITS = (2, 4, 8, 16, 32)
BENCHMARKS = ("gcc", "m88ksim", "compress", "swim")


def compute():
    rows = []
    energies = {}
    for low in LOW_BITS:
        total = 0.0
        for name in BENCHMARKS:
            trace = register_trace(name, BENCH_CYCLES)
            coder = HardwareWindowTranscoder(TECH_013, 8, 32, low_bits=low)
            total += coder.trace_energy_per_cycle(trace)
        energies[low] = total / len(BENCHMARKS) * 1e12
        rows.append((low, energies[low]))
    return rows, energies


def test_ablation_precharge(benchmark):
    rows, energies = run_once(benchmark, compute)
    print_banner("Ablation: encoder pJ/cycle vs selective-precharge width")
    print(format_table(["low bits", "encoder pJ/cycle"], rows, precision=3))

    # Full-width first stage is the most expensive configuration.
    assert energies[32] >= max(energies[4], energies[8])
    # The chosen width (8) sits within a few percent of the best.
    best = min(energies.values())
    assert energies[8] <= best * 1.10
