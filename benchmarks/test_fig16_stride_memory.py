"""Figure 16: strided predictor on the memory bus.

Normalized energy removed vs the number of stride predictors (1..32)
for the 16 figure benchmarks plus random.  Paper shapes: more strides
never hurt much and mostly help; gains are modest (roughly linear,
no obvious best count); random traffic gains nothing.
"""

import numpy as np
from _common import print_banner, run_once, sweep_savings, traces_for

from repro.analysis import format_series
from repro.coding import StrideTranscoder

STRIDES = (1, 2, 4, 8, 16, 24, 32)


def compute():
    return sweep_savings(
        traces_for("memory"), lambda s: StrideTranscoder(s, 32), STRIDES
    )


def test_fig16(benchmark):
    curves = run_once(benchmark, compute)
    print_banner("Figure 16: % energy removed vs #strides (memory bus)")
    print(format_series("strides", list(STRIDES), curves, precision=1))

    # Random traffic gains only the raw/raw-inverted polarity mux (a
    # flat bus-invert-style few percent); the strides themselves add
    # nothing.
    random = curves["random"]
    assert max(random) < 12.0
    assert max(random) - min(random) < 1.5
    # Adding strides never collapses the savings (paper: roughly
    # monotone with small fluctuations).
    for name, curve in curves.items():
        assert curve[-1] >= curve[0] - 5.0, name
    # At least some benchmarks see real stride savings.
    best = max(max(c) for n, c in curves.items() if n != "random")
    assert best > 5.0
