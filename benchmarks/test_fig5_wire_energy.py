"""Figure 5: single-transition wire energy vs length, 1-30 mm.

Six curves: {repeatered, unbuffered} x {0.13, 0.10, 0.07 um}.  The
shapes to reproduce: energy is linear in length, repeatered wires cost
more than bare ones, and smaller nodes cost less; the 0.13 um
repeatered wire reaches a few pJ at 30 mm.
"""

import numpy as np
from _common import print_banner, run_once

from repro.analysis import format_series
from repro.wires import TECHNOLOGIES, WireModel

LENGTHS = list(range(1, 31))


def compute():
    series = {}
    for tech in TECHNOLOGIES:
        for buffered, label in ((True, "Repeater"), (False, "Wire")):
            series[f"{label}_{tech.name}"] = [
                WireModel(tech, length, buffered).single_transition_energy * 1e12
                for length in LENGTHS
            ]
    return series


def test_fig5(benchmark):
    series = run_once(benchmark, compute)
    print_banner("Figure 5: wire energy (pJ) vs length (mm)")
    shown = {k: v for k, v in series.items()}
    print(format_series("mm", LENGTHS, shown, precision=3))

    for tech in TECHNOLOGIES:
        repeatered = np.array(series[f"Repeater_{tech.name}"])
        bare = np.array(series[f"Wire_{tech.name}"])
        # Repeaters add energy at every length.
        assert (repeatered[2:] > bare[2:]).all()
        # Linear growth: energy at 30 mm ~ 3x energy at 10 mm.
        assert repeatered[29] / repeatered[9] == np.clip(
            repeatered[29] / repeatered[9], 2.4, 3.6
        )
    # A few pJ at 30 mm for the 0.13 um repeatered wire.
    assert 3.0 < series["Repeater_0.13um"][-1] < 8.0
    # Smaller nodes cost less at every length.
    assert series["Repeater_0.07um"][-1] < series["Repeater_0.13um"][-1]
