"""Table 3: median crossover lengths for the window design.

Paper values (register bus, mm):

  0.13um  8: 12.7 / 9.4 / 11.5    16: 9.5 / 6.9 / 7.0
  0.10um  8:  9.5 / 6.9 /  8.0    16: 7.1 / 5.0 / 6.4
  0.07um  8:  4.5 / 2.9 /  4.1    16: 3.2 / 2.4 / 2.7
  (SPECint / SPECfp / ALL)

Our traces carry less value locality than SPEC95 binaries, so absolute
lengths land longer (see EXPERIMENTS.md); the asserted shape is the
paper's scaling claim: crossovers shrink as technology shrinks, and the
16-entry design is no worse than the 8-entry one per suite.
"""

from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import crossover_table, format_table
from repro.wires import TECHNOLOGIES


def compute():
    return crossover_table(TECHNOLOGIES, (8, 16), cycles=BENCH_CYCLES)


def test_table3(benchmark):
    cells = run_once(benchmark, compute)
    print_banner("Table 3: median crossover lengths (mm), register bus")
    print(
        format_table(
            ["Technology", "Entries", "Suite", "Median mm"],
            [(c.technology, c.entries, c.suite, c.median_mm) for c in cells],
            precision=1,
        )
    )

    def cell(tech, entries, suite):
        for c in cells:
            if (c.technology, c.entries, c.suite) == (tech, entries, suite):
                return c.median_mm
        raise KeyError((tech, entries, suite))

    for suite in ("SPECint", "SPECfp", "ALL"):
        for entries in (8, 16):
            # Crossover shrinks (or holds) as technology shrinks.
            assert cell("0.07um", entries, suite) <= cell("0.13um", entries, suite) + 1.0
    for suite in ("SPECint", "SPECfp"):
        # The projected 16-entry design is no worse than the 8-entry one
        # at the smallest node (the paper's 2.7mm headline direction).
        # ALL is excluded: its median over the pooled suites can move
        # against both per-suite medians.
        assert cell("0.07um", 16, suite) <= cell("0.07um", 8, suite) + 2.0
    # Everything is finite and positive.
    assert all(0 < c.median_mm <= 100 for c in cells)
