"""Table 2: transcoder circuit characteristics per technology.

Paper rows (window design + InvertCoder):

  0.13um  1.2V  12400um^2  1.39pJ  0.00088pJ  3.1ns  4.0ns
  0.10um  1.1V   7340um^2  1.07pJ  0.00338pJ  2.4ns  3.2ns
  0.07um  0.9V   3600um^2  0.55pJ  0.00787pJ  2.0ns  2.7ns
  Invert  1.2V   4700um^2  1.76pJ  0.00055pJ  2.2ns  2.2ns
"""

import numpy as np
from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import format_table
from repro.hardware import table2_summaries
from repro.workloads import WORKLOADS, register_trace

PAPER = {
    "0.13um": (12400, 1.39, 0.00088, 3.1),
    "0.10um": (7340, 1.07, 0.00338, 2.4),
    "0.07um": (3600, 0.55, 0.00787, 2.0),
    "InvertCoder": (4700, 1.76, 0.00055, 2.2),
}


def compute():
    # Average the per-cycle energies over the whole suite, like the
    # paper's SPEC-averaged numbers.
    per_tech = {}
    for name in sorted(WORKLOADS):
        trace = register_trace(name, BENCH_CYCLES)
        for row in table2_summaries(trace):
            key = row.technology.name if row.name != "InvertCoder" else "InvertCoder"
            per_tech.setdefault(key, []).append(row)
    rows = []
    for key, samples in per_tech.items():
        first = samples[0]
        rows.append(
            (
                key,
                first.voltage,
                first.area_um2,
                float(np.mean([s.op_energy_pj for s in samples])),
                first.leakage_pj,
                first.delay_ns,
                first.cycle_time_ns,
            )
        )
    return rows


def test_table2(benchmark):
    rows = run_once(benchmark, compute)
    print_banner("Table 2: transcoder circuit characteristics")
    print(
        format_table(
            ["Design", "V", "Area um2", "Op pJ", "Leak pJ", "Delay ns", "Cycle ns"],
            rows,
            precision=4,
        )
    )
    print("\npaper:", PAPER)

    by_key = {row[0]: row for row in rows}
    for key, (area, op_pj, leak_pj, delay_ns) in PAPER.items():
        _, _, got_area, got_op, got_leak, got_delay, _ = by_key[key]
        assert abs(got_area / area - 1) < 0.15, key
        assert abs(got_op / op_pj - 1) < 0.25, key
        assert abs(got_leak / leak_pj - 1) < 0.6, key
        assert abs(got_delay / delay_ns - 1) < 0.25, key
    # Shape: energy per op falls with technology, leakage rises.
    assert by_key["0.13um"][3] > by_key["0.10um"][3] > by_key["0.07um"][3]
    assert by_key["0.13um"][4] < by_key["0.10um"][4] < by_key["0.07um"][4]
    # The inversion coder burns more per cycle than the window design
    # at the same node — the paper's reason it cannot break even.
    assert by_key["InvertCoder"][3] > by_key["0.13um"][3]
