"""Table 1: effective lambda for buffered and unbuffered wires.

Paper values: 0.13um 14.0 / 0.670, 0.10um 16.6 / 0.576,
0.07um 14.5 / 0.591 (unbuffered / with repeaters).
"""

from _common import print_banner, run_once

from repro.analysis import format_table
from repro.wires import TECHNOLOGIES, WireModel

PAPER = {
    "0.13um": (14.0, 0.670),
    "0.10um": (16.6, 0.576),
    "0.07um": (14.5, 0.591),
}


def compute():
    rows = []
    for tech in TECHNOLOGIES:
        unbuffered = WireModel(tech, 30.0, buffered=False).effective_lambda
        buffered = WireModel(tech, 30.0, buffered=True).effective_lambda
        rows.append((tech.name, unbuffered, buffered))
    return rows


def test_table1(benchmark):
    rows = run_once(benchmark, compute)
    print_banner("Table 1: effective lambda per technology")
    print(
        format_table(
            ["Technology", "Unbuffered", "With repeaters", "paper unbuf", "paper rep"],
            [
                (name, unbuf, buf, PAPER[name][0], PAPER[name][1])
                for name, unbuf, buf in rows
            ],
            precision=3,
        )
    )
    for name, unbuffered, buffered in rows:
        paper_unbuf, paper_buf = PAPER[name]
        # Bare minimum-pitch wires are coupling-dominated...
        assert unbuffered == paper_unbuf or abs(unbuffered / paper_unbuf - 1) < 0.05
        # ...while repeater loading pushes effective lambda below 1.
        assert abs(buffered / paper_buf - 1) < 0.10
        assert buffered < 1.0 < unbuffered
