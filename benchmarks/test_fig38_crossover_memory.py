"""Figure 38: crossover scaling on the memory bus.

Same sweep as Figure 37 on the memory data bus.  Paper shapes: the
memory bus is much less attractive — median curves sit above their
register-bus counterparts and several configurations never reach the
break-even line inside the plotted range.
"""

import numpy as np
from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import CrossoverAnalysis, format_series
from repro.wires import TECHNOLOGIES, TECH_013
from repro.workloads import FP_WORKLOADS, INT_WORKLOADS, memory_trace, register_trace

LENGTHS = (2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0)


def compute():
    int_traces = [memory_trace(n, BENCH_CYCLES) for n in INT_WORKLOADS]
    fp_traces = [memory_trace(n, BENCH_CYCLES) for n in FP_WORKLOADS]
    series = {}
    for tech in TECHNOLOGIES:
        for size in (8, 16):
            for suite, traces in (("specINT", int_traces), ("specFP", fp_traces)):
                curves = np.array(
                    [CrossoverAnalysis(t, tech, size).curve(LENGTHS) for t in traces]
                )
                series[f"{tech.name} {size}-entry {suite}"] = list(
                    np.median(curves, axis=0)
                )
    reg_traces = [register_trace(n, BENCH_CYCLES) for n in INT_WORKLOADS]
    reg_median = list(
        np.median(
            [CrossoverAnalysis(t, TECH_013, 8).curve(LENGTHS) for t in reg_traces],
            axis=0,
        )
    )
    return series, reg_median


def test_fig38(benchmark):
    series, reg_median = run_once(benchmark, compute)
    print_banner("Figure 38: median total-energy ratio vs length (memory bus)")
    print(format_series("mm", list(LENGTHS), series, precision=3))

    for label, curve in series.items():
        assert (np.diff(np.array(curve)) < 1e-9).all(), label

    # The paper's verdict: the memory bus is the harder sell — the
    # median 0.13um 8-entry memory curve sits above the register one.
    mem = np.array(series["0.13um 8-entry specINT"])
    reg = np.array(reg_median)
    print(f"\nat {LENGTHS[-1]}mm: memory {mem[-1]:.3f} vs register {reg[-1]:.3f}")
    assert mem[-1] >= reg[-1] - 0.02
