"""Figure 36: total (wire + transcoder) energy vs wire length, memory bus.

Paper shapes: the memory bus is the transcoder's weak case — the
*fraction* of transitions removed can be high but the absolute count
is low (the bus idles between transactions), so fewer benchmarks break
even than on the register bus and the ratios sit higher overall.
"""

import numpy as np
from _common import BENCH_CYCLES, FIGURE_BENCHMARKS, print_banner, run_once

from repro.analysis import CrossoverAnalysis, format_series
from repro.wires import TECH_013
from repro.workloads import memory_trace, register_trace

LENGTHS = (1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0)


def compute():
    memory_series = {}
    register_final = {}
    for name in FIGURE_BENCHMARKS:
        trace = memory_trace(name, BENCH_CYCLES)
        memory_series[name] = list(CrossoverAnalysis(trace, TECH_013, 8).curve(LENGTHS))
        reg = register_trace(name, BENCH_CYCLES)
        register_final[name] = CrossoverAnalysis(reg, TECH_013, 8).ratio(LENGTHS[-1])
    return memory_series, register_final


def test_fig36(benchmark):
    memory_series, register_final = run_once(benchmark, compute)
    print_banner(
        "Figure 36: total energy / un-encoded energy vs length (memory, 0.13um)"
    )
    print(format_series("mm", list(LENGTHS), memory_series, precision=3))

    for name, curve in memory_series.items():
        assert (np.diff(np.array(curve)) < 1e-9).all(), name

    # The paper's asymmetry: at the longest length, the memory bus is a
    # worse deal than the register bus for the median benchmark.
    mem_final = np.median([curve[-1] for curve in memory_series.values()])
    reg_final = np.median(list(register_final.values()))
    print(f"\nmedian ratio at {LENGTHS[-1]}mm: memory {mem_final:.3f} register {reg_final:.3f}")
    assert mem_final > reg_final
