"""Figure 7: CDF of the most frequent unique values in each trace.

Paper shape: for gcc/su2cor/swim/turb3d on both buses, no small unique
value set covers the traffic — meaningful coverage needs hundreds to
thousands of distinct values, which kills purely frequency-static
dictionaries.
"""

from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import format_table
from repro.traces import coverage_at, unique_value_cdf
from repro.workloads import memory_trace, register_trace

BENCHMARKS = ("gcc", "su2cor", "swim", "turb3d")
TOP_KS = (1, 10, 100, 1000)


def compute():
    rows = []
    for name in BENCHMARKS:
        for bus, fetch in (("reg", register_trace), ("mem", memory_trace)):
            trace = fetch(name, BENCH_CYCLES)
            cdf = unique_value_cdf(trace)
            rows.append(
                [f"{name}, {bus} bus", cdf.size]
                + [coverage_at(trace, k) for k in TOP_KS]
            )
    return rows


def test_fig7(benchmark):
    rows = run_once(benchmark, compute)
    print_banner("Figure 7: coverage by the top-k unique values")
    print(
        format_table(
            ["trace", "uniques"] + [f"top-{k}" for k in TOP_KS], rows, precision=3
        )
    )
    for row in rows:
        top1, top10 = row[2], row[3]
        # No tiny value set dominates (the paper's anti-static-dictionary
        # observation): ten values never cover the whole trace...
        assert top10 < 0.98
        # ...and the CDF is monotone.
        assert row[2] <= row[3] <= row[4] <= row[5]
