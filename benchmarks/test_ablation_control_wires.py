"""Ablation: the two control-wire optimisations of the transcoder.

The reproduction's predictive transcoder carries two micro-decisions
the paper's text implies but does not isolate: (1) a LAST repeat keeps
the control wires silent instead of forcing CODE mode, and (2) where
the two control wires physically sit (together above the MSB vs at
opposite bus edges).  Measured on the register-bus suite: silence on
LAST is worth several points (it kills control-mode thrash on
hit/miss-alternating traffic); placement is second order because the
LSB data wire an edge control wire would neighbour is itself the most
active wire on the bus.
"""

import numpy as np
from _common import BENCH_CYCLES, FIGURE_BENCHMARKS, print_banner, run_once

from repro.analysis import format_table
from repro.coding import PredictiveTranscoder, WindowPredictor
from repro.energy import normalized_energy_removed
from repro.workloads import register_trace

CONFIGS = (
    ("baseline (silent-LAST, top ctrl)", True, False),
    ("no silent-LAST", False, False),
    ("edge ctrl placement", True, True),
    ("no silent-LAST + edge ctrl", False, True),
)


def compute():
    rows = []
    means = {}
    for label, silent, edge in CONFIGS:
        savings = []
        for name in FIGURE_BENCHMARKS:
            trace = register_trace(name, BENCH_CYCLES)
            coder = PredictiveTranscoder(
                WindowPredictor(8, 32), 32, silent_last=silent, edge_control=edge
            )
            coded = coder.encode_trace(trace)
            assert np.array_equal(coder.decode_trace(coded).values, trace.values)
            savings.append(normalized_energy_removed(trace, coded))
        means[label] = float(np.mean(savings))
        rows.append((label, means[label]))
    return rows, means


def test_ablation_control_wires(benchmark):
    rows, means = run_once(benchmark, compute)
    print_banner("Ablation: control-wire optimisations (window-8, register bus)")
    print(format_table(["configuration", "mean % energy removed"], rows, precision=2))

    baseline = means["baseline (silent-LAST, top ctrl)"]
    # Silent-LAST is the big lever (it kills the mode-thrash penalty).
    assert baseline > means["no silent-LAST"]
    assert baseline - means["no silent-LAST"] > 1.0
    # Control-wire placement is second order: edge vs top placement
    # moves the mean by well under a point (the LSB data wire an edge
    # control wire would neighbour is the most active wire on the bus).
    assert abs(baseline - means["edge ctrl placement"]) < 1.0
