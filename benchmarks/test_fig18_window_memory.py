"""Figure 18: window-based transcoder vs shift-register size, memory bus.

Paper shapes: savings grow with the window and the knee of the curve
sits around 8 entries; beyond it, returns diminish.
"""

import numpy as np
from _common import median_curve, print_banner, run_once, sweep_savings, traces_for

from repro.analysis import format_series
from repro.coding import WindowTranscoder

SIZES = (2, 4, 8, 16, 32, 48, 64)


def compute():
    return sweep_savings(
        traces_for("memory", include_random=False),
        lambda s: WindowTranscoder(s, 32),
        SIZES,
    )


def test_fig18(benchmark):
    curves = run_once(benchmark, compute)
    print_banner("Figure 18: % energy removed vs window size (memory bus)")
    print(format_series("entries", list(SIZES), curves, precision=1))

    median = median_curve(curves)
    print("\nmedian:", np.round(median, 1))
    # Growing the window helps up to the knee...
    assert median[2] >= median[0]
    # ...and the knee is real: 8 entries capture most of what 64 do.
    gain_to_knee = median[2] - median[0]
    gain_past_knee = median[-1] - median[2]
    assert gain_past_knee <= gain_to_knee + 5.0
