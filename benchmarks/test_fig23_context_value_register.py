"""Figure 23: context transcoder (value-based) vs table size, register bus.

Paper shapes: the knee between table sizes 16 and 32, ~25-35% average
savings at reasonable configurations, value-based above transition-
based (Figure 21) on the same traffic.
"""

import numpy as np
from _common import median_curve, print_banner, run_once, sweep_savings, traces_for

from repro.analysis import format_series
from repro.coding import ContextTranscoder, VALUE_BASED

TABLE_SIZES = (4, 8, 16, 24, 32, 48, 64)


def compute():
    return sweep_savings(
        traces_for("register"),
        lambda t: ContextTranscoder(t, 8, VALUE_BASED),
        TABLE_SIZES,
    )


def test_fig23(benchmark):
    curves = run_once(benchmark, compute)
    print_banner(
        "Figure 23: % energy removed vs table size (value-based context, register bus)"
    )
    print(format_series("table", list(TABLE_SIZES), curves, precision=1))

    median = median_curve(curves)
    print("\nmedian:", np.round(median, 1))
    index16 = TABLE_SIZES.index(16)
    # Diminishing returns past a 16-entry table.
    assert median[-1] - median[index16] < 12.0
    # The best benchmarks reach the paper's savings band.
    best = max(max(curve) for name, curve in curves.items() if name != "random")
    assert best > 25.0
