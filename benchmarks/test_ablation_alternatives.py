"""Ablation: transcoding vs circuit-level alternatives and prior codes.

Lays the paper's proposal beside the options its Sections 1-2 cite:

* **shielding** — grounded wires between signals (kills Miller
  coupling, doubles the footprint);
* **low-swing signalling** — quadratic energy win on the wire, fixed
  receiver cost per cycle;
* **classic/partial bus-invert** and the **adaptive codebook** — the
  stateless/stateful prior coding art;
* **work-zone encoding** on the *address* bus, the traffic it was
  designed for.

Asserted shapes: shielding beats the raw bus exactly when coupling
dominates; low-swing wins big on long wires; among the codes, the
window transcoder leads on register traffic while work-zone dominates
on addresses.
"""

import numpy as np
from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import format_table
from repro.coding import (
    AdaptiveCodebookTranscoder,
    BusInvertTranscoder,
    WindowTranscoder,
    WorkZoneTranscoder,
)
from repro.energy import BusEnergyModel, count_activity
from repro.wires import TECH_013, low_swing_energy, shielded_bus_energy
from repro.workloads import address_trace, register_trace

BENCHMARKS = ("gcc", "m88ksim", "swim", "ijpeg")
LENGTH_MM = 15.0


def compute():
    bus = BusEnergyModel(TECH_013, LENGTH_MM)
    wire = bus.wire
    bare = BusEnergyModel(TECH_013, LENGTH_MM, buffered=False)
    rows = []
    sums = {}
    for name in BENCHMARKS:
        trace = register_trace(name, BENCH_CYCLES)
        counts = count_activity(trace)
        raw = bus.energy_from_counts(counts)
        options = {
            "raw": raw,
            "raw-unbuf": bare.energy_from_counts(counts),
            "shield-unbuf": shielded_bus_energy(counts, bare.wire),
            "shielded": shielded_bus_energy(counts, wire),
            "low-swing": low_swing_energy(counts, wire),
            "window-8": bus.trace_energy(WindowTranscoder(8, 32).encode_trace(trace)),
            "bus-invert": bus.trace_energy(
                BusInvertTranscoder(32, 4).encode_trace(trace)
            ),
            "codebook-8": bus.trace_energy(
                AdaptiveCodebookTranscoder(32, 8).encode_trace(trace)
            ),
        }
        rows.append([name] + [options[k] * 1e9 for k in options])
        for key, value in options.items():
            sums[key] = sums.get(key, 0.0) + value

    # Shielding's one winning regime: adversarial opposite-direction
    # switching (quadratic Miller energy), on the bare high-lambda bus.
    from repro.traces import BusTrace

    adversarial = BusTrace.from_values(
        [0x55555555, 0xAAAAAAAA] * (BENCH_CYCLES // 2), 32
    )
    adversarial_counts = count_activity(adversarial, quadratic_coupling=True)
    bare_wire = bare.wire
    shield_case = {
        "raw": bare.energy_from_counts(adversarial_counts),
        "shielded": shielded_bus_energy(adversarial_counts, bare_wire),
    }

    # Work-zone runs on the address bus, its home turf.
    addr_rows = []
    for name in BENCHMARKS:
        trace = address_trace(name, BENCH_CYCLES)
        raw = bus.trace_energy(trace)
        zone = bus.trace_energy(WorkZoneTranscoder(32).encode_trace(trace))
        window = bus.trace_energy(WindowTranscoder(8, 32).encode_trace(trace))
        addr_rows.append((name, raw * 1e9, zone * 1e9, window * 1e9))
    return rows, sums, shield_case, addr_rows


def test_ablation_alternatives(benchmark):
    rows, sums, shield_case, addr_rows = run_once(benchmark, compute)
    print_banner(f"Alternatives at {LENGTH_MM} mm, 0.13um (wire energy, nJ)")
    print(
        format_table(
            ["bench", "raw", "raw-unbuf", "shield-unbuf", "shielded", "low-swing",
             "window-8", "bus-invert", "codebook-8"],
            rows,
            precision=2,
        )
    )
    print_banner("Address bus: work-zone's home turf (nJ)")
    print(format_table(["bench", "raw", "workzone", "window-8"], addr_rows, precision=2))

    # Low swing crushes everything on pure wire energy (it attacks V^2).
    assert sums["low-swing"] < sums["raw"]
    # Shielding is a *worst-case* tool, not an average-energy win: real
    # traffic toggles neighbouring wires in the same direction often
    # enough that its kappa/tau stays below the deterministic 2 shields
    # enforce, so shields cost extra on both bus styles here...
    assert sums["shielded"] >= sums["raw"]
    assert sums["shield-unbuf"] >= sums["raw-unbuf"]
    # ...and only pay on adversarial opposite-direction switching under
    # the quadratic (energy-accurate) Miller model on the bare bus.
    print(
        f"\nadversarial 0x5/0xA pattern, bare bus (quadratic coupling): "
        f"raw {shield_case['raw'] * 1e9:.1f} nJ vs shielded "
        f"{shield_case['shielded'] * 1e9:.1f} nJ"
    )
    assert shield_case["shielded"] < shield_case["raw"]
    # Among the codes, the window transcoder leads on register traffic.
    assert sums["window-8"] < sums["bus-invert"]
    assert sums["window-8"] < sums["codebook-8"] * 1.1
    # Work-zone beats the general-purpose window coder on addresses.
    zone_total = sum(r[2] for r in addr_rows)
    window_total = sum(r[3] for r in addr_rows)
    assert zone_total < window_total
