"""Figure 6: wire propagation delay vs length, 1-30 mm.

Shapes: unbuffered delay grows quadratically and reaches thousands of
ps at 30 mm; repeatered delay is linear and far smaller at long
lengths.
"""

import numpy as np
from _common import print_banner, run_once

from repro.analysis import format_series
from repro.wires import TECHNOLOGIES, WireModel

LENGTHS = list(range(1, 31))


def compute():
    series = {}
    for tech in TECHNOLOGIES:
        for buffered, label in ((True, "Repeater"), (False, "Wire")):
            series[f"{label}_{tech.name}"] = [
                WireModel(tech, length, buffered).delay_seconds * 1e12
                for length in LENGTHS
            ]
    return series


def test_fig6(benchmark):
    series = run_once(benchmark, compute)
    print_banner("Figure 6: wire delay (ps) vs length (mm)")
    print(format_series("mm", LENGTHS, series, precision=0))

    for tech in TECHNOLOGIES:
        bare = np.array(series[f"Wire_{tech.name}"])
        repeatered = np.array(series[f"Repeater_{tech.name}"])
        # Quadratic: delay at 30 mm ~ 9x the delay at 10 mm.
        assert 7.0 < bare[29] / bare[9] < 11.0
        # Linear-ish for the repeatered wire.
        assert 2.0 < repeatered[29] / repeatered[9] < 4.0
        # Repeaters win for long wires.
        assert repeatered[29] < bare[29]
    # Thousands of ps for the 30 mm unbuffered wire (Figure 6's scale).
    assert series["Wire_0.13um"][-1] > 2000
