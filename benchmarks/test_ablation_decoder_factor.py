"""Ablation: sensitivity of the crossover length to the decoder's cost.

The paper charges the decoder like the encoder; this reproduction
argues the decoder is cheaper (indexed reads instead of CAM search) and
charges 0.4x.  This bench sweeps the factor to show how much of the
Table 3 conclusion rides on that modelling choice: crossovers move
proportionally, but every ordering (technology trend) survives at any
factor.
"""

from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import CrossoverAnalysis, format_table, median_crossover
from repro.wires import TECH_007, TECH_013
from repro.workloads import INT_WORKLOADS, register_trace

FACTORS = (0.0, 0.4, 1.0)


def compute():
    traces = [register_trace(n, BENCH_CYCLES) for n in INT_WORKLOADS]
    rows = []
    medians = {}
    for factor in FACTORS:
        for tech in (TECH_013, TECH_007):
            analyses = [
                CrossoverAnalysis(t, tech, 8, decoder_factor=factor) for t in traces
            ]
            medians[(factor, tech.name)] = median_crossover(analyses)
            rows.append((factor, tech.name, medians[(factor, tech.name)]))
    return rows, medians


def test_ablation_decoder_factor(benchmark):
    rows, medians = run_once(benchmark, compute)
    print_banner("Ablation: median crossover (mm) vs decoder energy factor")
    print(format_table(["decoder factor", "technology", "median mm"], rows, precision=1))

    for tech_name in ("0.13um", "0.07um"):
        # A costlier decoder pushes break-even out monotonically.
        assert (
            medians[(0.0, tech_name)]
            <= medians[(0.4, tech_name)]
            <= medians[(1.0, tech_name)]
        )
    for factor in FACTORS:
        # The technology trend survives any decoder assumption.
        assert medians[(factor, "0.07um")] <= medians[(factor, "0.13um")] + 1.0
