"""Figure 35: total (wire + transcoder) energy vs wire length, register bus.

8-entry window design at 0.13 um, energy normalised to the un-encoded
bus.  Paper shapes: curves start above 1 (the transcoder dominates on
short wires), fall with length, and cross below 1 for most benchmarks
at centimetre-ish scales; the spread across benchmarks is wide.
"""

import numpy as np
from _common import BENCH_CYCLES, FIGURE_BENCHMARKS, print_banner, run_once

from repro.analysis import CrossoverAnalysis, format_series
from repro.wires import TECH_013
from repro.workloads import register_trace

LENGTHS = (1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0)


def compute():
    series = {}
    for name in FIGURE_BENCHMARKS:
        trace = register_trace(name, BENCH_CYCLES)
        analysis = CrossoverAnalysis(trace, TECH_013, 8)
        series[name] = list(analysis.curve(LENGTHS))
    return series


def test_fig35(benchmark):
    series = run_once(benchmark, compute)
    print_banner(
        "Figure 35: total energy / un-encoded energy vs length (register, 0.13um)"
    )
    print(format_series("mm", list(LENGTHS), series, precision=3))

    for name, curve in series.items():
        curve = np.array(curve)
        # Monotone decreasing: longer wires amortise the transcoder.
        assert (np.diff(curve) < 1e-9).all(), name
        # Short wires lose (transcoder energy dominates).
        assert curve[0] > 1.0, name
    # Most benchmarks break even somewhere on the sweep.
    winners = sum(1 for curve in series.values() if curve[-1] < 1.0)
    assert winners >= len(series) // 2
