"""Figure 17: strided predictor on the register bus.

Same sweep as Figure 16 on the register-file output port.  Paper
shapes: wider spread across benchmarks than the memory bus, no single
best stride count, and the stride family saves less than the best
stateless inversion coders do on the same traffic.
"""

import numpy as np
from _common import print_banner, run_once, sweep_savings, traces_for

from repro.analysis import format_series
from repro.coding import InversionTranscoder, StrideTranscoder
from repro.energy import normalized_energy_removed

STRIDES = (1, 2, 4, 8, 16, 24, 32)


def compute():
    traces = traces_for("register")
    curves = sweep_savings(traces, lambda s: StrideTranscoder(s, 32), STRIDES)
    inversion = {
        name: normalized_energy_removed(
            trace, InversionTranscoder(32, 1, 1.0).encode_trace(trace)
        )
        for name, trace in traces.items()
    }
    return curves, inversion


def test_fig17(benchmark):
    curves, inversion = run_once(benchmark, compute)
    print_banner("Figure 17: % energy removed vs #strides (register bus)")
    print(format_series("strides", list(STRIDES), curves, precision=1))

    # Strides add nothing on random traffic (flat polarity-mux floor).
    assert max(curves["random"]) - min(curves["random"]) < 1.5
    # Mean best-stride savings stay modest — the paper's conclusion that
    # stride prediction is not the best stateful mechanism: on average
    # the stateless inversion coder family is competitive or better.
    names = [n for n in curves if n != "random"]
    stride_mean = np.mean([max(curves[n]) for n in names])
    inversion_mean = np.mean([inversion[n] for n in names])
    print(f"\nmean best-stride {stride_mean:.1f}% vs inversion {inversion_mean:.1f}%")
    assert stride_mean < inversion_mean + 12.0
