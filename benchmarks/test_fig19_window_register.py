"""Figure 19: window-based transcoder vs shift-register size, register bus.

Paper shapes: same knee near 8 entries as Figure 18; at that point the
transcoder removes a double-digit percentage of bus energy on typical
benchmarks (the paper reports 19-25%).
"""

import numpy as np
from _common import median_curve, print_banner, run_once, sweep_savings, traces_for

from repro.analysis import format_series
from repro.coding import WindowTranscoder

SIZES = (2, 4, 8, 16, 32, 48, 64)


def compute():
    return sweep_savings(
        traces_for("register", include_random=False),
        lambda s: WindowTranscoder(s, 32),
        SIZES,
    )


def test_fig19(benchmark):
    curves = run_once(benchmark, compute)
    print_banner("Figure 19: % energy removed vs window size (register bus)")
    print(format_series("entries", list(SIZES), curves, precision=1))

    median = median_curve(curves)
    print("\nmedian:", np.round(median, 1))
    # The knee: most of the 64-entry savings are available at 8.
    assert median[2] > 0.55 * median[-1]
    # Respectable double-digit savings for the better benchmarks.
    best = max(max(curve) for curve in curves.values())
    assert best > 20.0
