"""Figure 15: inversion coders vs the wire's actual coupling ratio.

Three cost beliefs — lambda-0 (classic bus-invert), lambda-1 and
lambda-N (oracle) — evaluated on register traffic, memory traffic and
uniform random data while the *actual* lambda sweeps 0.1..100.

Paper shapes: the lambda-1 coder tracks the oracle except at extreme
actual lambda; random data overstates what coding achieves on real
traffic (its curves sit lower = more energy removed) except at small
actual lambda.
"""

import numpy as np
from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import format_series
from repro.coding import InversionTranscoder
from repro.energy import weighted_activity
from repro.workloads import memory_trace, random_trace, register_trace

ACTUAL_LAMBDAS = (0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0)
BENCHMARKS = ("gcc", "swim", "su2cor", "turb3d")


def _average_remaining(traces, assumed, actual):
    """Mean % of lambda-weighted energy remaining after coding."""
    remaining = []
    for trace in traces:
        coder = InversionTranscoder(32, 1, assumed_lambda=assumed)
        coded = coder.encode_trace(trace)
        remaining.append(
            100.0 * weighted_activity(coded, actual) / weighted_activity(trace, actual)
        )
    return float(np.mean(remaining))


def compute():
    reg = [register_trace(b, BENCH_CYCLES) for b in BENCHMARKS]
    mem = [memory_trace(b, BENCH_CYCLES) for b in BENCHMARKS]
    rand = [random_trace(BENCH_CYCLES, seed=42)]
    series = {}
    for group_name, group in (("reg", reg), ("mem", mem), ("random", rand)):
        for coder_name, assumed in (("l0", 0.0), ("l1", 1.0), ("lN", None)):
            series[f"{group_name} {coder_name}"] = [
                _average_remaining(
                    group, actual if assumed is None else assumed, actual
                )
                for actual in ACTUAL_LAMBDAS
            ]
    return series


def test_fig15(benchmark):
    series = run_once(benchmark, compute)
    print_banner("Figure 15: % energy remaining vs actual lambda (inversion coders)")
    print(format_series("lambda", list(ACTUAL_LAMBDAS), series, precision=1))

    for group in ("reg", "mem", "random"):
        oracle = np.array(series[f"{group} lN"])
        l1 = np.array(series[f"{group} l1"])
        l0 = np.array(series[f"{group} l0"])
        # The oracle never loses to a fixed-belief coder (small numeric
        # slack for greedy tie-breaks).
        assert (oracle <= l1 + 1.0).all()
        assert (oracle <= l0 + 1.0).all()
        # lambda-1 approximates the oracle well at moderate lambda
        # (paper: "codes with measured lambda = 1 is pretty accurate").
        mid = ACTUAL_LAMBDAS.index(1.0)
        assert abs(l1[mid] - oracle[mid]) < 2.0

    # Random data flatters the coder: at high actual lambda it removes
    # more energy than it does on real register traffic.
    assert series["random lN"][-1] < series["reg lN"][-1] + 2.0
