"""Figure 37: crossover scaling on the register bus.

Median total-energy ratio curves for SPECint and SPECfp across the
three technologies and the 8/16-entry designs.  Paper shapes: the
crossing point (ratio = 1) moves to shorter wires as technology
shrinks, and the 16-entry design crosses no later than the 8-entry one
at the smallest node.
"""

import numpy as np
from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import CrossoverAnalysis, format_series, median_crossover
from repro.wires import TECHNOLOGIES
from repro.workloads import FP_WORKLOADS, INT_WORKLOADS, register_trace

LENGTHS = (2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0)


def compute():
    int_traces = [register_trace(n, BENCH_CYCLES) for n in INT_WORKLOADS]
    fp_traces = [register_trace(n, BENCH_CYCLES) for n in FP_WORKLOADS]
    series = {}
    crossovers = {}
    for tech in TECHNOLOGIES:
        for size in (8, 16):
            for suite, traces in (("specINT", int_traces), ("specFP", fp_traces)):
                analyses = [CrossoverAnalysis(t, tech, size) for t in traces]
                curves = np.array([a.curve(LENGTHS) for a in analyses])
                label = f"{tech.name} {size}-entry {suite}"
                series[label] = list(np.median(curves, axis=0))
                crossovers[label] = median_crossover(analyses)
    return series, crossovers


def test_fig37(benchmark):
    series, crossovers = run_once(benchmark, compute)
    print_banner("Figure 37: median total-energy ratio vs length (register bus)")
    print(format_series("mm", list(LENGTHS), series, precision=3))
    print("\nmedian crossovers (mm):")
    for label, value in crossovers.items():
        print(f"  {label:28s} {value:6.1f}")

    # Technology scaling: the 0.07um design crosses over no later than
    # the 0.13um design for the same suite/size.
    for size in (8, 16):
        for suite in ("specINT", "specFP"):
            large = crossovers[f"0.13um {size}-entry {suite}"]
            small = crossovers[f"0.07um {size}-entry {suite}"]
            assert small <= large + 1.0, (size, suite)
    # Every median curve decreases with length.
    for label, curve in series.items():
        assert (np.diff(np.array(curve)) < 1e-9).all(), label
