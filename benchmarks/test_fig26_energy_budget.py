"""Figure 26: the transcoder energy budget.

Per-cycle energy freed on the wire vs total dictionary entries, for 5,
10 and 15 mm buses, window and context designs (register traffic).
Paper shapes: the budget grows with wire length; window and context
track each other closely at these lengths (which is why complexity
breaks the tie in the paper).
"""

import numpy as np
from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import budget_curve, format_series
from repro.wires import TECH_013
from repro.workloads import register_trace

ENTRY_COUNTS = (10, 16, 24, 32, 48, 64)
LENGTHS_MM = (5.0, 10.0, 15.0)
BENCHMARK = "m88ksim"


def compute():
    trace = register_trace(BENCHMARK, BENCH_CYCLES)
    series = {}
    for length in LENGTHS_MM:
        for design in ("window", "context"):
            label = f"{int(length)}mm {design}"
            series[label] = [
                value * 1e12
                for value in budget_curve(trace, TECH_013, length, ENTRY_COUNTS, design)
            ]
    return series


def test_fig26(benchmark):
    series = run_once(benchmark, compute)
    print_banner("Figure 26: energy budget (pJ/cycle) vs total entries")
    print(format_series("entries", list(ENTRY_COUNTS), series, precision=3))

    for design in ("window", "context"):
        b5 = np.array(series[f"5mm {design}"])
        b10 = np.array(series[f"10mm {design}"])
        b15 = np.array(series[f"15mm {design}"])
        # Budget scales with wire length (each saved transition is worth
        # more on a longer wire).
        assert (b15 > b10).all() and (b10 > b5).all()
    # Window and context budgets are of the same order at these lengths.
    w = np.array(series["10mm window"])
    c = np.array(series["10mm context"])
    assert (np.abs(w - c) < 0.6 * np.maximum(np.abs(w), np.abs(c)) + 0.3).all()
