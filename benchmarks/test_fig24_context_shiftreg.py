"""Figure 24: context transcoder vs shift-register size (register bus).

Tables of 16 and 64 entries, shift register swept 2..32.  Paper shape:
8 shift-register entries are a good complexity/savings trade-off; the
larger table dominates the smaller at every shift-register size.
"""

import numpy as np
from _common import BENCH_CYCLES, print_banner, run_once

from repro.analysis import format_series
from repro.coding import ContextTranscoder, VALUE_BASED
from repro.energy import normalized_energy_removed
from repro.workloads import register_trace

BENCHMARKS = ("li", "compress", "gcc", "perl", "fpppp", "apsi", "swim")
SHIFT_SIZES = (2, 4, 8, 16, 32)
TABLE_SIZES = (16, 64)


def compute():
    series = {}
    for name in BENCHMARKS:
        trace = register_trace(name, BENCH_CYCLES)
        for table in TABLE_SIZES:
            series[f"{name}:{table}"] = [
                normalized_energy_removed(
                    trace,
                    ContextTranscoder(table, sr, VALUE_BASED).encode_trace(trace),
                )
                for sr in SHIFT_SIZES
            ]
    return series


def test_fig24(benchmark):
    series = run_once(benchmark, compute)
    print_banner("Figure 24: % energy removed vs shift-register size (tables 16/64)")
    print(format_series("shift_reg", list(SHIFT_SIZES), series, precision=1))

    index8 = SHIFT_SIZES.index(8)
    small_median = np.median([series[f"{n}:16"] for n in BENCHMARKS], axis=0)
    large_median = np.median([series[f"{n}:64"] for n in BENCHMARKS], axis=0)
    # On the benchmark median, a 4x table never hurts by more than noise
    # (individual dictionary-hostile benchmarks like li may disagree).
    assert (large_median >= small_median - 4.0).all()
    # 8 shift-register entries capture most of the median curve (the
    # paper's complexity/savings trade-off; individual benchmarks like
    # gcc keep gaining past 8).
    assert small_median[index8] >= small_median[-1] - 8.0
