"""Unit tests for the Johnson counter model."""

import pytest

from repro.hardware import MAX_COUNT, JohnsonCounter


class TestCounting:
    def test_counts_up(self):
        counter = JohnsonCounter()
        for expected in range(1, 20):
            counter.increment()
            assert counter.value == expected

    def test_single_flip_within_stage(self):
        # The Johnson property: most increments flip exactly one bit.
        counter = JohnsonCounter()
        assert counter.increment() == 1

    def test_stage_wrap_costs_extra_flip(self):
        counter = JohnsonCounter(7)  # first 8-state ring about to wrap
        flips = counter.increment()
        assert counter.value == 8
        assert flips == 2  # ring 0 wraps + ring 1 advances

    def test_average_flips_close_to_one(self):
        counter = JohnsonCounter()
        total = sum(counter.increment() for _ in range(511))
        assert total / 511 < 1.25

    def test_saturates_at_max(self):
        counter = JohnsonCounter(MAX_COUNT - 1)
        assert counter.saturated
        assert counter.increment() == 0
        assert counter.value == MAX_COUNT - 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            JohnsonCounter(MAX_COUNT)
        with pytest.raises(ValueError):
            JohnsonCounter(-1)


class TestHalving:
    def test_halve_divides_value(self):
        counter = JohnsonCounter(100)
        counter.halve()
        assert counter.value == 50

    def test_halve_zero_is_free(self):
        counter = JohnsonCounter(0)
        assert counter.halve() == 0

    def test_halve_reports_flips(self):
        counter = JohnsonCounter(9)
        flips = counter.halve()
        assert counter.value == 4
        assert flips > 0
