"""Tests for the resilient transcoder wrapper.

Covers the acceptance contract of the fault subsystem:

* with fault injection disabled, ``ResilientTranscoder(coder)``
  reproduces the wrapped coder's decoded stream bit-exactly and its
  energy equals the wrapped coder's plus the parity-wire overhead;
* an injected desync under ``reset-both`` recovers within K cycles;
* the NACK policies recover one cycle after detection;
* decode paths that hit never-written dictionary slots raise a typed
  :class:`DesyncError` carrying coder name and cycle.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding import (
    CTRL_CODE,
    ContextTranscoder,
    DesyncError,
    FCMTranscoder,
    StrideTranscoder,
    WindowTranscoder,
)
from repro.coding.codebook import codeword_table
from repro.energy import count_activity, weighted_activity
from repro.faults import (
    FallbackStateless,
    ResetBoth,
    ResilientTranscoder,
    ResyncOnError,
    Scripted,
    StuckAt,
)
from repro.traces import BusTrace
from repro.workloads import locality_trace

POLICY_NAMES = ("reset-both", "fallback-stateless", "resync-on-error")


def _coders():
    return [
        WindowTranscoder(8, 32),
        ContextTranscoder(12, 4, width=32),
        StrideTranscoder(4, 32),
        FCMTranscoder(2, 4, 32),
    ]


@pytest.fixture(scope="module")
def short_local():
    # Seed chosen so the scripted double-flip scenario below actually
    # produces a silent (parity-preserving) corruption on this trace.
    return locality_trace(1200, seed=1)


class TestFaultFreeTransparency:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_roundtrip_bit_exact_all_coders(self, policy, short_local):
        for base in _coders():
            resilient = ResilientTranscoder(base, policy)
            recovered = resilient.roundtrip(short_local)
            assert np.array_equal(recovered.values, short_local.values), (
                type(base).__name__,
                policy,
            )

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_cosimulation_bit_exact_without_faults(self, policy, short_local):
        resilient = ResilientTranscoder(WindowTranscoder(8, 32), policy)
        run = resilient.run(short_local)
        assert np.array_equal(run.decoded.values, short_local.values)
        assert run.detections == []
        assert run.recoveries == []
        assert run.value_errors == 0
        assert run.injected_cycles == 0
        assert math.isnan(run.mean_cycles_to_recovery)

    def test_energy_is_base_plus_parity_overhead(self, short_local):
        """Reported energy == wrapped coder's + the parity-wire overhead."""
        base = WindowTranscoder(8, 32)
        resilient = ResilientTranscoder(WindowTranscoder(8, 32), "reset-both")
        coded = base.encode_trace(short_local)
        # The documented overhead: the same wire states plus one parity
        # wire above the MSB, carrying even parity of each state.
        parity = np.array(
            [bin(int(v)).count("1") & 1 for v in coded.values], dtype=np.uint64
        )
        expected = BusTrace(
            coded.values | (parity << np.uint64(base.output_width)),
            resilient.output_width,
        )
        actual = resilient.encode_trace(short_local)
        assert np.array_equal(actual.values, expected.values)
        assert weighted_activity(actual, 1.0) == weighted_activity(expected, 1.0)
        # and the base coder's own wires contribute exactly the base energy
        base_only = count_activity(coded)
        combined = count_activity(actual)
        assert np.array_equal(combined.tau[: base.output_width], base_only.tau)

    def test_feedback_wire_silent_without_faults(self, short_local):
        resilient = ResilientTranscoder(WindowTranscoder(8, 32), "resync-on-error")
        assert resilient.output_width == 32 + 2 + 2  # data+ctrl+parity+NACK
        run = resilient.run(short_local)
        fb = resilient.feedback_wire
        assert all(int(v) >> fb & 1 == 0 for v in run.physical.values)

    def test_width_mismatch_rejected(self):
        resilient = ResilientTranscoder(WindowTranscoder(8, 16))
        with pytest.raises(ValueError):
            resilient.run(BusTrace.from_values([1, 2], width=8))

    def test_empty_trace(self):
        resilient = ResilientTranscoder(WindowTranscoder(8, 16))
        run = resilient.run(BusTrace.from_values([], width=16))
        assert len(run.decoded) == 0
        assert run.correct_fraction == 1.0


class TestHypothesisRoundTrip:
    @settings(deadline=None, max_examples=60)
    @given(
        values=st.lists(st.integers(0, (1 << 16) - 1), max_size=40),
        policy=st.sampled_from(POLICY_NAMES),
    )
    def test_roundtrips_exactly_when_channel_disabled(self, values, policy):
        trace = BusTrace.from_values(values, width=16)
        resilient = ResilientTranscoder(WindowTranscoder(4, 16), policy)
        run = resilient.run(trace)  # no channel at all
        assert list(run.decoded.values) == [v & 0xFFFF for v in values]
        assert run.value_errors == 0 and run.detections == []


class TestRecovery:
    def test_reset_both_recovers_within_k_cycles(self, short_local):
        period = 64
        resilient = ResilientTranscoder(
            WindowTranscoder(8, 32), ResetBoth(period=period)
        )
        run = resilient.run(short_local, Scripted({10: 0b1}))  # flip data wire 0
        assert 10 in run.detections
        assert run.recoveries, "desync must close at the next scheduled reset"
        first = run.recoveries[0]
        assert first.detected == 10
        assert first.recovered == period  # next multiple of the period
        assert first.cycles <= period
        truth = short_local.values
        assert np.array_equal(run.decoded.values[period:], truth[period:])

    @pytest.mark.parametrize(
        "policy", [FallbackStateless(window=16), ResyncOnError()]
    )
    def test_nack_policies_recover_next_cycle(self, policy, short_local):
        resilient = ResilientTranscoder(WindowTranscoder(8, 32), policy)
        run = resilient.run(short_local, Scripted({10: 0b1}))
        assert run.detections == [10]
        assert run.recoveries == [type(run.recoveries[0])(10, 11)]
        assert run.mean_cycles_to_recovery == 1.0
        truth = short_local.values
        assert np.array_equal(run.decoded.values[11:], truth[11:])
        # the NACK wire really toggled in the detection cycle
        fb = resilient.feedback_wire
        assert int(run.physical.values[10]) >> fb & 1 == 1

    def test_parity_wire_false_positive_still_recovers(self, short_local):
        # Flip only the parity wire: the FSMs were still in sync, but the
        # receiver must discard the word and resynchronise anyway.
        resilient = ResilientTranscoder(WindowTranscoder(8, 32), ResyncOnError())
        mask = 1 << resilient.parity_wire
        run = resilient.run(short_local, Scripted({20: mask}))
        assert run.detections == [20]
        truth = short_local.values
        assert np.array_equal(run.decoded.values[21:], truth[21:])

    def test_stuck_at_wire_defeats_periodic_recovery(self, short_local):
        # A hard fault re-desyncs after every reset: many detections,
        # imperfect delivery — the sweep exposes exactly this.
        resilient = ResilientTranscoder(
            WindowTranscoder(8, 32), ResetBoth(period=50)
        )
        run = resilient.run(short_local, StuckAt(wire=0, value=1))
        assert len(run.detections) > 5
        assert run.correct_fraction < 1.0

    def test_double_flip_can_be_silent_but_is_counted(self, short_local):
        # Two flipped wires preserve parity: the error is undetectable
        # that cycle and must show up in the silent-corruption counter.
        resilient = ResilientTranscoder(
            WindowTranscoder(8, 32), ResetBoth(period=64)
        )
        run = resilient.run(short_local, Scripted({10: 0b11}))
        assert run.value_errors > 0
        assert run.silent_errors >= 1


class TestEmptySlotDecodePaths:
    def test_decoding_never_written_window_slot_raises_desync(self):
        coder = WindowTranscoder(4, 8)
        # Codeword for slot index 2 (window slot 1), sent as the very
        # first state: the decoder's window is still empty there.
        codeword = codeword_table(coder.predictor.num_codes, 8)[2]
        state = coder._pack(codeword, CTRL_CODE)
        coder.reset()
        with pytest.raises(DesyncError) as excinfo:
            coder.decode_trace(BusTrace.from_values([state], width=coder.output_width))
        err = excinfo.value
        assert err.coder == "WindowTranscoder"
        assert err.cycle == 0
        assert "empty" in str(err)

    def test_desync_error_cycle_tracks_position(self):
        coder = WindowTranscoder(4, 8)
        coder.reset()
        good = coder.encode_trace(BusTrace.from_values([7, 7], width=8))
        codeword = codeword_table(coder.predictor.num_codes, 8)[3]
        last_data = int(good.values[-1]) & 0xFF
        bad_state = coder._pack(last_data ^ codeword, CTRL_CODE)  # slot 2: empty
        states = list(good.values) + [bad_state]
        with pytest.raises(DesyncError) as excinfo:
            coder.decode_trace(
                BusTrace.from_values(states, width=coder.output_width)
            )
        assert excinfo.value.cycle == 2

    def test_power_on_parity_decode_is_clean(self):
        # Plain decode_state on the resilient wrapper: parity mismatch
        # surfaces as DesyncError, not a bare ValueError subclass-less.
        resilient = ResilientTranscoder(WindowTranscoder(4, 8))
        resilient.reset()
        state = 1 << resilient.parity_wire  # parity claims odd, state is 0
        with pytest.raises(DesyncError):
            resilient.decode_state(state)
