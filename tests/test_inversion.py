"""Unit tests for the generalized inversion coder (Figure 10)."""

import numpy as np
import pytest

from repro.coding import InversionTranscoder, default_patterns
from repro.energy import count_activity, weighted_activity
from repro.traces import BusTrace
from repro.workloads import random_trace


class TestPatterns:
    def test_one_bit_is_classic_bus_invert(self):
        assert default_patterns(1, 32) == [0, 0xFFFFFFFF]

    def test_identity_always_first(self):
        for k in (1, 2, 3):
            assert default_patterns(k, 32)[0] == 0

    def test_patterns_distinct(self):
        patterns = default_patterns(3, 32)
        assert len(set(patterns)) == 8

    def test_too_many_control_bits_raises(self):
        with pytest.raises(ValueError):
            default_patterns(4, 32)


class TestInversionCoder:
    def test_roundtrip(self, rand_trace):
        coder = InversionTranscoder(32, 1)
        assert np.array_equal(coder.roundtrip(rand_trace).values, rand_trace.values)

    def test_roundtrip_two_control_bits(self, local_trace):
        coder = InversionTranscoder(32, 2)
        assert np.array_equal(coder.roundtrip(local_trace).values, local_trace.values)

    def test_output_width(self):
        assert InversionTranscoder(32, 1).output_width == 33
        assert InversionTranscoder(32, 3).output_width == 35

    def test_never_more_than_half_data_transitions(self):
        # Bus-invert's defining guarantee, counted on the data wires.
        trace = random_trace(500, seed=5)
        phys = InversionTranscoder(32, 1, assumed_lambda=0.0).encode_trace(trace)
        toggles = phys.transition_vectors()
        for t in toggles:
            data_toggles = bin(int(t) & 0xFFFFFFFF).count("1")
            assert data_toggles <= 16

    def test_repeated_values_stay_free(self):
        # Section 5.2: minimising against the current bus value keeps
        # repeats at zero transitions.
        trace = BusTrace.from_values([0xDEAD, 0xDEAD, 0xDEAD], width=32)
        phys = InversionTranscoder(32, 1).encode_trace(trace)
        assert count_activity(phys).total_transitions == count_activity(
            phys.head(1)
        ).total_transitions

    def test_saves_on_random_traffic(self):
        trace = random_trace(2000, seed=1)
        phys = InversionTranscoder(32, 1, assumed_lambda=1.0).encode_trace(trace)
        assert weighted_activity(phys, 1.0) < weighted_activity(trace, 1.0)

    def test_lambda_aware_choice_helps_at_high_lambda(self):
        # Figure 15: at large actual lambda, the coder that knows lambda
        # does at least as well as the lambda-0 coder.
        trace = random_trace(1500, seed=2)
        actual = 10.0
        blind = InversionTranscoder(32, 1, assumed_lambda=0.0).encode_trace(trace)
        aware = InversionTranscoder(32, 1, assumed_lambda=actual).encode_trace(trace)
        assert weighted_activity(aware, actual) <= weighted_activity(blind, actual) * 1.02

    def test_rejects_bad_patterns(self):
        with pytest.raises(ValueError):
            InversionTranscoder(8, 1, patterns=[1, 2])  # first must be 0
        with pytest.raises(ValueError):
            InversionTranscoder(8, 1, patterns=[0])  # wrong count
        with pytest.raises(ValueError):
            InversionTranscoder(8, 1, patterns=[0, 0])  # duplicates

    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError):
            InversionTranscoder(8, 1, assumed_lambda=-1.0)

    def test_custom_patterns_roundtrip(self):
        coder = InversionTranscoder(8, 1, patterns=[0, 0x0F])
        trace = BusTrace.from_values([0x12, 0xF0, 0x0F, 0xFF], width=8)
        assert list(coder.roundtrip(trace)) == [0x12, 0xF0, 0x0F, 0xFF]
