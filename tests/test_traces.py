"""Unit tests for the BusTrace container."""

import numpy as np
import pytest

from repro.traces import BusTrace


class TestConstruction:
    def test_masks_values_to_width(self):
        trace = BusTrace.from_values([0x1FF, 0x100], width=8)
        assert list(trace) == [0xFF, 0x00]

    def test_masks_initial_state(self):
        trace = BusTrace.from_values([0], width=4, initial=0xFF)
        assert trace.initial == 0xF

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            BusTrace.from_values([1], width=0)

    def test_rejects_width_over_64(self):
        with pytest.raises(ValueError):
            BusTrace.from_values([1], width=65)

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError):
            BusTrace(np.zeros((2, 2)), width=8)

    def test_values_are_read_only(self):
        trace = BusTrace.from_values([1, 2, 3], width=8)
        with pytest.raises(ValueError):
            trace.values[0] = 9

    def test_accepts_width_64(self):
        trace = BusTrace.from_values([2**63 + 1], width=64)
        assert trace[0] == 2**63 + 1


class TestContainerProtocol:
    def test_len(self, tiny_trace):
        assert len(tiny_trace) == 8

    def test_iter_yields_python_ints(self, tiny_trace):
        values = list(tiny_trace)
        assert all(isinstance(v, int) for v in values)

    def test_getitem_scalar(self, tiny_trace):
        assert tiny_trace[4] == 0xF0

    def test_getitem_slice_returns_trace(self, tiny_trace):
        part = tiny_trace[2:5]
        assert isinstance(part, BusTrace)
        assert list(part) == [0x1, 0x3, 0xF0]

    def test_slice_carries_previous_value_as_initial(self, tiny_trace):
        part = tiny_trace[3:]
        assert part.initial == 0x1  # value at index 2

    def test_slice_from_zero_keeps_initial(self):
        trace = BusTrace.from_values([1, 2], width=8, initial=7)
        assert trace[0:1].initial == 7


class TestDerivedViews:
    def test_bit_matrix_shape_and_content(self):
        trace = BusTrace.from_values([0b101, 0b010], width=3)
        matrix = trace.bit_matrix()
        assert matrix.shape == (2, 3)
        assert list(matrix[0]) == [1, 0, 1]  # LSB first
        assert list(matrix[1]) == [0, 1, 0]

    def test_transition_vectors_start_from_initial(self):
        trace = BusTrace.from_values([0b11, 0b01], width=2, initial=0b10)
        xors = trace.transition_vectors()
        assert list(xors) == [0b01, 0b10]

    def test_head(self, tiny_trace):
        assert len(tiny_trace.head(3)) == 3
        assert tiny_trace.head(3).initial == tiny_trace.initial

    def test_with_name(self, tiny_trace):
        renamed = tiny_trace.with_name("other")
        assert renamed.name == "other"
        assert np.array_equal(renamed.values, tiny_trace.values)

    def test_unique_values(self):
        trace = BusTrace.from_values([5, 5, 2, 9, 2], width=8)
        assert list(trace.unique_values()) == [2, 5, 9]

    def test_mask(self):
        assert BusTrace.from_values([0], width=12).mask == 0xFFF


class TestSliceMethod:
    def test_matches_getitem_slicing(self, tiny_trace):
        part = tiny_trace.slice(2, 5)
        assert list(part) == list(tiny_trace)[2:5]
        assert part.width == tiny_trace.width

    def test_initial_is_previous_cycle_value(self, tiny_trace):
        assert tiny_trace.slice(3, 6).initial == list(tiny_trace)[2]

    def test_start_zero_keeps_trace_initial(self):
        trace = BusTrace.from_values([1, 2, 3], width=8, initial=0x55)
        assert trace.slice(0, 2).initial == 0x55

    def test_none_stop_runs_to_end(self, tiny_trace):
        assert list(tiny_trace.slice(5)) == list(tiny_trace)[5:]

    def test_negative_indices_follow_python_semantics(self, tiny_trace):
        assert list(tiny_trace.slice(-3, -1)) == list(tiny_trace)[-3:-1]

    def test_empty_and_inverted_ranges_yield_empty_trace(self, tiny_trace):
        assert len(tiny_trace.slice(4, 4)) == 0
        assert len(tiny_trace.slice(6, 2)) == 0

    def test_propagates_name(self, tiny_trace):
        assert tiny_trace.slice(1, 4).name == tiny_trace.name

    def test_activity_sums_across_adjacent_slices(self, tiny_trace):
        from repro.energy import count_activity

        whole = count_activity(tiny_trace)
        cut = 3
        split = count_activity(tiny_trace.slice(0, cut)) + count_activity(
            tiny_trace.slice(cut, len(tiny_trace))
        )
        assert whole.total_transitions == split.total_transitions
        assert whole.total_coupling == split.total_coupling


class TestConcat:
    def test_round_trips_a_sliced_trace(self, tiny_trace):
        parts = [tiny_trace.slice(0, 3), tiny_trace.slice(3, 5), tiny_trace.slice(5, 8)]
        whole = BusTrace.concat(*parts)
        assert np.array_equal(whole.values, tiny_trace.values)
        assert whole.initial == tiny_trace.initial
        assert whole.width == tiny_trace.width
        assert whole.name == tiny_trace.name

    def test_requires_at_least_one_trace(self):
        with pytest.raises(ValueError):
            BusTrace.concat()

    def test_rejects_mismatched_widths(self):
        a = BusTrace.from_values([1], width=8)
        b = BusTrace.from_values([1], width=16)
        with pytest.raises(ValueError):
            BusTrace.concat(a, b)

    def test_values_stay_masked_to_shared_width(self):
        a = BusTrace.from_values([0x1FF], width=8)
        b = BusTrace.from_values([0x2AA], width=8)
        joined = BusTrace.concat(a, b)
        assert list(joined) == [0xFF, 0xAA]
        assert joined.mask == 0xFF

    def test_name_is_first_nonempty(self):
        a = BusTrace.from_values([1], width=8, name="")
        b = BusTrace.from_values([2], width=8, name="second")
        c = BusTrace.from_values([3], width=8, name="third")
        assert BusTrace.concat(a, b, c).name == "second"

    def test_initial_is_first_parts(self):
        a = BusTrace.from_values([1], width=8, initial=0x7)
        b = BusTrace.from_values([2], width=8, initial=0x9)
        assert BusTrace.concat(a, b).initial == 0x7

    def test_single_part_identity(self, tiny_trace):
        joined = BusTrace.concat(tiny_trace)
        assert np.array_equal(joined.values, tiny_trace.values)
        assert joined.initial == tiny_trace.initial
