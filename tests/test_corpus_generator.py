"""Tests for the seeded parametric stream generator.

The determinism contract, property-tested: a stream is a pure function
of ``(corpus_seed, stream_index)`` — byte-identical under *any*
chunking (hypothesis), across processes (subprocess re-generation) and
across ``--jobs`` pool workers (``parallel_map_cells``) — and large
populations are pairwise distinct.  Dial sanity ties each profile knob
to the paper statistic it is documented to move: repeat/reuse dials to
the window-predictor hit rate, ``entropy_bits`` to transition density,
``stride_fraction`` to the stride predictor.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding import StrideTranscoder, WindowTranscoder
from repro.analysis.parallel import parallel_map_cells
from repro.corpus import (
    GENERATOR_BLOCK,
    GeneratorMix,
    ParametricGenerator,
    PROFILES,
    StreamProfile,
    digest_values,
    parse_generator_spec,
)
from repro.energy import count_activity
from repro.traces import BusTrace


def stream_digest(seed, index, profile="mixed", cycles=200, width=32):
    gen = ParametricGenerator(profile, seed=seed, cycles=cycles, width=width)
    return digest_values([gen.stream(index).values])


class TestChunkingInvariance:
    @given(
        profile=st.sampled_from(sorted(PROFILES)),
        index=st.integers(0, 50),
        cycles=st.integers(1, 600),
        chunk=st.integers(1, 700),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_chunking_equals_one_shot(self, profile, index, cycles, chunk):
        gen = ParametricGenerator(profile, seed=5, cycles=cycles, width=32)
        whole = gen.stream(index)
        parts = list(gen.chunks(index, chunk_cycles=chunk))
        rejoined = BusTrace.concat(*parts)
        assert np.array_equal(rejoined.values, whole.values)
        assert rejoined.initial == whole.initial == 0
        # Chunk initials chain, so per-chunk activity sums exactly.
        total = sum(count_activity(p).total_transitions for p in parts)
        assert total == count_activity(whole).total_transitions

    def test_chunking_straddles_generator_blocks(self):
        # Chunk sizes around the internal block size are the edge the
        # fixed-block design exists for.
        cycles = GENERATOR_BLOCK * 2 + 17
        gen = ParametricGenerator("locality", seed=1, cycles=cycles, width=32)
        whole = gen.stream(0)
        for chunk in (1, GENERATOR_BLOCK - 1, GENERATOR_BLOCK, GENERATOR_BLOCK + 1):
            parts = list(gen.chunks(0, chunk_cycles=chunk))
            assert np.array_equal(
                BusTrace.concat(*parts).values, whole.values
            ), chunk


class TestCrossProcessStability:
    def test_streams_are_byte_stable_across_processes(self):
        expected = [stream_digest(7, i) for i in range(3)]
        script = (
            "from tests.test_corpus_generator import stream_digest;"
            "print('\\n'.join(stream_digest(7, i) for i in range(3)))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.split() == expected

    def test_streams_are_byte_stable_across_pool_workers(self):
        indices = list(range(8))
        serial = [
            o.value
            for o in parallel_map_cells(
                lambda i: stream_digest(3, i), indices, jobs=1
            )
        ]
        pooled = [
            o.value
            for o in parallel_map_cells(
                lambda i: stream_digest(3, i), indices, jobs=4
            )
        ]
        assert pooled == serial

    def test_different_seeds_and_indices_differ(self):
        assert stream_digest(1, 0) != stream_digest(2, 0)
        assert stream_digest(1, 0) != stream_digest(1, 1)

    def test_stream_name_is_stable_and_tagged_by_mix_component(self):
        gen = ParametricGenerator("mixed", seed=7, cycles=64, width=32)
        names = [gen.stream_name(i) for i in range(20)]
        assert names == [gen.stream_name(i) for i in range(20)]
        assert all(name.startswith("gen7/") for name in names)
        components = {name.split(":")[1] for name in names if ":" in name}
        assert len(components) > 1  # the mix actually mixes


class TestPopulation:
    def test_ten_thousand_streams_are_pairwise_distinct(self):
        gen = ParametricGenerator("mixed", seed=11, cycles=32, width=32)
        digests = {
            digest_values([gen.stream(i).values]) for i in range(10_000)
        }
        assert len(digests) == 10_000

    def test_parse_spec_population_and_defaults(self):
        gen, population = parse_generator_spec(
            "gen:locality,seed=9,population=10000,cycles=128,width=16"
        )
        assert population == 10_000
        assert gen.seed == 9 and gen.cycles == 128 and gen.width == 16
        _gen, default_population = parse_generator_spec("gen:")
        assert default_population >= 1

    def test_parse_spec_rejects_unknown_profile_and_keys(self):
        with pytest.raises(ValueError, match="unknown generator profile"):
            parse_generator_spec("gen:nosuch")
        with pytest.raises(ValueError):
            parse_generator_spec("gen:locality,flavor=3")


class TestDialSanity:
    """Each dial moves the paper statistic it is documented to move."""

    WIDTH = 32
    CYCLES = 4000

    def trace(self, profile, seed=0):
        return ParametricGenerator(
            profile, seed=seed, cycles=self.CYCLES, width=self.WIDTH
        ).stream(0)

    def hit_rate(self, coder, trace):
        """Fraction of cycles the predictor's dictionary hit (the coded
        stream re-sends fewer full words the more the predictor hits,
        so compare via transition density)."""
        coder.reset()
        coded = coder.encode_trace(trace)
        return count_activity(coded).total_transitions

    def test_locality_dials_raise_window_predictor_value(self):
        local = self.trace("locality")
        uniform = self.trace("uniform")
        local_cost = self.hit_rate(WindowTranscoder(8, self.WIDTH), local)
        uniform_cost = self.hit_rate(WindowTranscoder(8, self.WIDTH), uniform)
        assert local_cost < 0.7 * uniform_cost

    def test_stride_dial_feeds_the_stride_predictor(self):
        strided = self.trace("stride")
        uniform = self.trace("uniform")
        strided_cost = self.hit_rate(StrideTranscoder(4, self.WIDTH), strided)
        uniform_cost = self.hit_rate(StrideTranscoder(4, self.WIDTH), uniform)
        assert strided_cost < 0.7 * uniform_cost

    def test_entropy_bits_thin_transition_density(self):
        low = self.trace("lowentropy")
        uniform = self.trace("uniform")
        assert (
            count_activity(low).total_transitions
            < 0.5 * count_activity(uniform).total_transitions
        )

    def test_burst_hold_raises_repeat_runs(self):
        bursty = self.trace("bursty")
        uniform = self.trace("uniform")

        def repeats(trace):
            return int(np.sum(trace.values[1:] == trace.values[:-1]))

        assert repeats(bursty) > repeats(uniform) + self.CYCLES // 50

    def test_phase_profile_alternates_behaviour(self):
        # Odd phases are stride-dominant: consecutive differences inside
        # them concentrate on the stride constant.
        profile = StreamProfile(phase_cycles=512, stride=4)
        trace = ParametricGenerator(
            profile, seed=2, cycles=2048, width=self.WIDTH
        ).stream(0)
        diffs = np.diff(trace.values.astype(np.int64))
        odd_phase = diffs[512:1024]
        even_phase = diffs[:512]
        odd_strideness = np.mean(odd_phase == 4)
        even_strideness = np.mean(even_phase == 4)
        assert odd_strideness > even_strideness + 0.3


class TestValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            StreamProfile(repeat_fraction=1.5)
        with pytest.raises(ValueError):
            StreamProfile(
                repeat_fraction=0.5, reuse_fraction=0.4, stride_fraction=0.2
            )

    def test_structural_bounds(self):
        with pytest.raises(ValueError):
            StreamProfile(working_set=0)
        with pytest.raises(ValueError):
            StreamProfile(entropy_bits=0)
        with pytest.raises(ValueError):
            StreamProfile(burst_len=0)

    def test_mix_needs_components_with_positive_weight(self):
        with pytest.raises(ValueError):
            GeneratorMix(())
        with pytest.raises(ValueError):
            GeneratorMix((("x", 0.0, StreamProfile()),))

    def test_generator_rejects_bad_sizing(self):
        with pytest.raises(ValueError):
            ParametricGenerator("locality", cycles=0)
        with pytest.raises(ValueError):
            ParametricGenerator("locality", width=65)
        with pytest.raises(ValueError):
            ParametricGenerator("locality").stream(-1)
