"""Unit tests for low-weight codeword assignment."""

import pytest

from repro.coding import adjacent_pairs, codeword_table, hamming_weight, iter_codewords


class TestHelpers:
    def test_hamming_weight(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(0b1011) == 3

    def test_adjacent_pairs(self):
        assert adjacent_pairs(0b0101) == 0
        assert adjacent_pairs(0b0011) == 1
        assert adjacent_pairs(0b0111) == 2


class TestCodewordOrder:
    def test_first_word_is_zero(self):
        assert codeword_table(1, 8) == [0]

    def test_weight_nondecreasing(self):
        table = codeword_table(40, 8)
        weights = [hamming_weight(w) for w in table]
        assert weights == sorted(weights)

    def test_weight_one_words_cover_all_wires(self):
        table = codeword_table(9, 8)
        assert set(table[1:9]) == {1 << n for n in range(8)}

    def test_within_weight_fewer_adjacent_pairs_first(self):
        # The first weight-2 codes of a wide bus must be non-adjacent.
        table = codeword_table(34, 32)
        first_weight2 = table[33]
        assert hamming_weight(first_weight2) == 2
        assert adjacent_pairs(first_weight2) == 0

    def test_all_words_distinct(self):
        table = codeword_table(256, 8)
        assert len(set(table)) == 256

    def test_exhausts_full_space(self):
        assert sorted(codeword_table(16, 4)) == list(range(16))


class TestValidation:
    def test_rejects_count_beyond_space(self):
        with pytest.raises(ValueError):
            codeword_table(17, 4)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            codeword_table(-1, 8)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            list(iter_codewords(0))
