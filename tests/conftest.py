"""Shared fixtures: small deterministic traces and suite samples."""

import tempfile

import numpy as np
import pytest

from repro.traces import BusTrace, TraceCache, set_default_cache
from repro.workloads import (
    clear_caches,
    locality_trace,
    memory_trace,
    random_trace,
    register_trace,
)

#: Short cycle budget so CPU-substrate fixtures stay fast.
FAST_CYCLES = 6000


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache():
    """Point the persistent trace cache at a throwaway directory.

    Tests must neither read stale artifacts from a developer's real
    ``~/.cache/repro`` (which could mask bugs) nor pollute it; the
    session still exercises the full disk-cache code paths, just
    against a temporary directory.
    """
    with tempfile.TemporaryDirectory(prefix="repro-test-cache-") as tmp:
        set_default_cache(TraceCache(tmp))
        clear_caches()
        yield
    set_default_cache(None)
    clear_caches()


@pytest.fixture(scope="session")
def rand_trace():
    """A 32-bit uniform random trace."""
    return random_trace(2000, seed=7)


@pytest.fixture(scope="session")
def local_trace():
    """A trace with strong repeat/reuse/stride structure."""
    return locality_trace(3000, seed=11)


@pytest.fixture(scope="session")
def gcc_register():
    """Register-bus trace of the gcc kernel (short run)."""
    return register_trace("gcc", FAST_CYCLES)


@pytest.fixture(scope="session")
def swim_memory():
    """Memory-bus trace of the swim kernel (short run)."""
    return memory_trace("swim", FAST_CYCLES)


@pytest.fixture
def tiny_trace():
    """A handmade 8-value trace with known transitions."""
    return BusTrace.from_values(
        [0x0, 0x1, 0x1, 0x3, 0xF0, 0xF0, 0x0F, 0xFF], width=8, name="tiny"
    )
