"""Shared fixtures: small deterministic traces and suite samples."""

import numpy as np
import pytest

from repro.traces import BusTrace
from repro.workloads import locality_trace, random_trace, register_trace, memory_trace

#: Short cycle budget so CPU-substrate fixtures stay fast.
FAST_CYCLES = 6000


@pytest.fixture(scope="session")
def rand_trace():
    """A 32-bit uniform random trace."""
    return random_trace(2000, seed=7)


@pytest.fixture(scope="session")
def local_trace():
    """A trace with strong repeat/reuse/stride structure."""
    return locality_trace(3000, seed=11)


@pytest.fixture(scope="session")
def gcc_register():
    """Register-bus trace of the gcc kernel (short run)."""
    return register_trace("gcc", FAST_CYCLES)


@pytest.fixture(scope="session")
def swim_memory():
    """Memory-bus trace of the swim kernel (short run)."""
    return memory_trace("swim", FAST_CYCLES)


@pytest.fixture
def tiny_trace():
    """A handmade 8-value trace with known transitions."""
    return BusTrace.from_values(
        [0x0, 0x1, 0x1, 0x3, 0xF0, 0xF0, 0x0F, 0xFF], width=8, name="tiny"
    )
