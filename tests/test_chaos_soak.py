"""The chaos soak as a test: the acceptance gate for this stack.

The quick profile runs in well under a second and is tier-1: every
stream must decode bit-identically through cuts, corruption, stalls,
partial writes and reorders, with at least one resume and one shed
observed, and a clean drain.  The fuller profile is ``chaos``-marked
and runs in the non-blocking CI job alongside ``repro chaos-soak``.
"""

import asyncio

import pytest

from repro.serve.soak import SoakConfig, run_soak


def run(config):
    return asyncio.run(asyncio.wait_for(run_soak(config), timeout=120))


def assert_acceptance(report):
    assert report.ok, report.failures
    assert report.streams_verified == report.clients
    assert not report.mismatches
    assert report.resumes >= 1  # at least one checkpoint/resume exercised
    assert report.sheds >= 1  # the overload phase really shed
    assert report.reconnects >= 1  # cuts forced reconnection
    assert report.drain.get("drained") and not report.drain.get("outstanding")
    # The fault models actually fired: a soak that injected nothing
    # proves nothing.
    assert sum(report.chaos.values()) > 0


class TestQuickSoak:
    def test_quick_profile_passes(self):
        report = run(SoakConfig.quick(seed=0, clients=4))
        assert_acceptance(report)

    def test_quick_profile_is_seed_deterministic(self):
        # Same seed, same verdict and same injected-fault census: the
        # reproducibility claim the CLI's --seed flag makes.
        a = run(SoakConfig.quick(seed=3, clients=4))
        b = run(SoakConfig.quick(seed=3, clients=4))
        assert a.ok and b.ok
        assert a.chaos == b.chaos
        assert (a.resumes, a.sheds) == (b.resumes, b.sheds)


@pytest.mark.chaos
class TestFullSoak:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_full_profile_passes(self, seed):
        report = run(SoakConfig(seed=seed))
        assert_acceptance(report)
