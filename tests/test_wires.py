"""Unit tests for the wires subpackage (paper Section 3)."""

import pytest

from repro.wires import (
    TECH_007,
    TECH_010,
    TECH_013,
    TECHNOLOGIES,
    WireModel,
    design_repeaters,
    repeater_cap_per_mm,
    technology_by_name,
)


class TestTechnologyRegistry:
    def test_three_nodes(self):
        assert [t.name for t in TECHNOLOGIES] == ["0.13um", "0.10um", "0.07um"]

    def test_lookup_by_name_variants(self):
        assert technology_by_name("0.13um") is TECH_013
        assert technology_by_name("70nm") is TECH_007
        assert technology_by_name("0.10") is TECH_010

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            technology_by_name("90nm")

    def test_voltages_follow_itrs(self):
        # Table 2's voltage column.
        assert TECH_013.vdd == pytest.approx(1.2)
        assert TECH_010.vdd == pytest.approx(1.1)
        assert TECH_007.vdd == pytest.approx(0.9)

    def test_unbuffered_lambda_matches_table1(self):
        # Table 1: 14.0 / 16.6 / 14.5.
        assert TECH_013.unbuffered_lambda == pytest.approx(14.0, rel=0.02)
        assert TECH_010.unbuffered_lambda == pytest.approx(16.6, rel=0.02)
        assert TECH_007.unbuffered_lambda == pytest.approx(14.5, rel=0.02)


class TestRepeaters:
    def test_count_grows_with_length(self):
        short = design_repeaters(TECH_013, 5.0)
        long = design_repeaters(TECH_013, 30.0)
        assert long.count > short.count

    def test_segment_length_roughly_constant(self):
        a = design_repeaters(TECH_013, 15.0)
        b = design_repeaters(TECH_013, 30.0)
        assert a.segment_length_mm == pytest.approx(b.segment_length_mm, rel=0.3)

    def test_repeater_size_is_tens_of_minimum(self):
        # The paper: repeaters are 40-50x minimum inverters; our derated
        # design stays in that regime.
        design = design_repeaters(TECH_013, 20.0)
        assert 20 < design.size < 120

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            design_repeaters(TECH_013, 0.0)

    def test_long_wire_cap_converges_to_asymptote(self):
        design = design_repeaters(TECH_013, 50.0)
        assert design.cap_per_mm == pytest.approx(
            repeater_cap_per_mm(TECH_013), rel=0.15
        )


class TestWireModel:
    def test_buffered_lambda_matches_table1(self):
        # Table 1: 0.670 / 0.576 / 0.591 (with repeaters).
        targets = {TECH_013: 0.670, TECH_010: 0.576, TECH_007: 0.591}
        for tech, target in targets.items():
            lam = WireModel(tech, 30.0, buffered=True).effective_lambda
            assert lam == pytest.approx(target, rel=0.08), tech.name

    def test_energy_scales_linearly_with_length(self):
        e10 = WireModel(TECH_013, 10.0).single_transition_energy
        e30 = WireModel(TECH_013, 30.0).single_transition_energy
        assert e30 == pytest.approx(3 * e10, rel=0.05)

    def test_buffered_wire_costs_more_energy(self):
        # Figure 5: repeaters add energy.
        buffered = WireModel(TECH_013, 20.0, buffered=True)
        bare = WireModel(TECH_013, 20.0, buffered=False)
        assert buffered.single_transition_energy > bare.single_transition_energy

    def test_energy_magnitude_matches_figure5(self):
        # Repeater_013u is a few pJ at 30 mm.
        energy = WireModel(TECH_013, 30.0).single_transition_energy
        assert 3e-12 < energy < 8e-12

    def test_smaller_technology_uses_less_energy(self):
        e13 = WireModel(TECH_013, 20.0).single_transition_energy
        e07 = WireModel(TECH_007, 20.0).single_transition_energy
        assert e07 < e13

    def test_unbuffered_delay_quadratic(self):
        d10 = WireModel(TECH_013, 10.0, buffered=False).delay_seconds
        d20 = WireModel(TECH_013, 20.0, buffered=False).delay_seconds
        assert d20 == pytest.approx(4 * d10, rel=0.05)

    def test_buffered_delay_linear(self):
        d10 = WireModel(TECH_013, 10.0, buffered=True).delay_seconds
        d30 = WireModel(TECH_013, 30.0, buffered=True).delay_seconds
        assert d30 == pytest.approx(3 * d10, rel=0.25)

    def test_repeaters_win_for_long_wires(self):
        # Figure 6's motivation for repeaters.
        buffered = WireModel(TECH_013, 30.0, buffered=True).delay_seconds
        bare = WireModel(TECH_013, 30.0, buffered=False).delay_seconds
        assert buffered < bare

    def test_bus_energy_combines_tau_and_kappa(self):
        wire = WireModel(TECH_013, 10.0)
        energy = wire.bus_energy(tau=10, kappa=4)
        expected = (
            10 * wire.self_energy_per_transition + 4 * wire.coupling_energy_per_event
        )
        assert energy == pytest.approx(expected)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            WireModel(TECH_013, -1.0)

    def test_unbuffered_has_no_repeater_design(self):
        assert WireModel(TECH_013, 5.0, buffered=False).repeater_design is None
