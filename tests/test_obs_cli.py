"""End-to-end observability: CLI export, ``repro report``, kill switch.

The acceptance path the subsystem exists for:

* ``repro table3 --jobs 2 --obs-dir D --trace-out T`` leaves a
  Perfetto-loadable Chrome trace and JSONL telemetry behind, with
  fork-worker metrics (``machine.*``) merged into the parent's export;
* ``repro report D`` renders per-phase timing and the trace-cache hit
  rate from those files;
* ``REPRO_OBS=0`` disables collection without changing any command's
  stdout — telemetry is a strictly write-only side channel.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.cli import main
from repro.obs.report import load_run, render_report, summarize_spans
from repro.traces.cache import TraceCache, get_default_cache, set_default_cache
from repro.workloads import clear_caches


@pytest.fixture()
def clean_obs():
    previous = obs.set_enabled(True)
    obs.reset()
    yield
    obs.reset()
    obs.set_enabled(previous)


@pytest.fixture()
def fresh_cache(tmp_path):
    """A cold per-test trace cache, so the run must actually simulate.

    The session-wide cache is warm by the time this module runs; the
    worker-side ``machine.*`` counters the merge assertions look for
    only appear when the sweep simulates rather than loads.
    """
    previous = get_default_cache()
    set_default_cache(TraceCache(str(tmp_path / "fresh-cache")))
    clear_caches()
    yield
    set_default_cache(previous)
    clear_caches()


def run_cli(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr()


# -- export round trip ----------------------------------------------------


def test_table3_exports_chrome_trace_and_jsonl(tmp_path, capsys, clean_obs, fresh_cache):
    obs_dir = str(tmp_path / "run")
    trace_out = str(tmp_path / "trace.json")
    captured = run_cli(
        capsys,
        "table3",
        "--cycles",
        "3000",
        "--jobs",
        "2",
        "--obs-dir",
        obs_dir,
        "--trace-out",
        trace_out,
    )
    assert "Median mm" in captured.out  # the stdout table is unaffected

    with open(trace_out, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events, "no spans exported"
    names = {e["name"] for e in events}
    assert "cli.table3" in names  # the root span
    assert "table3.cell" in names  # per-cell spans (possibly from workers)
    for event in events:
        assert event["ph"] == "X"
        assert set(event) == {"name", "ph", "ts", "dur", "pid", "tid", "cat", "args"}

    spans, metrics = load_run(obs_dir)
    assert os.path.exists(os.path.join(obs_dir, "spans.jsonl"))
    assert os.path.exists(os.path.join(obs_dir, "metrics.jsonl"))
    counters = {
        (r["name"], tuple(sorted((r.get("labels") or {}).items()))): r["value"]
        for r in metrics
        if r["type"] == "counter"
    }
    # machine.runs is incremented inside fork workers: its presence in
    # the parent's export proves the delta merge worked.
    machine_runs = sum(v for (name, _), v in counters.items() if name == "machine.runs")
    assert machine_runs > 0
    assert any(name == "parallel.cells" for (name, _) in counters)
    root = [s for s in spans if s["depth"] == 0]
    assert len(root) == 1 and root[0]["name"] == "cli.table3"


def test_report_renders_phases_and_cache_hit_rate(tmp_path, capsys, clean_obs):
    obs_dir = str(tmp_path / "run")
    run_cli(capsys, "table3", "--cycles", "3000", "--obs-dir", obs_dir)
    captured = run_cli(capsys, "report", obs_dir)
    assert "per-phase timing" in captured.out
    assert "cli.table3" in captured.out
    assert "trace cache hit rate" in captured.out
    assert "counters" in captured.out


def test_report_single_file_and_missing_path(tmp_path, capsys, clean_obs):
    obs_dir = str(tmp_path / "run")
    run_cli(capsys, "stats", "gcc", "--cycles", "3000", "--obs-dir", obs_dir)
    # A single spans.jsonl is accepted directly.
    captured = run_cli(capsys, "report", os.path.join(obs_dir, "spans.jsonl"))
    assert "cli.stats" in captured.out
    # A directory without telemetry is a one-line user error.
    code = main(["report", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 1
    assert captured.err.startswith("repro: error:")


def test_global_flags_accepted_before_and_after_subcommand(tmp_path, capsys, clean_obs):
    before = str(tmp_path / "before.json")
    after = str(tmp_path / "after.json")
    run_cli(capsys, "--trace-out", before, "stats", "gcc", "--cycles", "3000")
    run_cli(capsys, "stats", "gcc", "--cycles", "3000", "--trace-out", after)
    for path in (before, after):
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["traceEvents"]


def test_quiet_silences_info_logging(tmp_path, capsys, clean_obs):
    obs_dir = str(tmp_path / "run")
    captured = run_cli(
        capsys, "stats", "gcc", "--cycles", "3000", "--obs-dir", obs_dir
    )
    assert "telemetry written" in captured.err  # default: INFO on stderr
    captured = run_cli(
        capsys, "-q", "stats", "gcc", "--cycles", "3000", "--obs-dir", obs_dir
    )
    assert "telemetry written" not in captured.err
    assert "unique fraction" in captured.out  # stdout contract untouched


def test_telemetry_exported_even_on_command_error(tmp_path, capsys, clean_obs):
    obs_dir = str(tmp_path / "run")
    code = main(["report", str(tmp_path / "missing"), "--obs-dir", obs_dir])
    captured = capsys.readouterr()
    assert code == 1
    assert captured.err.startswith("repro: error:")
    spans, _ = load_run(obs_dir)
    (root,) = [s for s in spans if s["depth"] == 0]
    assert root["attrs"]["error"] == "FileNotFoundError"


# -- report rendering units ----------------------------------------------


def test_summarize_spans_shares_reference_root():
    spans = [
        {"name": "cli.table3", "dur": 2.0, "depth": 0},
        {"name": "table3.cell", "dur": 0.5, "depth": 1},
        {"name": "table3.cell", "dur": 1.5, "depth": 1},
    ]
    rows = {r["name"]: r for r in summarize_spans(spans)}
    assert rows["cli.table3"]["share_pct"] == pytest.approx(100.0)
    assert rows["table3.cell"]["count"] == 2
    assert rows["table3.cell"]["total_s"] == pytest.approx(2.0)
    assert rows["table3.cell"]["share_pct"] == pytest.approx(100.0)


def test_render_report_without_records():
    assert render_report([], []) == "no telemetry records found"


# -- the kill switch ------------------------------------------------------


@pytest.mark.parametrize("jobs", ["1", "2"])
def test_repro_obs_0_leaves_stdout_byte_identical(tmp_path, jobs):
    """The paper tables must not depend on whether telemetry is collected."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "table3",
        "--cycles",
        "2000",
        "--jobs",
        jobs,
        "-q",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    outputs = {}
    for flag in ("1", "0"):
        env["REPRO_OBS"] = flag
        # Separate cache dirs: only the kill switch varies between runs.
        env["REPRO_TRACE_CACHE_DIR"] = str(tmp_path / f"cache-{flag}")
        proc = subprocess.run(
            argv,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
            text=True,
            check=True,
        )
        outputs[flag] = proc.stdout
    assert outputs["1"] == outputs["0"]
    assert "Median mm" in outputs["1"]
