"""Unit tests for the bus timing generators."""

import pytest

from repro.cpu import BusTimingGenerator


class TestRendering:
    def test_hold_semantics(self):
        gen = BusTimingGenerator("b", 8)
        gen.record(1, 0xAA)
        gen.record(4, 0x55)
        trace = gen.render(6)
        assert list(trace) == [0, 0xAA, 0xAA, 0xAA, 0x55, 0x55]

    def test_empty_generator_renders_zeros(self):
        trace = BusTimingGenerator("b", 8).render(3)
        assert list(trace) == [0, 0, 0]

    def test_out_of_order_events(self):
        gen = BusTimingGenerator("b", 8)
        gen.record(5, 2)
        gen.record(2, 1)
        assert list(gen.render(7)) == [0, 0, 1, 1, 1, 2, 2]

    def test_same_cycle_last_recorded_wins(self):
        gen = BusTimingGenerator("b", 8)
        gen.record(3, 1)
        gen.record(3, 9)
        assert gen.render(5)[3] == 9

    def test_events_beyond_horizon_dropped(self):
        gen = BusTimingGenerator("b", 8)
        gen.record(100, 7)
        assert list(gen.render(3)) == [0, 0, 0]

    def test_values_masked_to_width(self):
        gen = BusTimingGenerator("b", 4)
        gen.record(0, 0xFF)
        assert gen.render(1)[0] == 0xF

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            BusTimingGenerator("b", 8).record(-1, 0)

    def test_num_events(self):
        gen = BusTimingGenerator("b", 8)
        gen.record(0, 1)
        gen.record(1, 2)
        assert gen.num_events == 2

    def test_render_zero_cycles(self):
        gen = BusTimingGenerator("b", 8)
        gen.record(0, 1)
        assert len(gen.render(0)) == 0

    def test_trace_carries_name(self):
        assert BusTimingGenerator("memory", 32).render(2).name == "memory"
