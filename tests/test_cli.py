"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces import BusTrace, save_trace

FAST = ["--cycles", "4000"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


def run_cli_error(capsys, *argv):
    """Run a command expected to fail: returns the stderr line."""
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 1
    return captured.err


class TestCommands:
    def test_workloads_lists_suite(self, capsys):
        out = run_cli(capsys, "workloads")
        assert "gcc" in out and "swim" in out
        assert "fp" in out and "int" in out

    def test_run_prints_stats(self, capsys):
        out = run_cli(capsys, "run", "gcc", *FAST)
        assert "instructions" in out
        assert "IPC" in out

    def test_stats_prints_figure8_quantities(self, capsys):
        out = run_cli(capsys, "stats", "gcc", *FAST)
        assert "unique fraction, window 8" in out
        assert "toggle rate" in out

    def test_stats_accepts_bus_choice(self, capsys):
        out = run_cli(capsys, "stats", "swim", "--bus", "memory", *FAST)
        assert "swim/memory" in out

    def test_encode_reports_savings(self, capsys):
        out = run_cli(capsys, "encode", "m88ksim", "--coder", "window", *FAST)
        assert "energy removed" in out
        assert "32 -> 34" in out

    def test_encode_all_coder_names(self, capsys):
        for coder in ("last", "invert", "businvert", "stride", "codebook", "context"):
            out = run_cli(capsys, "encode", "gcc", "--coder", coder, *FAST)
            assert "energy removed" in out

    def test_encode_unknown_coder_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["encode", "gcc", "--coder", "magic", *FAST])

    def test_compare_lists_all_schemes(self, capsys):
        out = run_cli(capsys, "compare", "ijpeg", *FAST)
        for name in ("window-8", "context-28+8", "stride-8", "businvert x4"):
            assert name in out

    def test_crossover_reports_length_or_never(self, capsys):
        out = run_cli(capsys, "crossover", "ijpeg", "--technology", "0.07um", *FAST)
        assert "ratio at 15 mm" in out
        assert ("mm" in out) or ("never" in out)

    def test_table1(self, capsys):
        out = run_cli(capsys, "table1")
        assert "With repeaters" in out
        assert "0.07um" in out

    def test_table2(self, capsys):
        out = run_cli(capsys, "table2", "gcc", *FAST)
        assert "InvertCoder" in out
        assert "Op pJ" in out


class TestFaultsSweepCommand:
    def test_runs_end_to_end_on_three_workloads(self, capsys):
        """Acceptance: the documented invocation completes on >= 3
        workloads without crashing."""
        out = run_cli(
            capsys,
            "faults-sweep",
            "--coder", "window8",
            "--ber", "1e-6,1e-5,1e-4",
            "--cycles", "2000",
        )
        for name in ("gcc", "ijpeg", "swim"):
            assert name in out
        for policy in ("reset-both", "fallback-stateless", "resync-on-error"):
            assert policy in out
        assert "net savings %" in out
        assert "cycles to recover" in out

    def test_custom_policies_and_workloads(self, capsys):
        out = run_cli(
            capsys,
            "faults-sweep",
            "--workloads", "gcc",
            "--policies", "resync-on-error",
            "--ber", "1e-4",
            "--cycles", "1500",
        )
        assert "resync-on-error" in out
        assert "reset-both" not in out

    def test_bad_ber_is_one_line_error(self, capsys):
        err = run_cli_error(capsys, "faults-sweep", "--ber", "2.0")
        assert err.startswith("repro: error:")
        assert "[0, 1)" in err

    def test_unparsable_ber_list(self, capsys):
        err = run_cli_error(capsys, "faults-sweep", "--ber", "lots")
        assert "comma-separated" in err

    def test_unknown_workload_is_one_line_error(self, capsys):
        err = run_cli_error(capsys, "faults-sweep", "--workloads", "spice")
        assert err.startswith("repro: error:")
        assert "spice" in err

    def test_bad_coder_spec_is_one_line_error(self, capsys):
        err = run_cli_error(capsys, "faults-sweep", "--coder", "w!ndow")
        assert err.startswith("repro: error:")
        assert "coder spec" in err


class TestTraceOption:
    def _trace_file(self, tmp_path):
        rng = np.random.default_rng(0)
        trace = BusTrace.from_values(
            rng.integers(0, 1 << 20, size=500), width=32, name="canned"
        )
        path = str(tmp_path / "canned.npz")
        save_trace(trace, path)
        return path

    def test_stats_reads_saved_trace(self, capsys, tmp_path):
        path = self._trace_file(tmp_path)
        out = run_cli(capsys, "stats", "--trace", path)
        assert "canned" in out
        assert "toggle rate" in out

    def test_encode_reads_saved_trace(self, capsys, tmp_path):
        path = self._trace_file(tmp_path)
        out = run_cli(capsys, "encode", "--trace", path, "--coder", "window")
        assert "energy removed" in out

    def test_missing_trace_file_is_one_line_error(self, capsys, tmp_path):
        err = run_cli_error(
            capsys, "stats", "--trace", str(tmp_path / "nope.npz")
        )
        assert err.startswith("repro: error:")
        assert "nope.npz" in err

    def test_tampered_trace_file_is_one_line_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an archive")
        err = run_cli_error(capsys, "stats", "--trace", str(bad))
        assert err.startswith("repro: error:")
        assert "not a valid trace file" in err
        assert "Traceback" not in err

    def test_neither_workload_nor_trace_is_one_line_error(self, capsys):
        err = run_cli_error(capsys, "stats")
        assert "workload name or --trace" in err


class TestParser:
    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "spice"])

    def test_unknown_bus_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "gcc", "--bus", "pci"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestJobsValidation:
    """``--jobs`` is a worker count everywhere: 0/negative must be a
    one-line ``repro: error:`` with exit code 1 — no traceback, and no
    silent fallback to a default."""

    @pytest.mark.parametrize("jobs", ["0", "-2"])
    def test_table3_rejects_nonpositive_jobs(self, capsys, jobs):
        err = run_cli_error(capsys, "table3", "--jobs", jobs)
        assert err.startswith("repro: error:")
        assert "--jobs must be a positive worker count" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("jobs", ["0", "-1"])
    def test_faults_sweep_rejects_nonpositive_jobs(self, capsys, jobs):
        err = run_cli_error(
            capsys, "faults-sweep", "--coder", "window8", "--jobs", jobs
        )
        assert err.startswith("repro: error:")
        assert f"got {jobs}" in err

    def test_bench_rejects_nonpositive_jobs(self, capsys):
        err = run_cli_error(capsys, "bench", "--quick", "--jobs", "0")
        assert err.startswith("repro: error:")
        assert "--jobs must be a positive worker count" in err

    def test_serve_rejects_nonpositive_jobs(self, capsys):
        err = run_cli_error(capsys, "serve", "--port", "0", "--jobs", "0")
        assert err.startswith("repro: error:")

    def test_validation_happens_before_any_work(self, capsys):
        # The error must fire fast, before simulation: the message names
        # the flag, not some downstream pool failure.
        err = run_cli_error(capsys, "table3", "--jobs", "-7")
        assert "--jobs" in err and "-7" in err


class TestServeClientCommands:
    def test_client_connect_refused_is_one_line_error(self, capsys):
        # Port 1 is never listening; the OSError is funnelled into the
        # repro: error: contract instead of a traceback.
        err = run_cli_error(capsys, "client", "ping", "--port", "1")
        assert err.startswith("repro: error:")
        assert "cannot connect" in err
        assert "Traceback" not in err

    def test_client_requires_workload_for_encode(self, capsys):
        err = run_cli_error(capsys, "client", "encode", "--port", "1")
        assert err.startswith("repro: error:")

    def test_client_rejects_bad_chunk(self, capsys):
        err = run_cli_error(
            capsys, "client", "encode", "gcc", "--port", "1", "--chunk", "0"
        )
        assert err.startswith("repro: error:")

    def test_parser_knows_serve_and_client(self):
        args = build_parser().parse_args(["serve", "--port", "0", "--queue-limit", "9"])
        assert args.command == "serve" and args.queue_limit == 9
        args = build_parser().parse_args(["client", "ping"])
        assert args.command == "client" and args.op == "ping"

    def test_client_round_trip_against_live_server(self, capsys):
        """CLI client streaming against an in-process server: the
        printed table pins byte-equality with the one-shot encode."""
        import asyncio
        import threading

        from repro.serve import TraceServer

        started = threading.Event()
        box = {}

        def serve():
            async def run():
                async with TraceServer(port=0) as server:
                    box["port"] = server.port
                    started.set()
                    await box["stop"].wait()

            loop = asyncio.new_event_loop()
            box["loop"] = loop
            box["stop"] = asyncio.Event()
            loop.run_until_complete(run())
            loop.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(10)
        try:
            out = run_cli(
                capsys,
                "client",
                "encode",
                "gcc",
                "--port",
                str(box["port"]),
                "--coder",
                "window8",
                "--cycles",
                "3000",
                "--chunk",
                "512",
            )
            assert "matches one-shot encode" in out
            assert "yes" in out
        finally:
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(10)
