"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--cycles", "4000"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestCommands:
    def test_workloads_lists_suite(self, capsys):
        out = run_cli(capsys, "workloads")
        assert "gcc" in out and "swim" in out
        assert "fp" in out and "int" in out

    def test_run_prints_stats(self, capsys):
        out = run_cli(capsys, "run", "gcc", *FAST)
        assert "instructions" in out
        assert "IPC" in out

    def test_stats_prints_figure8_quantities(self, capsys):
        out = run_cli(capsys, "stats", "gcc", *FAST)
        assert "unique fraction, window 8" in out
        assert "toggle rate" in out

    def test_stats_accepts_bus_choice(self, capsys):
        out = run_cli(capsys, "stats", "swim", "--bus", "memory", *FAST)
        assert "swim/memory" in out

    def test_encode_reports_savings(self, capsys):
        out = run_cli(capsys, "encode", "m88ksim", "--coder", "window", *FAST)
        assert "energy removed" in out
        assert "32 -> 34" in out

    def test_encode_all_coder_names(self, capsys):
        for coder in ("last", "invert", "businvert", "stride", "codebook", "context"):
            out = run_cli(capsys, "encode", "gcc", "--coder", coder, *FAST)
            assert "energy removed" in out

    def test_encode_unknown_coder_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["encode", "gcc", "--coder", "magic", *FAST])

    def test_compare_lists_all_schemes(self, capsys):
        out = run_cli(capsys, "compare", "ijpeg", *FAST)
        for name in ("window-8", "context-28+8", "stride-8", "businvert x4"):
            assert name in out

    def test_crossover_reports_length_or_never(self, capsys):
        out = run_cli(capsys, "crossover", "ijpeg", "--technology", "0.07um", *FAST)
        assert "ratio at 15 mm" in out
        assert ("mm" in out) or ("never" in out)

    def test_table1(self, capsys):
        out = run_cli(capsys, "table1")
        assert "With repeaters" in out
        assert "0.07um" in out

    def test_table2(self, capsys):
        out = run_cli(capsys, "table2", "gcc", *FAST)
        assert "InvertCoder" in out
        assert "Op pJ" in out


class TestParser:
    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "spice"])

    def test_unknown_bus_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "gcc", "--bus", "pci"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
