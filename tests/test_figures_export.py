"""Tests for CSV figure export."""

import csv

import pytest

from repro.analysis import export_figures, write_csv


class TestWriteCsv:
    def test_header_and_rows(self, tmp_path):
        path = str(tmp_path / "t.csv")
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2"]
        assert len(rows) == 3


class TestExportFigures:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("figs"))
        return directory, export_figures(directory, cycles=3000)

    def test_all_datasets_written(self, exported):
        _, paths = exported
        assert set(paths) == {"fig5", "fig6", "fig18", "fig19", "fig35_37"}
        import os

        assert all(os.path.exists(p) for p in paths.values())

    def test_fig5_has_thirty_lengths(self, exported):
        _, paths = exported
        with open(paths["fig5"]) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 31  # header + 30 lengths
        assert rows[0][0] == "length_mm"
        assert len(rows[0]) == 1 + 6  # 3 technologies x {repeater, wire}

    def test_window_sweep_covers_suite(self, exported):
        _, paths = exported
        with open(paths["fig19"]) as handle:
            rows = list(csv.reader(handle))
        names = {row[0] for row in rows[1:]}
        assert {"gcc", "swim", "m88ksim"} <= names

    def test_crossover_curves_monotone(self, exported):
        _, paths = exported
        with open(paths["fig35_37"]) as handle:
            rows = list(csv.reader(handle))
        for row in rows[1:4]:
            ratios = [float(x) for x in row[2:]]
            assert all(a >= b for a, b in zip(ratios, ratios[1:]))
