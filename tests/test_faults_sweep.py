"""Tests for the faults sweep and the hardened experiment runner.

Covers the acceptance contract of the experiment layer:

* ``faults_sweep`` runs end-to-end across >= 3 suite workloads without
  crashing and produces one cell per (workload, policy, BER);
* a failing cell or workload becomes a structured ``SweepFailure``
  record under ``keep_going=True`` and propagates under strict mode;
* the cycle-budget watchdog in ``Machine.run`` turns runaway kernels
  into a typed ``CycleBudgetExceeded`` instead of a silent truncation.
"""

import math

import pytest

from repro.analysis import (
    DEFAULT_POLICIES,
    FaultSweepResult,
    SweepFailure,
    faults_sweep,
    format_faults_report,
    isolated_suite_traces,
    robust_savings_sweep,
)
from repro.coding import WindowTranscoder
from repro.cpu import CycleBudgetExceeded, Machine
from repro.cpu.pipeline import PipelineConfig
from repro.workloads import locality_trace


def window8():
    return WindowTranscoder(8, 32)


SYNTH = {
    "synth-a": locality_trace(1500, seed=1),
    "synth-b": locality_trace(1500, seed=2),
}


class TestFaultsSweep:
    def test_end_to_end_three_workloads(self):
        """The acceptance sweep: window8 x 3 BERs x 3 suite workloads."""
        result = faults_sweep(
            window8,
            bers=(1e-6, 1e-5, 1e-4),
            names=("gcc", "ijpeg", "swim"),
            cycles=2000,
        )
        assert result.ok
        assert len(result.cells) == 3 * len(DEFAULT_POLICIES) * 3
        assert {c.workload for c in result.cells} == {"gcc", "ijpeg", "swim"}
        for cell in result.cells:
            assert 0.0 <= cell.correct_fraction <= 1.0
            assert math.isfinite(cell.savings_pct)
            assert cell.recoveries <= cell.detections + 1

    def test_savings_degrade_with_ber(self):
        result = faults_sweep(
            window8,
            bers=(0.0, 1e-3),
            policies=("resync-on-error",),
            traces=SYNTH,
        )
        by = {(c.workload, c.ber): c for c in result.cells}
        for name in SYNTH:
            clean = by[(name, 0.0)]
            noisy = by[(name, 1e-3)]
            assert clean.correct_fraction == 1.0
            assert clean.detections == 0
            assert noisy.detections > 0
            # Recovery traffic costs energy: savings cannot improve.
            assert noisy.savings_pct <= clean.savings_pct

    def test_cells_are_reproducible(self):
        kwargs = dict(bers=(1e-4,), policies=("reset-both",), traces=SYNTH, seed=3)
        first = faults_sweep(window8, **kwargs)
        second = faults_sweep(window8, **kwargs)
        assert first.cells == second.cells

    def test_unknown_workload_isolated_as_failure(self):
        result = faults_sweep(
            window8, bers=(1e-5,), policies=("reset-both",),
            names=("gcc", "no-such-bench"), cycles=1500,
        )
        assert [c.workload for c in result.cells] == ["gcc"]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.workload == "no-such-bench"
        assert failure.stage == "trace"
        assert not result.ok

    def test_strict_mode_propagates(self):
        with pytest.raises(KeyError):
            faults_sweep(
                window8, bers=(1e-5,), policies=("reset-both",),
                names=("no-such-bench",), cycles=1500, keep_going=False,
            )

    def test_failing_cell_isolated_with_stage_label(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("boom in cell")
            return WindowTranscoder(8, 32)

        result = faults_sweep(
            flaky, bers=(1e-5, 1e-4), policies=("reset-both",), traces=dict(
                list(SYNTH.items())[:1]
            ),
        )
        assert len(result.cells) == 1
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.kind == "RuntimeError"
        assert failure.stage.startswith("faults[reset-both")
        assert "boom" in failure.message

    def test_report_renders_cells_and_failures(self):
        result = faults_sweep(
            window8, bers=(1e-4,), policies=("resync-on-error",), traces=SYNTH,
        )
        result.failures.append(
            SweepFailure("badger", "trace", "KeyError", "no such workload")
        )
        report = format_faults_report(result, title="demo")
        assert "demo" in report
        assert "synth-a" in report and "synth-b" in report
        assert "failed cells (isolated)" in report
        assert "badger" in report

    def test_empty_result_report(self):
        report = format_faults_report(FaultSweepResult())
        assert "net savings vs BER" in report


@pytest.mark.slow
class TestFaultsSweepFull:
    def test_default_cycle_budget_sweep(self):
        result = faults_sweep(
            window8, bers=(1e-6, 1e-5, 1e-4), names=("gcc", "ijpeg", "swim")
        )
        assert result.ok
        assert len(result.cells) == 27


class TestIsolatedSuiteTraces:
    def test_good_names_produce_traces_and_no_failures(self):
        traces, failures = isolated_suite_traces("register", ("gcc",), 1500)
        assert set(traces) == {"gcc"} and failures == []

    def test_bad_name_recorded_not_raised(self):
        traces, failures = isolated_suite_traces(
            "register", ("gcc", "bogus"), 1500
        )
        assert set(traces) == {"gcc"}
        assert [f.workload for f in failures] == ["bogus"]
        assert failures[0].stage == "trace"
        assert failures[0].kind
        assert failures[0].detail  # traceback excerpt for post-mortems

    def test_strict_raises(self):
        with pytest.raises(KeyError):
            isolated_suite_traces("register", ("bogus",), 1500, keep_going=False)


class TestRobustSavingsSweep:
    def test_matches_intent_on_clean_suite(self):
        outcome = robust_savings_sweep(
            "register", lambda size: WindowTranscoder(size, 32), (4, 8),
            names=("gcc",), cycles=1500,
        )
        assert outcome.ok
        assert set(outcome.curves) == {"gcc"}
        assert len(outcome.curves["gcc"]) == 2

    def test_coder_failure_isolated_per_workload(self):
        def factory(size):
            raise RuntimeError("coder exploded")

        outcome = robust_savings_sweep(
            "register", factory, (8,), names=("gcc",), cycles=1500,
        )
        assert outcome.curves == {}
        assert [f.stage for f in outcome.failures] == ["encode"]
        assert outcome.failures[0].kind == "RuntimeError"


class TestCycleWatchdog:
    INFINITE = "loop: addi r1, r1, 1\n j loop\n"

    def test_runaway_kernel_trips_watchdog(self):
        machine = Machine(source=self.INFINITE, name="runaway")
        with pytest.raises(CycleBudgetExceeded) as excinfo:
            machine.run(watchdog_cycles=500)
        err = excinfo.value
        assert err.budget == 500
        assert err.name == "runaway"
        assert err.stats.instructions > 0
        assert "500-cycle watchdog" in str(err)
        assert "runaway" in str(err)

    def test_halting_kernel_passes_under_budget(self):
        machine = Machine(source="addi r1, r0, 5\n halt\n")
        result = machine.run(watchdog_cycles=500)
        assert result.stats.halted

    def test_watchdog_does_not_fire_on_intentional_max_cycles(self):
        # Workloads legitimately run to max_cycles; a watchdog above
        # that ceiling must not misfire.
        machine = Machine(
            source=self.INFINITE, config=PipelineConfig(max_cycles=200)
        )
        result = machine.run(watchdog_cycles=1000)
        assert not result.stats.halted
        assert result.stats.cycles <= 200

    def test_watchdog_validation(self):
        machine = Machine(source="halt\n")
        with pytest.raises(ValueError):
            machine.run(watchdog_cycles=0)

    def test_no_watchdog_is_legacy_behaviour(self):
        machine = Machine(
            source=self.INFINITE, config=PipelineConfig(max_cycles=300)
        )
        result = machine.run()  # silently truncates, as before
        assert result.stats.cycles <= 300
