"""The chaos proxy against real client/server pairs (localhost sockets).

Each test runs a real :class:`TraceServer` behind a :class:`ChaosProxy`
with *scripted* fault models, so the injected event and the expected
client-visible failure are exact — no probabilistic schedules here
(those belong to the soak).  Also home of the receive-loop regression:
an undecodable frame must fail pending requests immediately, never
leave them hanging.
"""

import asyncio

import pytest

from repro.faults.transport import (
    ConnectionDrop,
    FrameDecision,
    PartialWrite,
    ReorderFrames,
    ScriptedTransport,
)
from repro.serve.chaos import HOLD_RELEASE_S, ChaosProxy
from repro.serve.client import FrameCorruptionError, TraceClient
from repro.serve.server import TraceServer


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=20))


class TestCleanProxy:
    def test_transparent_when_faultless(self):
        async def scenario():
            async with TraceServer(port=0) as server:
                async with ChaosProxy(server.host, server.port) as proxy:
                    client = await TraceClient.connect(proxy.host, proxy.port)
                    try:
                        hello = await client.hello()
                        stream = await client.open_stream("window8", 16)
                        states = await stream.feed([1, 2, 3, 4])
                        await stream.close()
                    finally:
                        await client.close()
                    return hello, states, proxy.stats

        hello, states, stats = run(scenario())
        assert hello["ok"] and len(states) == 4
        assert stats.connections == 1
        assert stats.forwarded == stats.frames > 0
        assert stats.cuts == stats.corrupted == 0


class TestCorruptionDetection:
    def test_corrupted_response_fails_the_pending_request(self):
        # Frame 1 of the s2c direction (the open response) is corrupted:
        # the client must fail that exact pending future with
        # FrameCorruptionError — not hang, not return junk.
        async def scenario():
            async with TraceServer(port=0) as server:
                async with ChaosProxy(
                    server.host,
                    server.port,
                    server_faults=lambda i: ScriptedTransport(
                        {1: FrameDecision(corrupt_at=(2, 5))}
                    ),
                ) as proxy:
                    client = await TraceClient.connect(proxy.host, proxy.port)
                    try:
                        await client.hello()  # frame 0: clean
                        with pytest.raises(FrameCorruptionError):
                            await client.request("hello")  # frame 1: poisoned
                        # The connection is declared broken for good:
                        # later calls fail fast instead of hanging.
                        with pytest.raises(ConnectionError):
                            await client.request("hello")
                    finally:
                        await client.close()
                    return proxy.stats

        stats = run(scenario())
        assert stats.corrupted == 1

    def test_truncated_frame_fails_pending_requests(self):
        # Regression for the old receive loop, which `continue`d on
        # undecodable frames: a response truncated mid-write (peer died)
        # must surface as a connection error on the pending future.
        async def scenario():
            async with TraceServer(port=0) as server:
                async with ChaosProxy(
                    server.host,
                    server.port,
                    server_faults=lambda i: PartialWrite(
                        rate=1.0, seed=1, truncate=True
                    ),
                ) as proxy:
                    client = await TraceClient.connect(proxy.host, proxy.port)
                    try:
                        with pytest.raises((ConnectionError, asyncio.IncompleteReadError)):
                            await client.request("hello")
                    finally:
                        await client.close()
                    return proxy.stats

        stats = run(scenario())
        assert stats.truncated == 1


class TestConnectionCuts:
    def test_scheduled_cut_fails_in_flight_requests(self):
        async def scenario():
            async with TraceServer(port=0) as server:
                async with ChaosProxy(
                    server.host,
                    server.port,
                    client_faults=lambda i: ConnectionDrop(at_frames=(1,)),
                ) as proxy:
                    client = await TraceClient.connect(proxy.host, proxy.port)
                    try:
                        await client.request("hello")  # c2s frame 0 passes
                        with pytest.raises(ConnectionError):
                            await client.request("hello")  # c2s frame 1: cut
                    finally:
                        await client.close()
                    return proxy.stats

        stats = run(scenario())
        assert stats.cuts == 1

    def test_sessions_die_with_the_proxied_connection(self):
        # The server must reap sessions opened through a connection the
        # chaos layer cut — no FSM state may leak server-side.
        async def scenario():
            async with TraceServer(port=0) as server:
                async with ChaosProxy(
                    server.host,
                    server.port,
                    client_faults=lambda i: ConnectionDrop(at_frames=(3,)),
                ) as proxy:
                    client = await TraceClient.connect(proxy.host, proxy.port)
                    try:
                        stream = await client.open_stream("last", 16)  # frame 0
                        await stream.feed([1])  # frame 1
                        await stream.feed([2])  # frame 2
                        with pytest.raises(ConnectionError):
                            for _ in range(3):  # frame 3 is cut
                                await stream.feed([3])
                    finally:
                        await client.close()
                    await asyncio.sleep(0.05)  # let the server observe EOF
                    return server.engine.session_count()

        # Engine-level check if available; otherwise the lack of an
        # exception is the assertion (connection fully torn down).
        try:
            count = run(scenario())
        except AttributeError:
            return
        assert count in (0, None)


class TestReorderRelease:
    def test_held_final_response_is_released_by_the_watchdog(self):
        # Hold *every* s2c frame: each response only moves when its
        # successor arrives or the release watchdog fires.  A lone
        # request must still complete within ~HOLD_RELEASE_S — reorder
        # delays frames, it never captures them.
        async def scenario():
            async with TraceServer(port=0) as server:
                async with ChaosProxy(
                    server.host,
                    server.port,
                    server_faults=lambda i: ReorderFrames(rate=1.0, seed=2),
                ) as proxy:
                    client = await TraceClient.connect(proxy.host, proxy.port)
                    try:
                        t0 = asyncio.get_event_loop().time()
                        response = await asyncio.wait_for(
                            client.request("hello"), timeout=10 * HOLD_RELEASE_S + 2
                        )
                        elapsed = asyncio.get_event_loop().time() - t0
                    finally:
                        await client.close()
                    return response, elapsed, proxy.stats

        response, elapsed, stats = run(scenario())
        assert response["ok"]
        assert elapsed >= HOLD_RELEASE_S * 0.5  # it really was held
        assert stats.held >= 1
