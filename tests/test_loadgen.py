"""Tests for the cluster load generator.

Small closed- and open-loop runs against an in-process
:class:`TraceServer` — the loadgen speaks the same protocol to a
single server and to a cluster router, so the cheap target suffices
for correctness; the CI cluster-soak covers the real topology.
"""

import asyncio

import pytest

from repro.serve import TraceServer
from repro.serve.loadgen import LoadgenConfig, LoadgenReport, run_loadgen


def run(coro):
    return asyncio.run(coro)


async def run_against_server(**overrides):
    async with TraceServer(host="127.0.0.1", port=0, queue_limit=64) as server:
        config = LoadgenConfig(port=server.port, **overrides)
        return await run_loadgen(config)


class TestConfigValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            LoadgenConfig(mode="half-open")

    def test_rejects_non_positive_sizing(self):
        with pytest.raises(ValueError):
            LoadgenConfig(streams=0)
        with pytest.raises(ValueError):
            LoadgenConfig(chunks=0)
        with pytest.raises(ValueError):
            LoadgenConfig(chunk=0)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            LoadgenConfig(rate=0.0)


class TestReport:
    def test_quantile_is_exact_on_samples(self):
        report = LoadgenReport(latencies_s=[0.4, 0.1, 0.3, 0.2])
        assert report.quantile(0.0) == pytest.approx(0.1)
        assert report.quantile(1.0) == pytest.approx(0.4)
        assert report.quantile(0.5) == pytest.approx(0.3)  # round-half-even index

    def test_quantile_of_empty_report_is_zero(self):
        assert LoadgenReport().quantile(0.99) == 0.0

    def test_throughput_guards_zero_elapsed(self):
        assert LoadgenReport(cycles=100, elapsed_s=0.0).throughput_cps == 0.0

    def test_as_dict_is_json_shaped(self):
        report = LoadgenReport(
            mode="open", streams=2, chunks_done=4, cycles=80,
            elapsed_s=0.5, latencies_s=[0.01, 0.02],
        )
        out = report.as_dict()
        assert out["throughput_cps"] == pytest.approx(160.0)
        assert out["latency_p50_ms"] > 0
        assert out["errors"] == []


class TestClosedLoop:
    def test_every_chunk_lands(self):
        report = run(
            run_against_server(mode="closed", streams=3, chunks=4, chunk=16)
        )
        assert report.chunks_done == 3 * 4
        assert report.chunks_failed == 0
        assert report.cycles == 3 * 4 * 16
        assert len(report.latencies_s) == report.chunks_done
        assert report.errors == []

    def test_unreachable_server_reports_failures_not_raises(self):
        async def scenario():
            # Grab a port and close it: nothing listens there.
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            config = LoadgenConfig(
                port=port, streams=2, chunks=2, chunk=8,
                attempt_timeout_s=0.2, deadline_s=0.5,
            )
            return await run_loadgen(config)

        report = run(scenario())
        assert report.chunks_done == 0
        assert report.chunks_failed == 2 * 2
        assert report.errors  # capped sample of what went wrong


class TestOpenLoop:
    def test_paced_arrivals_still_deliver_everything(self):
        report = run(
            run_against_server(
                mode="open", streams=2, chunks=3, chunk=16, rate=500.0
            )
        )
        assert report.mode == "open"
        assert report.chunks_done == 2 * 3
        assert report.chunks_failed == 0
        assert report.cycles == 2 * 3 * 16


class TestCorpusTraffic:
    """--corpus routes generator/corpus populations through the loadgen."""

    SPEC = "gen:mixed,seed=7,population=10000,cycles=96,width=24"

    def test_generator_population_drives_the_run(self):
        report = run(
            run_against_server(
                mode="closed", streams=3, chunks=999, chunk=32, width=16,
                corpus=self.SPEC,
            )
        )
        # Source geometry wins: 96 cycles / 32-chunks = 3 chunks per
        # stream, regardless of config.chunks; width 24 from the spec.
        assert report.offered == 3 * 3
        assert report.chunks_done == report.offered
        assert report.chunks_failed == 0
        assert report.cycles == 3 * 96

    def test_corpus_runs_are_deterministic(self):
        first = run(
            run_against_server(
                mode="closed", streams=2, chunk=48, corpus=self.SPEC
            )
        )
        second = run(
            run_against_server(
                mode="closed", streams=2, chunk=48, corpus=self.SPEC
            )
        )
        assert first.offered == second.offered
        assert first.cycles == second.cycles
        assert first.chunks_failed == second.chunks_failed == 0

    def test_corpus_directory_source(self, tmp_path):
        import numpy as np

        from repro.corpus import CorpusWriter
        from repro.traces import BusTrace

        with CorpusWriter(str(tmp_path)) as writer:
            for i in range(2):
                writer.add_trace(
                    f"s{i}",
                    BusTrace(
                        np.arange(i, i + 80, dtype=np.uint64), 16, f"s{i}"
                    ),
                )
        report = run(
            run_against_server(
                mode="open", streams=4, chunk=20, rate=800.0,
                corpus=f"corpus:{tmp_path}",
            )
        )
        # 4 sessions wrap the 2-stream corpus; 80/20 = 4 chunks each.
        assert report.offered == 4 * 4
        assert report.chunks_done == report.offered
        assert report.chunks_failed == 0

    def test_bad_corpus_spec_raises_before_any_connection(self):
        with pytest.raises(ValueError):
            run(run_loadgen(LoadgenConfig(port=1, corpus="gen:nosuch")))
