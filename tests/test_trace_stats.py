"""Unit tests for trace statistics (paper Figures 7-8)."""

import numpy as np
import pytest

from repro.traces import (
    BusTrace,
    coverage_at,
    toggle_rate,
    unique_value_cdf,
    value_frequencies,
    window_unique_curve,
    window_unique_fraction,
)


class TestValueFrequencies:
    def test_sorted_descending(self):
        trace = BusTrace.from_values([1, 1, 1, 2, 2, 3], width=8)
        assert list(value_frequencies(trace)) == [3, 2, 1]

    def test_empty_trace(self):
        assert value_frequencies(BusTrace.from_values([], width=8)).size == 0


class TestUniqueValueCdf:
    def test_single_value_covers_everything(self):
        trace = BusTrace.from_values([7] * 10, width=8)
        cdf = unique_value_cdf(trace)
        assert cdf.shape == (1,)
        assert cdf[0] == pytest.approx(1.0)

    def test_monotone_and_ends_at_one(self):
        trace = BusTrace.from_values([1, 2, 2, 3, 3, 3, 4], width=8)
        cdf = unique_value_cdf(trace)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_most_frequent_first(self):
        trace = BusTrace.from_values([9, 9, 9, 1], width=8)
        assert unique_value_cdf(trace)[0] == pytest.approx(0.75)

    def test_coverage_at_clamps_k(self):
        trace = BusTrace.from_values([1, 2], width=8)
        assert coverage_at(trace, 100) == pytest.approx(1.0)

    def test_random_needs_many_values(self, rand_trace):
        # The Figure 7 motivation: random-ish traffic has no small
        # dominating value set.
        assert coverage_at(rand_trace, 10) < 0.05


class TestWindowUniqueFraction:
    def test_all_same_value(self):
        trace = BusTrace.from_values([3] * 100, width=8)
        assert window_unique_fraction(trace, 10) == pytest.approx(0.1)

    def test_all_distinct(self):
        trace = BusTrace.from_values(range(100), width=8)
        assert window_unique_fraction(trace, 10) == pytest.approx(1.0)

    def test_window_larger_than_trace(self):
        trace = BusTrace.from_values([1, 1, 2], width=8)
        assert window_unique_fraction(trace, 10) == pytest.approx(2 / 3)

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            window_unique_fraction(BusTrace.from_values([1], width=8), 0)

    def test_curve_matches_pointwise(self, local_trace):
        sizes = [2, 8, 32]
        curve = window_unique_curve(local_trace, sizes)
        assert curve[1] == pytest.approx(window_unique_fraction(local_trace, 8))

    def test_locality_trace_less_unique_than_random(self, local_trace, rand_trace):
        # The Figure 8 motivation for the window transcoder.
        assert window_unique_fraction(local_trace, 16) < window_unique_fraction(
            rand_trace, 16
        )


class TestToggleRate:
    def test_constant_bus_never_toggles(self):
        trace = BusTrace.from_values([5, 5, 5], width=8, initial=5)
        assert toggle_rate(trace) == 0.0

    def test_alternating_all_bits(self):
        # Initial state 0, so every cycle flips all 8 wires.
        trace = BusTrace.from_values([0xFF, 0x00, 0xFF, 0x00], width=8)
        assert toggle_rate(trace) == pytest.approx(1.0)

    def test_empty_trace(self):
        assert toggle_rate(BusTrace.from_values([], width=8)) == 0.0
