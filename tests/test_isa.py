"""Unit tests for the ISA definitions."""

import pytest

from repro.cpu import Instruction, sign_extend, to_signed


class TestHelpers:
    def test_sign_extend_positive(self):
        assert sign_extend(0x7F, 8) == 127

    def test_sign_extend_negative(self):
        assert sign_extend(0x80, 8) == -128
        assert sign_extend(0xFF, 8) == -1

    def test_to_signed(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x7FFFFFFF) == 2**31 - 1


class TestInstruction:
    def test_rejects_unknown_opcode(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate")

    def test_rejects_bad_register(self):
        with pytest.raises(ValueError):
            Instruction("add", rd=32)

    def test_alu_reads_both_sources(self):
        instr = Instruction("add", rd=1, rs1=2, rs2=3)
        assert instr.reads == (2, 3)
        assert instr.writes == 1

    def test_store_reads_base_and_data(self):
        instr = Instruction("sw", rs1=4, rs2=5, imm=8)
        assert instr.reads == (4, 5)
        assert instr.writes is None

    def test_load_reads_base_writes_dest(self):
        instr = Instruction("lw", rd=6, rs1=7, imm=0)
        assert instr.reads == (7,)
        assert instr.writes == 6

    def test_lui_reads_nothing(self):
        assert Instruction("lui", rd=1, imm=5).reads == ()

    def test_branch_writes_nothing(self):
        assert Instruction("beq", rs1=1, rs2=2, imm=0).writes is None

    def test_jal_writes_link(self):
        assert Instruction("jal", rd=31, imm=0).writes == 31

    def test_halt_neither_reads_nor_writes(self):
        instr = Instruction("halt")
        assert instr.reads == ()
        assert instr.writes is None

    def test_str_forms(self):
        assert str(Instruction("add", rd=1, rs1=2, rs2=3)) == "add r1, r2, r3"
        assert "r5" in str(Instruction("lw", rd=5, rs1=6, imm=4))
        assert str(Instruction("halt")) == "halt"
