"""End-to-end acceptance test for the trace-serving subsystem.

One in-process asyncio server, dozens of concurrent client sessions
over real TCP connections, mixing stateful multi-chunk streaming
encodes with process-pool sweep requests; every streamed result must be
byte-identical to the one-shot library call, backpressure must be
observable when the bounded queue overflows, and the server's exported
telemetry must render through ``repro report``.
"""

import asyncio

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.coding import parse_coder_spec
from repro.serve import ProtocolError, TraceClient, TraceServer, protocol
from repro.workloads import locality_trace

#: The acceptance bar: at least 32 concurrent client sessions.
SESSIONS = 36

#: Coder specs cycled across the streaming sessions (stateful families
#: included, so FSM state genuinely crosses the chunk boundaries).
SPECS = ["window8", "fcm", "stride4", "transition", "invert", "last"]

CHUNK = 150  # 600-cycle traces → 4 chunks per session
CYCLES = 600


async def stream_session(host, port, index):
    """One streaming client: open, feed chunks, compare with one-shot.

    Uses the documented ``busy`` retry discipline (`call_with_retry`):
    a ``busy`` rejection means the request was never admitted, so
    resending a session chunk cannot double-advance the FSM.
    """
    spec = SPECS[index % len(SPECS)]
    trace = locality_trace(CYCLES, seed=100 + index)
    client = await TraceClient.connect(host, port)
    try:
        opened = await client.call_with_retry(
            "open", retries=9, backoff_s=0.02, coder=spec, width=32
        )
        session = opened["session"]
        states = []
        cycles = 0
        values = [int(v) for v in trace.values]
        for start in range(0, len(values), CHUNK):
            response = await client.call_with_retry(
                "encode",
                retries=9,
                backoff_s=0.02,
                session=session,
                values=values[start : start + CHUNK],
            )
            states.extend(response["states"])
            cycles = response["cycles"]
        assert cycles == len(values)
        await client.call_with_retry("close", retries=9, backoff_s=0.02, session=session)
    finally:
        await client.close()
    oneshot = parse_coder_spec(spec, 32).encode_trace(trace)
    assert np.array_equal(np.array(states, dtype=np.uint64), oneshot.values), (
        f"session {index} ({spec}): streamed states diverged from one-shot"
    )
    return "stream"


async def sweep_session(host, port, index):
    """One sweep client: a CPU-bound cell served via the process pool."""
    client = await TraceClient.connect(host, port)
    try:
        result = await client.call_with_retry(
            "sweep",
            retries=9,
            backoff_s=0.02,
            workload=["gcc", "swim"][index % 2],
            coder="window8",
            bus="register",
            cycles=1500,
            lam=1.0,
        )
    finally:
        await client.close()
    assert result["ok"]
    assert result["transitions_after"] <= result["transitions_before"]
    return "sweep"


async def provoke_backpressure(host, port, engine):
    """Flood a paused engine past its queue bound; count ``busy``."""
    engine.pause()
    client = await TraceClient.connect(host, port)
    try:
        # One request may still be swallowed by the worker blocked in
        # queue.get(); everything beyond queue_limit past that must be
        # rejected immediately with the busy (HTTP-429 analogue) code.
        flood = [client.request("hello", ) for _ in range(engine.queue_limit * 3 + 4)]
        tasks = [asyncio.ensure_future(f) for f in flood]
        await asyncio.sleep(0.2)
        rejected = sum(
            1
            for t in tasks
            if t.done()
            and not t.result().get("ok")
            and t.result()["error"]["code"] == protocol.ERR_BUSY
        )
        engine.resume()
        responses = await asyncio.gather(*tasks)
        admitted_ok = sum(1 for r in responses if r.get("ok"))
        return rejected, admitted_ok
    finally:
        await client.close()


async def run_acceptance():
    async with TraceServer(
        port=0, queue_limit=16, batch_limit=8, request_timeout_s=60.0
    ) as server:
        host, port = server.host, server.port

        # Phase 1: >= 32 concurrent sessions, streaming + sweeps mixed.
        tasks = []
        for i in range(SESSIONS):
            if i % 9 == 8:  # every ninth session is a CPU-bound sweep
                tasks.append(sweep_session(host, port, i))
            else:
                tasks.append(stream_session(host, port, i))
        kinds = await asyncio.gather(*tasks)
        assert len(kinds) >= 32
        assert kinds.count("sweep") >= 3 and kinds.count("stream") >= 29

        # Phase 2: overload the bounded queue, observe busy rejections.
        rejected, admitted_ok = await provoke_backpressure(host, port, server.engine)
        assert rejected >= 1, "queue overflow produced no busy rejections"
        assert admitted_ok >= 1  # admitted requests still completed

        # Phase 3: a client-level protocol error surfaces as ProtocolError.
        client = await TraceClient.connect(host, port)
        try:
            with pytest.raises(ProtocolError) as excinfo:
                await client.call("open", coder="no-such-coder")
            assert excinfo.value.code == protocol.ERR_BAD_REQUEST
        finally:
            await client.close()

    return rejected


class TestServeEndToEnd:
    def test_concurrent_sessions_backpressure_and_report(self, tmp_path, capsys):
        obs.reset()
        rejected = asyncio.run(run_acceptance())
        assert rejected >= 1

        # The server's telemetry renders through `repro report`:
        # request counters and the latency histogram must be visible.
        obs_dir = tmp_path / "serve-obs"
        obs.export_run(obs_dir=str(obs_dir))
        assert main(["report", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "serve.requests" in out
        assert "serve.request_s" in out
        assert "serve.rejected" in out
        assert "serve.batch_size" in out
