"""Unit tests for the length-prefixed binary bulk frame type.

Pure data-plane tests of :mod:`repro.serve.protocol`'s binary path:
frame geometry, CRC-checked round-trips, every corruption class mapped
to a deterministic ``bad-request``, the first-byte dispatch between the
two frame types, and the :func:`read_frame` stream reader fed mixed
binary/JSON traffic (including binary payloads containing ``0x0A``,
which a newline-framed reader would mis-split).  Socket-level behaviour
lives in ``test_serve_binary_e2e.py``.
"""

import asyncio
import struct
import zlib

import numpy as np
import pytest

from repro.faults import transport as faults_transport
from repro.serve import protocol
from repro.serve.protocol import ProtocolError


def make_frame(op="encode", request_id=1, words=(1, 2, 3), field="values", **extra):
    message = protocol.request(op, request_id, session=7, **extra)
    return protocol.encode_binary_frame(
        message, field, np.asarray(words, dtype=np.uint64)
    )


class TestGeometry:
    def test_prefix_layout(self):
        frame = make_frame(words=[10, 20])
        magic, header_len, count, crc = struct.unpack_from("<BIII", frame)
        assert magic == protocol.BINARY_MAGIC
        assert count == 2
        header = frame[protocol.BINARY_PREFIX_BYTES :][:header_len]
        payload = frame[protocol.BINARY_PREFIX_BYTES + header_len :]
        assert len(payload) == 2 * 8
        assert crc == zlib.crc32(payload, zlib.crc32(header))
        assert len(frame) == protocol.BINARY_PREFIX_BYTES + header_len + 16

    def test_payload_is_little_endian_words(self):
        frame = make_frame(words=[0x0102030405060708])
        assert frame.endswith(bytes([8, 7, 6, 5, 4, 3, 2, 1]))

    def test_header_carries_bulk_marker_not_the_payload(self):
        frame = make_frame(words=[1, 2, 3])
        _, header_len, _, _ = struct.unpack_from("<BIII", frame)
        header = frame[protocol.BINARY_PREFIX_BYTES :][:header_len]
        assert b'"_bulk"' in header
        assert b'"values"' in header  # the marker's value
        assert b"[1" not in header  # never the words themselves

    def test_json_frames_cannot_collide_with_the_magic(self):
        # Dispatch is on the first byte: JSON frames start with '{'
        # (or whitespace), never 0xB5.
        json_frame = protocol.encode_frame(protocol.request("hello", 1))
        assert json_frame[0] != protocol.BINARY_MAGIC
        assert not protocol.is_binary_frame(json_frame)
        assert protocol.is_binary_frame(make_frame())


class TestRoundTrip:
    def test_words_come_back_zero_copy_and_bit_identical(self):
        words = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        message = protocol.decode_binary_frame(make_frame(words=words))
        out = message["values"]
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.dtype("<u8")
        assert np.array_equal(out, words)
        assert message["op"] == "encode"
        assert message["session"] == 7
        assert message[protocol.BULK_KEY] == "values"

    def test_empty_payload_round_trips(self):
        message = protocol.decode_binary_frame(make_frame(words=[]))
        assert len(message["values"]) == 0

    def test_decode_any_frame_dispatches_both_types(self):
        binary = make_frame(words=[5])
        json_frame = protocol.encode_frame(protocol.request("hello", 2))
        assert protocol.decode_any_frame(binary)["op"] == "encode"
        assert protocol.decode_any_frame(json_frame)["op"] == "hello"

    def test_response_bulk_field_maps_request_ops(self):
        assert protocol.response_bulk_field({"op": "encode"}) == "states"
        assert protocol.response_bulk_field({"op": "decode"}) == "values"
        assert protocol.response_bulk_field({"op": "encode_trace"}) == "states"
        assert protocol.response_bulk_field({"op": "hello"}) is None

    def test_encoder_rejects_non_1d_payloads(self):
        message = protocol.request("encode", 1, session=1)
        with pytest.raises(ProtocolError):
            protocol.encode_binary_frame(
                message, "values", np.zeros((2, 2), dtype=np.uint64)
            )


class TestCorruptionIsDeterministicallyDetected:
    def test_any_flipped_payload_byte_fails_the_crc(self):
        frame = bytearray(make_frame(words=[1, 2, 3, 4]))
        # Pick a payload byte that is zero (high byte of a small word)
        # so the 0xFF overwrite is guaranteed to change it.
        frame[-1] ^= 0xFF
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_binary_frame(bytes(frame))
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_flipped_header_byte_fails_the_crc(self):
        frame = bytearray(make_frame())
        frame[protocol.BINARY_PREFIX_BYTES] ^= 0xFF
        with pytest.raises(ProtocolError):
            protocol.decode_binary_frame(bytes(frame))

    def test_bad_magic_is_rejected(self):
        frame = bytearray(make_frame())
        frame[0] = 0x00
        with pytest.raises(ProtocolError):
            protocol.decode_binary_frame(bytes(frame))

    def test_truncated_frame_is_rejected(self):
        frame = make_frame(words=[1, 2, 3])
        with pytest.raises(ProtocolError):
            protocol.decode_binary_frame(frame[:-1])

    def test_declared_oversize_is_rejected(self):
        message = protocol.request("encode", 1, session=1)
        too_many = protocol.MAX_FRAME_BYTES // 8 + 1
        with pytest.raises(ProtocolError):
            protocol.encode_binary_frame(
                message, "values", np.zeros(too_many, dtype=np.uint64)
            )

    def test_protocol_error_is_a_value_error(self):
        # Framing-layer handlers catch ValueError; the binary path's
        # errors must flow through the same nets.
        assert issubclass(ProtocolError, ValueError)


class TestIntListFieldFastPath:
    def test_ndarray_passes_through_unconverted(self):
        words = np.array([1, 2, 3], dtype=np.uint64)
        out = protocol.int_list_field({"values": words}, "values")
        assert out is words

    def test_wrong_dtype_or_shape_is_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.int_list_field(
                {"values": np.zeros(3, dtype=np.int64)}, "values"
            )
        with pytest.raises(ProtocolError):
            protocol.int_list_field(
                {"values": np.zeros((2, 2), dtype=np.uint64)}, "values"
            )

    def test_plain_lists_still_validate(self):
        with pytest.raises(ProtocolError):
            protocol.int_list_field({"values": [1, "x"]}, "values")


class TestReadFrameStream:
    def run(self, payload: bytes, reads: int):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(payload)
            reader.feed_eof()
            return [await protocol.read_frame(reader) for _ in range(reads)]

        return asyncio.run(scenario())

    def test_mixed_stream_with_newline_bytes_in_payload(self):
        # 0x0A is a legal payload byte (any word with 10 in a byte
        # lane); readline() framing would split the frame there.
        tricky = make_frame(words=[0x0A0A0A0A0A0A0A0A, 10])
        json_frame = protocol.encode_frame(protocol.request("hello", 2))
        frames = self.run(json_frame + tricky + json_frame + tricky, 4)
        assert frames[0] == json_frame
        assert frames[1] == tricky
        assert frames[2] == json_frame
        assert frames[3] == tricky
        decoded = protocol.decode_any_frame(frames[3])
        assert list(decoded["values"]) == [0x0A0A0A0A0A0A0A0A, 10]

    def test_blank_keepalive_lines_pass_through(self):
        json_frame = protocol.encode_frame(protocol.request("hello", 2))
        frames = self.run(b"\n" + json_frame, 2)
        assert frames[0] == b"\n"
        assert frames[1] == json_frame

    def test_clean_eof_returns_empty(self):
        assert self.run(b"", 1) == [b""]

    def test_mid_body_truncation_raises(self):
        frame = make_frame(words=[1, 2, 3])
        with pytest.raises(ProtocolError):
            self.run(frame[:-4], 1)

    def test_oversize_declaration_raises_before_reading_the_body(self):
        prefix = struct.pack(
            "<BIII", protocol.BINARY_MAGIC, 16, protocol.MAX_FRAME_BYTES // 8, 0
        )
        with pytest.raises(ProtocolError):
            self.run(prefix, 1)


class TestFaultsMirrorConstants:
    def test_transport_fault_constants_match_the_protocol(self):
        # faults.transport cannot import serve.protocol (package-init
        # cycle), so it mirrors the two framing constants; this is the
        # pin that keeps the mirror honest.
        assert faults_transport.BINARY_FRAME_MAGIC == protocol.BINARY_MAGIC
        assert (
            faults_transport.BINARY_FRAME_PREFIX_BYTES
            == protocol.BINARY_PREFIX_BYTES
        )

    def test_corruptable_span_spares_binary_framing(self):
        frame = make_frame(words=[1, 2])
        lower, upper = faults_transport._corruptable_span(frame)
        assert lower == protocol.BINARY_PREFIX_BYTES
        assert upper == len(frame)
        json_frame = protocol.encode_frame(protocol.request("hello", 1))
        lower, upper = faults_transport._corruptable_span(json_frame)
        assert (lower, upper) == (0, len(json_frame) - 1)
