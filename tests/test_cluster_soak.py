"""End-to-end cluster soak as a pytest (``chaos`` lane).

One quick-profile run of the kill-the-worker soak: real supervised
worker processes behind a real router, concurrent client streams,
SIGKILL mid-stream, a planned rebalance, and a full drain — asserting
the same invariants the CI gate enforces via ``repro cluster-soak``.
"""

import asyncio

import pytest

from repro.serve.cluster_soak import ClusterSoakConfig, run_cluster_soak

@pytest.mark.chaos
class TestClusterSoak:
    def test_quick_profile_passes_every_invariant(self):
        config = ClusterSoakConfig.quick()
        report = asyncio.run(run_cluster_soak(config))
        assert report.ok, f"cluster soak failed: {report.failures}"
        assert report.streams_verified == config.clients
        assert report.failovers >= 1
        assert report.migrations >= 1
        assert report.kills >= 1
        assert report.worker_restarts >= 1
        assert report.drain.get("clean") is True

    def test_corpus_population_soak_verifies_bit_exact(self):
        # The acceptance run: clients stream members of a >=10k-stream
        # generator population and every stream must verify bit-exactly
        # against a local re-generation, straight through the kill.
        config = ClusterSoakConfig(
            workers=3, clients=6, cycles=240, chunk=20, seed=0,
            corpus="gen:mixed,seed=7,population=10000,cycles=240,width=16",
        )
        report = asyncio.run(run_cluster_soak(config))
        assert report.ok, f"corpus soak failed: {report.failures}"
        assert report.streams_verified == config.clients
        assert report.kills >= 1
        assert report.drain.get("clean") is True


class TestConfigValidation:
    def test_one_worker_cannot_fail_over(self):
        with pytest.raises(ValueError):
            ClusterSoakConfig(workers=1)

    def test_rejects_degenerate_sizing(self):
        with pytest.raises(ValueError):
            ClusterSoakConfig(clients=0)
        with pytest.raises(ValueError):
            ClusterSoakConfig(cycles=10, chunk=20)
