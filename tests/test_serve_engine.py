"""Unit tests for the transport-free serving engine.

Everything here drives :class:`ServeEngine.handle` directly — no
sockets — which is the point of the engine/transport split: sessions,
micro-batching, backpressure, deadlines and desync recovery are all
testable as plain asyncio code.
"""

import asyncio

import numpy as np
import pytest

from repro.coding import WindowTranscoder, parse_coder_spec
from repro.serve import ServeEngine, protocol
from repro.serve.engine import MAX_CHUNK_CYCLES
from repro.traces import BusTrace
from repro.workloads import locality_trace


def req(op, request_id=1, **fields):
    return protocol.request(op, request_id, **fields)


def run(coro):
    return asyncio.run(coro)


async def started_engine(**kwargs):
    engine = ServeEngine(**kwargs)
    await engine.start()
    return engine


def admitting_engine(**kwargs):
    """An engine that admits requests but has no worker running yet.

    Queued jobs sit untouched until :meth:`ServeEngine.start` is
    called, which makes queue-full backpressure and deadline expiry
    deterministic to provoke (no racing against the batch worker).
    """
    engine = ServeEngine(**kwargs)
    engine._admitting = True
    return engine


class TestConstruction:
    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            ServeEngine(queue_limit=0)
        with pytest.raises(ValueError):
            ServeEngine(batch_limit=0)


class TestEnvelope:
    def test_version_and_op_errors_bypass_the_queue(self):
        async def scenario():
            engine = await started_engine()
            try:
                bad_version = await engine.handle(1, {"op": "hello", "id": 1})
                unknown_op = await engine.handle(1, req("hello") | {"op": "nope"})
                bad_id = await engine.handle(1, {"v": 2, "id": "x", "op": "hello"})
                return bad_version, unknown_op, bad_id
            finally:
                await engine.stop(0.1)

        bad_version, unknown_op, bad_id = run(scenario())
        assert bad_version["error"]["code"] == protocol.ERR_UNSUPPORTED_VERSION
        assert unknown_op["error"]["code"] == protocol.ERR_UNKNOWN_OP
        assert bad_id["error"]["code"] == protocol.ERR_BAD_REQUEST

    def test_hello_reports_capabilities(self):
        async def scenario():
            engine = await started_engine(queue_limit=5, batch_limit=3)
            try:
                return await engine.handle(1, req("hello"))
            finally:
                await engine.stop(0.1)

        response = run(scenario())
        assert response["ok"]
        assert response["protocol"] == protocol.PROTOCOL_VERSION
        assert "window" in response["coders"]
        assert response["queue_limit"] == 5
        assert response["batch_limit"] == 3


class TestSessions:
    def test_streamed_encode_matches_one_shot(self):
        trace = locality_trace(900, seed=5)

        async def scenario():
            engine = await started_engine()
            try:
                opened = await engine.handle(1, req("open", 1, coder="window8", width=32))
                session = opened["session"]
                states = []
                values = [int(v) for v in trace.values]
                for start in range(0, len(values), 137):
                    chunk = values[start : start + 137]
                    response = await engine.handle(
                        1, req("encode", 2, session=session, values=chunk)
                    )
                    assert response["ok"]
                    states.extend(response["states"])
                return opened, states
            finally:
                await engine.stop(0.1)

        opened, states = run(scenario())
        oneshot = WindowTranscoder(8, 32).encode_trace(trace)
        assert opened["input_width"] == 32
        assert opened["output_width"] == oneshot.width
        assert np.array_equal(np.array(states, dtype=np.uint64), oneshot.values)

    def test_decode_round_trips(self):
        trace = locality_trace(400, seed=9)
        wire = parse_coder_spec("fcm", trace.width).encode_trace(trace)

        async def scenario():
            engine = await started_engine()
            try:
                opened = await engine.handle(1, req("open", 1, coder="fcm", width=32))
                session = opened["session"]
                out = []
                states = [int(s) for s in wire.values]
                for start in range(0, len(states), 101):
                    response = await engine.handle(
                        1, req("decode", 2, session=session, states=states[start : start + 101])
                    )
                    assert response["ok"]
                    out.extend(response["values"])
                return out
            finally:
                await engine.stop(0.1)

        decoded = run(scenario())
        assert np.array_equal(np.array(decoded, dtype=np.uint64), trace.values)

    def test_checkpoint_restore_replays(self):
        values = [int(v) for v in locality_trace(300, seed=2).values]

        async def scenario():
            engine = await started_engine()
            try:
                opened = await engine.handle(1, req("open", 1, coder="stride4"))
                session = opened["session"]
                await engine.handle(1, req("encode", 2, session=session, values=values[:100]))
                ck = await engine.handle(1, req("checkpoint", 3, session=session))
                first = await engine.handle(
                    1, req("encode", 4, session=session, values=values[100:200])
                )
                restored = await engine.handle(
                    1, req("restore", 5, session=session, checkpoint=ck["checkpoint"])
                )
                again = await engine.handle(
                    1, req("encode", 6, session=session, values=values[100:200])
                )
                return ck, first, restored, again
            finally:
                await engine.stop(0.1)

        ck, first, restored, again = run(scenario())
        assert ck["ok"] and ck["cycles"] == 100
        assert restored["cycles"] == 100
        assert first["states"] == again["states"]
        assert first["cycles"] == again["cycles"] == 200

    def test_restore_unknown_checkpoint_is_bad_request(self):
        async def scenario():
            engine = await started_engine()
            try:
                opened = await engine.handle(1, req("open", 1, coder="window8"))
                return await engine.handle(
                    1, req("restore", 2, session=opened["session"], checkpoint=42)
                )
            finally:
                await engine.stop(0.1)

        response = run(scenario())
        assert response["error"]["code"] == protocol.ERR_BAD_REQUEST

    def test_sessions_are_connection_scoped(self):
        async def scenario():
            engine = await started_engine()
            try:
                opened = await engine.handle(1, req("open", 1, coder="window8"))
                stolen = await engine.handle(
                    2, req("encode", 2, session=opened["session"], values=[1])
                )
                mine = await engine.handle(
                    1, req("encode", 3, session=opened["session"], values=[1])
                )
                engine.drop_connection(1)
                gone = await engine.handle(
                    1, req("encode", 4, session=opened["session"], values=[1])
                )
                return stolen, mine, gone
            finally:
                await engine.stop(0.1)

        stolen, mine, gone = run(scenario())
        assert stolen["error"]["code"] == protocol.ERR_NO_SESSION
        assert mine["ok"]
        assert gone["error"]["code"] == protocol.ERR_NO_SESSION

    def test_close_releases_the_session(self):
        async def scenario():
            engine = await started_engine()
            try:
                opened = await engine.handle(1, req("open", 1, coder="last"))
                closed = await engine.handle(1, req("close", 2, session=opened["session"]))
                after = await engine.handle(
                    1, req("encode", 3, session=opened["session"], values=[1])
                )
                return closed, after
            finally:
                await engine.stop(0.1)

        closed, after = run(scenario())
        assert closed["ok"]
        assert after["error"]["code"] == protocol.ERR_NO_SESSION

    def test_open_validation_errors(self):
        async def scenario():
            engine = await started_engine()
            try:
                return (
                    await engine.handle(1, req("open", 1, coder="magic8")),
                    await engine.handle(1, req("open", 2, coder="window8", width=0)),
                    await engine.handle(
                        1, req("open", 3, coder="window8", policy="pray")
                    ),
                )
            finally:
                await engine.stop(0.1)

        unknown_coder, bad_width, bad_policy = run(scenario())
        for response in (unknown_coder, bad_width, bad_policy):
            assert response["error"]["code"] == protocol.ERR_BAD_REQUEST

    def test_oversized_chunk_is_rejected(self):
        async def scenario():
            engine = await started_engine()
            try:
                opened = await engine.handle(1, req("open", 1, coder="transition"))
                return await engine.handle(
                    1,
                    req(
                        "encode",
                        2,
                        session=opened["session"],
                        values=[0] * (MAX_CHUNK_CYCLES + 1),
                    ),
                )
            finally:
                await engine.stop(0.1)

        response = run(scenario())
        assert response["error"]["code"] == protocol.ERR_BAD_REQUEST


class TestDesyncRecovery:
    def test_flipped_wire_is_detected_and_recovered(self):
        trace = locality_trace(200, seed=4)

        async def scenario():
            engine = await started_engine()
            try:
                opened = await engine.handle(
                    1, req("open", 1, coder="window8", width=32, policy="reset-both")
                )
                session = opened["session"]
                assert opened["resilient"]
                values = [int(v) for v in trace.values]
                encoded = await engine.handle(
                    1, req("encode", 2, session=session, values=values[:51])
                )
                states = list(encoded["states"])
                states[50] ^= 1  # single-bit upset breaks the parity wire
                ok1 = await engine.handle(
                    1, req("decode", 3, session=session, states=states[:50])
                )
                hit = await engine.handle(
                    1, req("decode", 4, session=session, states=states[50:])
                )
                # reset-both recovery put BOTH server twins at power-on;
                # the stream resumes by re-encoding from the reset state
                # (the client-side NACK round, over the wire).
                resumed = await engine.handle(
                    1, req("encode", 5, session=session, values=values[51:])
                )
                tail = await engine.handle(
                    1, req("decode", 6, session=session, states=resumed["states"])
                )
                return ok1, hit, tail
            finally:
                await engine.stop(0.1)

        ok1, hit, tail = run(scenario())
        assert ok1["ok"] and "desyncs" not in ok1
        assert hit["ok"]
        assert hit["desyncs"] == [50]
        assert hit["recovered"] is True
        assert hit["reset"] is True
        # The clean prefix decoded exactly.
        assert np.array_equal(
            np.array(ok1["values"], dtype=np.uint64), trace.values[:50]
        )
        # And the re-synchronised stream decodes cleanly after recovery.
        assert "desyncs" not in tail
        assert np.array_equal(
            np.array(tail["values"], dtype=np.uint64), trace.values[51:]
        )


class TestBackpressure:
    def test_queue_full_sheds_oldest_deadline_first(self):
        async def scenario():
            engine = admitting_engine(queue_limit=4)
            try:
                # Fill the bounded queue; these futures stay pending
                # (no worker is consuming yet).
                waiters = [
                    asyncio.ensure_future(engine.handle(1, req("hello", i)))
                    for i in range(4)
                ]
                await asyncio.sleep(0)
                # Overflow: under shed-oldest-deadline-first the
                # *stalest* queued request is answered busy and the
                # fresh one is admitted in its place — new work keeps
                # flowing during overload, the about-to-expire request
                # pays for it.
                overflow = asyncio.ensure_future(engine.handle(1, req("hello", 100)))
                shed = await waiters[0]
                await engine.start()
                served = await asyncio.gather(*waiters[1:], overflow)
                return shed, served
            finally:
                await engine.stop(0.1)

        shed, served = run(scenario())
        assert shed["ok"] is False
        assert shed["error"]["code"] == protocol.ERR_BUSY
        assert all(r["ok"] for r in served)  # admitted work still completes

    def test_overflow_without_deadlines_sheds_stalest_enqueue(self):
        async def scenario():
            engine = admitting_engine(queue_limit=2, request_timeout_s=None)
            try:
                first = asyncio.ensure_future(engine.handle(1, req("hello", 1)))
                second = asyncio.ensure_future(engine.handle(1, req("hello", 2)))
                await asyncio.sleep(0)
                third = asyncio.ensure_future(engine.handle(1, req("hello", 3)))
                shed = await first
                await engine.start()
                served = await asyncio.gather(second, third)
                return shed, served
            finally:
                await engine.stop(0.1)

        shed, served = run(scenario())
        assert shed["error"]["code"] == protocol.ERR_BUSY
        assert all(r["ok"] for r in served)

    def test_not_admitting_after_stop_answers_shutdown(self):
        """A stopped engine will never admit again, so the rejection is
        `shutdown` (retry elsewhere), not `busy` (retry here later) —
        the cluster router keys crash/drain failover off this."""

        async def scenario():
            engine = await started_engine()
            await engine.stop(0.1)
            return await engine.handle(1, req("hello"))

        response = run(scenario())
        assert response["error"]["code"] == protocol.ERR_SHUTDOWN


class TestDeadlines:
    def test_expired_requests_are_answered_timeout(self):
        async def scenario():
            engine = admitting_engine(request_timeout_s=0.05)
            try:
                waiters = [
                    asyncio.ensure_future(engine.handle(1, req("hello", i)))
                    for i in range(3)
                ]
                await asyncio.sleep(0.12)  # let every deadline lapse
                await engine.start()
                return await asyncio.gather(*waiters)
            finally:
                await engine.stop(0.1)

        responses = run(scenario())
        assert all(r["ok"] is False for r in responses)
        assert all(r["error"]["code"] == protocol.ERR_TIMEOUT for r in responses)

    def test_no_timeout_when_disabled(self):
        async def scenario():
            engine = admitting_engine(request_timeout_s=None)
            try:
                waiter = asyncio.ensure_future(engine.handle(1, req("hello", 1)))
                await asyncio.sleep(0.05)
                await engine.start()
                return await waiter
            finally:
                await engine.stop(0.1)

        assert run(scenario())["ok"]


class TestOneShotBatching:
    def test_concurrent_encode_trace_requests_agree_with_library(self):
        trace = locality_trace(300, seed=6)
        values = [int(v) for v in trace.values]

        async def scenario():
            # Queue everything before the worker starts, so the five
            # requests land in one micro-batch sharing one coder.
            engine = admitting_engine(batch_limit=8)
            try:
                waiters = [
                    asyncio.ensure_future(
                        engine.handle(
                            1, req("encode_trace", i, coder="invert", width=32, values=values)
                        )
                    )
                    for i in range(5)
                ]
                await asyncio.sleep(0)
                await engine.start()
                return await asyncio.gather(*waiters)
            finally:
                await engine.stop(0.1)

        responses = run(scenario())
        oneshot = parse_coder_spec("invert", 32).encode_trace(
            BusTrace(np.array(values, dtype=np.uint64), 32)
        )
        expected = [int(s) for s in oneshot.values]
        for response in responses:
            assert response["ok"]
            assert response["states"] == expected


class TestSweeps:
    def test_sweep_returns_savings(self):
        async def scenario():
            engine = await started_engine()
            try:
                return await engine.handle(
                    1, req("sweep", 1, workload="gcc", coder="window8", cycles=2500)
                )
            finally:
                await engine.stop(2.0)

        response = run(scenario())
        assert response["ok"]
        assert response["workload"] == "gcc"
        assert response["transitions_after"] <= response["transitions_before"]
        assert isinstance(response["savings_pct"], float)

    def test_sweep_validation_fails_fast(self):
        async def scenario():
            engine = await started_engine()
            try:
                return (
                    await engine.handle(1, req("sweep", 1, workload="no-such")),
                    await engine.handle(1, req("sweep", 2, workload="gcc", coder="bogus9")),
                    await engine.handle(1, req("sweep", 3, workload="gcc", cycles=0)),
                )
            finally:
                await engine.stop(0.5)

        for response in run(scenario()):
            assert response["error"]["code"] == protocol.ERR_BAD_REQUEST


class TestHealthOp:
    def test_health_reports_liveness_and_load(self):
        async def scenario():
            engine = await started_engine(queue_limit=5, batch_limit=2)
            try:
                return await engine.handle(1, req("health"))
            finally:
                await engine.stop(0.1)

        response = run(scenario())
        assert response["ok"] is True
        assert response["uptime_s"] >= 0.0
        assert response["sessions"] == 0
        assert response["admitting"] is True

    def test_health_rides_the_queue_so_a_wedged_worker_fails_it(self):
        """The supervisor's liveness probe must NOT bypass the batch
        worker: a paused (wedged) engine answers health only by its
        deadline lapsing, which is the wedge signal."""

        async def scenario():
            engine = await started_engine(request_timeout_s=0.05)
            try:
                engine.pause()
                probe = asyncio.ensure_future(engine.handle(1, req("health")))
                await asyncio.sleep(0.12)
                engine.resume()
                return await probe
            finally:
                await engine.stop(0.1)

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.ERR_TIMEOUT


class TestShedTieBreaking:
    def test_equal_deadlines_shed_the_stalest_enqueue_first(self):
        """Deadlines tie when requests arrive inside one clock tick; the
        tie-break must be deterministic: the earliest-enqueued of the
        tied group is shed, never the fresh arrival."""

        async def scenario():
            engine = admitting_engine(queue_limit=3, request_timeout_s=None)
            try:
                # No per-request deadline: shed_key falls back to the
                # enqueue stamp, so ordering is purely arrival order.
                waiters = [
                    asyncio.ensure_future(engine.handle(1, req("hello", i)))
                    for i in range(3)
                ]
                await asyncio.sleep(0)
                overflow = [
                    asyncio.ensure_future(engine.handle(1, req("hello", 100 + i)))
                    for i in range(2)
                ]
                # Two overflows -> the two stalest queued requests are
                # shed, in arrival order.
                shed_first = await waiters[0]
                shed_second = await waiters[1]
                await engine.start()
                served = await asyncio.gather(waiters[2], *overflow)
                return shed_first, shed_second, served
            finally:
                await engine.stop(0.1)

        shed_first, shed_second, served = run(scenario())
        assert shed_first["error"]["code"] == protocol.ERR_BUSY
        assert shed_first["id"] == 0
        assert shed_second["error"]["code"] == protocol.ERR_BUSY
        assert shed_second["id"] == 1
        assert [r["id"] for r in served] == [2, 100, 101]
        assert all(r["ok"] for r in served)

    def test_incoming_request_loses_tie_only_if_strictly_older_exists(self):
        """When the incoming request itself has the soonest deadline it
        is the shed victim — admission is not a free pass."""

        async def scenario():
            engine = admitting_engine(queue_limit=2, request_timeout_s=None)
            try:
                first = asyncio.ensure_future(engine.handle(1, req("hello", 1)))
                second = asyncio.ensure_future(engine.handle(1, req("hello", 2)))
                await asyncio.sleep(0)
                # Artificially make the queued requests look fresher
                # than the incoming one, so the incoming loses.
                for job in engine._queue:
                    job.enqueued += 60.0
                    if job.deadline is not None:
                        job.deadline += 60.0
                shed = await engine.handle(1, req("hello", 3))
                await engine.start()
                served = await asyncio.gather(first, second)
                return shed, served
            finally:
                await engine.stop(0.1)

        shed, served = run(scenario())
        assert shed["error"]["code"] == protocol.ERR_BUSY
        assert shed["id"] == 3
        assert all(r["ok"] for r in served)
