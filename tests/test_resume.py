"""Session resumption over exported checkpoints (engine level, no sockets).

The contract under test: ``checkpoint {"export": true}`` seals the
session's FSM state into a portable JSON blob; ``resume`` on *any*
later connection materialises a new session whose subsequent stream is
byte-identical to the uninterrupted one.  The closed error codes:
``stale_checkpoint`` for unusable blobs (bad digest / protocol /
payload), ``resume_mismatch`` for well-formed blobs that disagree with
the request's pins or their own claimed identity.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.coding import parse_coder_spec
from repro.serve import ServeEngine, protocol
from repro.workloads import locality_trace


def req(op, request_id=1, **fields):
    return protocol.request(op, request_id, **fields)


def run(coro):
    return asyncio.run(coro)


async def started_engine(**kwargs):
    engine = ServeEngine(**kwargs)
    await engine.start()
    return engine


async def exported_session(
    engine, coder="window8", width=16, cycles=120, seed=2, values=None
):
    """Open a session, feed values, export its checkpoint.

    Returns ``(values, states, blob)``; the session lives on connection 1.
    """
    if values is None:
        trace = locality_trace(cycles, width=width, seed=seed)
        values = [int(v) for v in trace.values]
    opened = await engine.handle(1, req("open", 1, coder=coder, width=width))
    assert opened["ok"], opened
    fed = await engine.handle(
        1, req("encode", 2, session=opened["session"], values=values)
    )
    assert fed["ok"], fed
    exported = await engine.handle(
        1, req("checkpoint", 3, session=opened["session"], export=True)
    )
    assert exported["ok"], exported
    return values, list(fed["states"]), exported["state"]


class TestExport:
    def test_checkpoint_without_export_has_no_state(self):
        async def scenario():
            engine = await started_engine()
            try:
                opened = await engine.handle(1, req("open", 1, coder="last", width=16))
                plain = await engine.handle(
                    1, req("checkpoint", 2, session=opened["session"])
                )
                return plain
            finally:
                await engine.stop(0.1)

        plain = run(scenario())
        assert plain["ok"]
        assert "state" not in plain

    def test_exported_state_is_json_safe_and_sealed(self):
        async def scenario():
            engine = await started_engine()
            try:
                _, _, blob = await exported_session(engine)
                return blob
            finally:
                await engine.stop(0.1)

        blob = run(scenario())
        # Pure JSON: survives a dumps/loads round trip unchanged.
        assert json.loads(json.dumps(blob)) == blob
        assert blob["digest"] == protocol.state_digest(blob)
        assert blob["protocol"] == protocol.PROTOCOL_VERSION
        assert blob["spec"] == "window8" and blob["width"] == 16


class TestResume:
    @pytest.mark.parametrize("coder", ["window8", "fcm", "stride4", "context"])
    def test_resumed_stream_is_byte_identical(self, coder):
        trace = locality_trace(240, width=16, seed=5)
        values = [int(v) for v in trace.values]

        async def scenario():
            engine = await started_engine()
            try:
                _, head, blob = await exported_session(
                    engine, coder=coder, values=values[:120]
                )
                # The original connection dies with everything on it.
                engine.drop_connection(1)
                wire_blob = json.loads(json.dumps(blob))
                resumed = await engine.handle(
                    9, req("resume", 10, state=wire_blob, coder=coder, width=16)
                )
                assert resumed["ok"], resumed
                assert resumed["resumed"] is True
                assert resumed["cycles"] == 120
                tail = await engine.handle(
                    9,
                    req("encode", 11, session=resumed["session"], values=values[120:]),
                )
                assert tail["ok"], tail
                return head + list(tail["states"])
            finally:
                await engine.stop(0.1)

        states = run(scenario())
        oneshot = parse_coder_spec(coder, 16).encode_trace(trace)
        assert np.array_equal(np.asarray(states, dtype=np.uint64), oneshot.values)

    def test_resume_is_connection_scoped_like_open(self):
        async def scenario():
            engine = await started_engine()
            try:
                _, _, blob = await exported_session(engine)
                resumed = await engine.handle(5, req("resume", 1, state=blob))
                stolen = await engine.handle(
                    6, req("encode", 2, session=resumed["session"], values=[1])
                )
                return stolen
            finally:
                await engine.stop(0.1)

        stolen = run(scenario())
        assert stolen["error"]["code"] == protocol.ERR_NO_SESSION


class TestRejections:
    def run_resume(self, mutate=None, **pins):
        async def scenario():
            engine = await started_engine()
            try:
                _, _, blob = await exported_session(engine)
                if mutate is not None:
                    blob = mutate(blob)
                return await engine.handle(2, req("resume", 1, state=blob, **pins))
            finally:
                await engine.stop(0.1)

        return run(scenario())

    def test_missing_state_is_bad_request(self):
        async def scenario():
            engine = await started_engine()
            try:
                return await engine.handle(1, req("resume", 1))
            finally:
                await engine.stop(0.1)

        assert run(scenario())["error"]["code"] == protocol.ERR_BAD_REQUEST

    def test_tampered_blob_is_stale(self):
        def mutate(blob):
            tampered = dict(blob)
            tampered["width"] = 32  # digest no longer matches
            return tampered

        response = self.run_resume(mutate)
        assert response["error"]["code"] == protocol.ERR_STALE_CHECKPOINT

    def test_wrong_protocol_is_stale(self):
        def mutate(blob):
            stale = dict(blob, protocol=1)
            stale["digest"] = protocol.state_digest(stale)  # reseal
            return stale

        response = self.run_resume(mutate)
        assert response["error"]["code"] == protocol.ERR_STALE_CHECKPOINT

    def test_pinned_coder_disagreeing_is_mismatch(self):
        response = self.run_resume(coder="fcm")
        assert response["error"]["code"] == protocol.ERR_RESUME_MISMATCH

    def test_pinned_width_disagreeing_is_mismatch(self):
        response = self.run_resume(width=64)
        assert response["error"]["code"] == protocol.ERR_RESUME_MISMATCH

    def test_class_outside_allowlist_is_stale_even_resealed(self):
        # A hostile blob naming an arbitrary class cannot reach
        # instantiation: even with a *valid* digest, the codec refuses
        # anything outside the hand-audited allowlist.
        def mutate(blob):
            hostile = json.loads(json.dumps(blob))

            def poison(node):
                if isinstance(node, dict):
                    if node.get("t") == "obj":
                        node["cls"] = "Popen"
                    for value in node.values():
                        poison(value)
                elif isinstance(node, list):
                    for item in node:
                        poison(item)

            poison(hostile["encoder"])
            hostile["digest"] = protocol.state_digest(hostile)  # reseal
            return hostile

        response = self.run_resume(mutate)
        assert response["error"]["code"] == protocol.ERR_STALE_CHECKPOINT

    def test_payload_of_wrong_coder_type_is_mismatch(self):
        # Swap in another coder family's sealed payload under this
        # blob's identity: well-formed, decodable, but it restores into
        # a different coder type than the identity claims.
        async def scenario():
            engine = await started_engine()
            try:
                _, _, blob = await exported_session(engine, coder="window8")
                engine.drop_connection(1)
                _, _, other_blob = await exported_session(engine, coder="fcm")
                crossed = dict(blob)
                crossed["encoder"] = other_blob["encoder"]
                crossed["decoder"] = other_blob["decoder"]
                crossed["digest"] = protocol.state_digest(crossed)
                return await engine.handle(2, req("resume", 9, state=crossed))
            finally:
                await engine.stop(0.1)

        response = run(scenario())
        assert response["error"]["code"] == protocol.ERR_RESUME_MISMATCH
