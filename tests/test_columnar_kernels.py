"""Columnar multi-stream kernels vs the per-stream differential oracle.

The batch API contract (``Transcoder.encode_chunks_batch`` and
friends): a batch call over B homogeneous streams is bit-identical to
B sequential per-stream calls, leaves every FSM in the identical
state, and reports the same ``coder.*`` metrics.  The default base
implementation *is* the sequential loop, so the hypothesis properties
below pin the TransitionCoder's real 2-D kernels against it — and the
generic test keeps the API callable for every registered family.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import _bitops, obs
from repro.coding import CODER_FAMILIES, build_coder
from repro.coding.transition import TransitionCoder
from repro.traces import BusTrace, StreamingDecoder, StreamingEncoder

WIDTH = 16

# B ragged streams of 16-bit words: the columnar kernels must be exact
# for any mix of lengths, including empty rows and empty batches.
stream_batches = st.lists(
    st.lists(st.integers(0, 0xFFFF), min_size=0, max_size=24),
    min_size=1,
    max_size=6,
)
# Per-stream pre-warm lengths (nonzero FSM seeds before the batch wave).
warmups = st.lists(st.integers(0, 8), min_size=6, max_size=6)


def fresh(family):
    return build_coder(family, 4, WIDTH)


class TestBitops:
    @given(rows=stream_batches)
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_round_trip(self, rows):
        arrays = [np.asarray(r, dtype=np.uint64) for r in rows]
        matrix, lengths = _bitops.pack_streams(arrays)
        out = _bitops.unpack_streams(matrix, lengths)
        assert len(out) == len(arrays)
        for a, b in zip(arrays, out):
            assert np.array_equal(a, b)

    @given(rows=stream_batches, seeds=st.lists(st.integers(0, 0xFFFF), min_size=6, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_scan_then_diff_is_identity(self, rows, seeds):
        arrays = [np.asarray(r, dtype=np.uint64) for r in rows]
        seed_arr = np.asarray(seeds[: len(arrays)], dtype=np.uint64)
        matrix, lengths = _bitops.pack_streams(arrays)
        scanned = _bitops.xor_scan_rows(matrix, seed_arr)
        back = _bitops.xor_diff_rows(scanned, seed_arr)
        for a, b in zip(arrays, _bitops.unpack_streams(back, lengths)):
            assert np.array_equal(a, b)


class TestTransitionColumnar:
    """The real 2-D kernels against the sequential per-stream loop."""

    @given(batch=stream_batches, warm=warmups)
    @settings(max_examples=50, deadline=None)
    def test_encode_batch_matches_streams_with_live_state(self, batch, warm):
        solo = [TransitionCoder(WIDTH) for _ in batch]
        cols = [TransitionCoder(WIDTH) for _ in batch]
        # Pre-warm each FSM differently so the batch inherits nonzero,
        # non-uniform seeds.
        for i, (a, b) in enumerate(zip(solo, cols)):
            prefix = list(range(1, 1 + warm[i % len(warm)]))
            a.encode_chunk(prefix)
            b.encode_chunk(prefix)
        expected = [a.encode_chunk(chunk) for a, chunk in zip(solo, batch)]
        got = TransitionCoder.encode_chunks_batch(cols, batch)
        for e, g in zip(expected, got):
            assert np.array_equal(e, g)
        for a, b in zip(solo, cols):
            assert a._enc_state == b._enc_state

    @given(batch=stream_batches, warm=warmups)
    @settings(max_examples=50, deadline=None)
    def test_decode_batch_matches_streams_with_live_state(self, batch, warm):
        solo = [TransitionCoder(WIDTH) for _ in batch]
        cols = [TransitionCoder(WIDTH) for _ in batch]
        for i, (a, b) in enumerate(zip(solo, cols)):
            prefix = list(range(1, 1 + warm[i % len(warm)]))
            a.decode_chunk(prefix)
            b.decode_chunk(prefix)
        expected = [a.decode_chunk(chunk) for a, chunk in zip(solo, batch)]
        got = TransitionCoder.decode_chunks_batch(cols, batch)
        for e, g in zip(expected, got):
            assert np.array_equal(e, g)
        for a, b in zip(solo, cols):
            assert a._dec_state == b._dec_state

    @given(batch=stream_batches)
    @settings(max_examples=50, deadline=None)
    def test_encode_traces_batch_matches_solo_encodes(self, batch):
        traces = [BusTrace.from_values(v, width=WIDTH) for v in batch]
        solo_coder = TransitionCoder(WIDTH)
        expected = [solo_coder.encode_trace(t) for t in traces]
        batch_coder = TransitionCoder(WIDTH)
        got = batch_coder.encode_traces_batch(traces)
        for e, g in zip(expected, got):
            assert np.array_equal(e.values, g.values)
            assert e.name == g.name
            assert e.width == g.width
        # The batch leaves the coder exactly where the last solo
        # encode_trace would have.
        assert batch_coder._enc_state == solo_coder._enc_state

    def test_metrics_match_the_sequential_loop(self):
        chunks = [[1, 2, 3], [4, 5], []]
        reg = obs.get_registry()

        def stream_counters(run):
            before = reg.snapshot()
            run()
            delta = reg.diff(before)["counters"]
            return {
                k: v
                for k, v in delta.items()
                if k.startswith("coder.stream")
            }

        def solo():
            coders = [TransitionCoder(WIDTH) for _ in chunks]
            for coder, chunk in zip(coders, chunks):
                coder.encode_chunk(chunk)

        def batch():
            coders = [TransitionCoder(WIDTH) for _ in chunks]
            TransitionCoder.encode_chunks_batch(coders, chunks)

        assert stream_counters(solo) == stream_counters(batch)


@pytest.mark.parametrize("family", CODER_FAMILIES)
class TestBatchApiEveryFamily:
    """The batch API is callable for every family; non-columnar
    families fall back to the sequential loop bit-identically."""

    @given(batch=stream_batches)
    @settings(max_examples=10, deadline=None)
    def test_feed_many_equals_sequential_feeds(self, family, batch):
        seq = [StreamingEncoder(fresh(family)) for _ in batch]
        col = [StreamingEncoder(fresh(family)) for _ in batch]
        expected = [s.feed(chunk) for s, chunk in zip(seq, batch)]
        got = StreamingEncoder.feed_many(col, batch)
        for e, g in zip(expected, got):
            assert np.array_equal(e, g)
        for s, c in zip(seq, col):
            assert s.cycles == c.cycles
            assert s._last_state == c._last_state

    @given(batch=stream_batches)
    @settings(max_examples=10, deadline=None)
    def test_decode_feed_many_round_trips(self, family, batch):
        encoders = [StreamingEncoder(fresh(family)) for _ in batch]
        wire = [enc.feed(chunk) for enc, chunk in zip(encoders, batch)]
        decoders = [StreamingDecoder(fresh(family)) for _ in batch]
        got = StreamingDecoder.feed_many(decoders, wire)
        for original, decoded in zip(batch, got):
            assert np.array_equal(
                np.asarray(original, dtype=np.uint64), decoded
            )

    def test_columnar_flag_marks_the_overriding_family(self, family):
        coder = fresh(family)
        assert coder.columnar_batch is (family == "transition")
