"""Differential tests: vectorized trace kernels vs the scalar FSM oracle.

Every coder with a fast path (`TransitionCoder`, `InversionTranscoder`,
`LastValueTranscoder`) must produce *bit-identical* encodes and decodes
to its per-cycle loop on every input — suite traces, synthetic traces,
adversarial hypothesis streams, empty traces — and must leave the FSM
in the same state the scalar loop would, so per-cycle calls can
continue seamlessly after a trace-level call.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._bitops import (
    HAVE_BITWISE_COUNT,
    _popcount_table,
    pair_coupling_counts,
    popcount,
)
from repro.coding import InversionTranscoder, LastValueTranscoder, TransitionCoder
from repro.traces import BusTrace
from repro.workloads import locality_trace, random_trace, suite_traces

WIDTH = 32

CODER_FACTORIES = {
    "transition": lambda w=WIDTH: TransitionCoder(w),
    "last-value": lambda w=WIDTH: LastValueTranscoder(w),
    "invert-k1": lambda w=WIDTH: InversionTranscoder(w, 1),
    "invert-k2": lambda w=WIDTH: InversionTranscoder(w, 2),
    "invert-lam0": lambda w=WIDTH: InversionTranscoder(w, 1, assumed_lambda=0.0),
    "invert-lam2.5": lambda w=WIDTH: InversionTranscoder(w, 2, assumed_lambda=2.5),
}


def assert_differential(make, trace):
    """Fast and scalar paths agree on values, widths and names."""
    fast_coder, scalar_coder = make(trace.width), make(trace.width)
    fast = fast_coder.encode_trace(trace)
    scalar = scalar_coder.encode_trace_scalar(trace)
    assert np.array_equal(fast.values, scalar.values)
    assert fast.width == scalar.width
    assert fast.name == scalar.name

    fast_dec = fast_coder.decode_trace(fast)
    scalar_dec = scalar_coder.decode_trace_scalar(scalar)
    assert np.array_equal(fast_dec.values, scalar_dec.values)
    assert np.array_equal(fast_dec.values, trace.values)
    assert fast_dec.name == scalar_dec.name == trace.name  # satellite: name restored


@pytest.mark.parametrize("coder_name", sorted(CODER_FACTORIES))
@pytest.mark.parametrize("fixture", ["rand_trace", "local_trace", "gcc_register"])
def test_differential_on_standard_traces(coder_name, fixture, request):
    trace = request.getfixturevalue(fixture)
    assert_differential(CODER_FACTORIES[coder_name], trace)


@pytest.mark.parametrize("coder_name", sorted(CODER_FACTORIES))
def test_differential_on_full_suite(coder_name):
    """The acceptance check: vectorized == scalar on every suite trace."""
    for trace in suite_traces("register", None, 2500).values():
        assert_differential(CODER_FACTORIES[coder_name], trace)


@pytest.mark.parametrize("coder_name", sorted(CODER_FACTORIES))
@pytest.mark.parametrize("bus", ["register", "memory", "address", "result"])
def test_differential_across_buses(coder_name, bus):
    trace = suite_traces(bus, ("gcc",), 2000)["gcc"]
    assert_differential(CODER_FACTORIES[coder_name], trace)


@pytest.mark.parametrize("coder_name", sorted(CODER_FACTORIES))
def test_differential_on_empty_trace(coder_name):
    empty = BusTrace(np.empty(0, dtype=np.uint64), WIDTH, "empty")
    assert_differential(CODER_FACTORIES[coder_name], empty)


@pytest.mark.parametrize("coder_name", sorted(CODER_FACTORIES))
def test_differential_on_narrow_bus(coder_name, tiny_trace):
    assert_differential(CODER_FACTORIES[coder_name], tiny_trace)


@pytest.mark.parametrize("coder_name", sorted(CODER_FACTORIES))
def test_fsm_state_matches_after_trace_call(coder_name):
    """Per-cycle calls after a fast trace call continue exactly as they
    would after the scalar loop — the kernel must restore the FSM."""
    trace = locality_trace(700, WIDTH, seed=3)
    tail = [0, 7, 7, 0xDEADBEEF, 0xDEADBEEF, 1 << 31, 0]
    fast_coder = CODER_FACTORIES[coder_name](WIDTH)
    scalar_coder = CODER_FACTORIES[coder_name](WIDTH)
    fast_phys = fast_coder.encode_trace(trace)
    scalar_phys = scalar_coder.encode_trace_scalar(trace)
    assert [fast_coder.encode_value(v) for v in tail] == [
        scalar_coder.encode_value(v) for v in tail
    ]
    # Same for the decoder side.
    fast_coder.decode_trace(fast_phys)
    scalar_coder.decode_trace_scalar(scalar_phys)
    probe = int(scalar_phys.values[-1]) if len(scalar_phys) else 0
    assert fast_coder.decode_state(probe) == scalar_coder.decode_state(probe)


def test_last_value_ablations_fall_back_to_scalar():
    """Non-default LAST configurations take the scalar path (and the
    trace API still matches the oracle bit for bit)."""
    trace = locality_trace(400, WIDTH, seed=5)
    for silent_last, edge_control in ((False, False), (True, True), (False, True)):
        coder = LastValueTranscoder(WIDTH)
        coder.silent_last = silent_last
        coder.edge_control = edge_control
        assert not coder._fast_path_ok()
        oracle = LastValueTranscoder(WIDTH)
        oracle.silent_last = silent_last
        oracle.edge_control = edge_control
        fast = coder.encode_trace(trace)
        scalar = oracle.encode_trace_scalar(trace)
        assert np.array_equal(fast.values, scalar.values)


# -- hypothesis streams ---------------------------------------------------

streams32 = st.lists(
    st.one_of(
        st.integers(0, (1 << WIDTH) - 1),
        st.sampled_from([0, 1, 0xFFFFFFFF, 0xAAAAAAAA, 0x55555555, 0x12345678]),
    ),
    min_size=0,
    max_size=90,
)


@settings(deadline=None, max_examples=60)
@given(values=streams32)
def test_differential_hypothesis(values):
    trace = BusTrace.from_values(values, width=WIDTH, name="hyp")
    for make in CODER_FACTORIES.values():
        assert_differential(make, trace)


@settings(deadline=None, max_examples=60)
@given(values=st.lists(st.integers(0, (1 << 64) - 1), min_size=0, max_size=64))
def test_popcount_matches_table_and_python(values):
    arr = np.array(values, dtype=np.uint64)
    fast = popcount(arr)
    table = _popcount_table(arr)
    expected = np.array([bin(v).count("1") for v in values], dtype=np.int64)
    assert np.array_equal(fast, expected)
    assert np.array_equal(table, expected)
    assert fast.dtype == np.int64


def test_popcount_native_path_flag():
    """NumPy >= 2 must use the native ufunc (this environment has it)."""
    if hasattr(np, "bitwise_count"):
        assert HAVE_BITWISE_COUNT


def _kappa_reference(old, new, width):
    """Per-wire-loop equation-3 coupling count (the scalar definition)."""

    def delta(n):
        before, after = (old >> n) & 1, (new >> n) & 1
        return after - before

    return sum(abs(delta(n) - delta(n + 1)) for n in range(width - 1))


@settings(deadline=None, max_examples=80)
@given(
    old=st.integers(0, (1 << 16) - 1),
    new=st.integers(0, (1 << 16) - 1),
    width=st.integers(1, 16),
)
def test_pair_coupling_counts_matches_reference(old, new, width):
    mask = (1 << width) - 1
    old &= mask
    new &= mask
    got = pair_coupling_counts(
        np.array([old], dtype=np.uint64), np.array([new], dtype=np.uint64), width
    )
    assert int(got[0]) == _kappa_reference(old, new, width)
