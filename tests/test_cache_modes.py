"""Unit tests for set-associative and write-back cache modes."""

import pytest

from repro.cpu import Cache, Machine, PipelineConfig


class TestSetAssociative:
    def test_two_way_tolerates_one_conflict(self):
        cache = Cache(1024, 16, associativity=2)
        cache.fill(0)
        cache.fill(512)  # same set in a 32-set, 2-way cache
        assert cache.lookup(0)
        assert cache.lookup(512)

    def test_lru_eviction_order(self):
        cache = Cache(1024, 16, associativity=2)
        cache.fill(0)
        cache.fill(512)
        cache.lookup(0)  # refresh 0, making 512 the LRU way
        cache.fill(1024)  # conflicts; must evict 512
        assert cache.lookup(0)
        assert not cache.lookup(512)

    def test_validates_associativity(self):
        with pytest.raises(ValueError):
            Cache(1024, 16, associativity=0)
        with pytest.raises(ValueError):
            Cache(1024, 16, associativity=7)  # 64 lines % 7 != 0

    def test_fully_associative(self):
        cache = Cache(64, 16, associativity=4)  # one set, 4 ways
        for addr in (0, 100, 200, 300):
            cache.fill(addr)
        assert all(cache.lookup(a) for a in (0, 100, 200, 300))
        cache.fill(400)
        assert not cache.lookup(0)  # LRU victim


class TestDirtyTracking:
    def test_mark_dirty_requires_residency(self):
        cache = Cache(1024, 16)
        assert not cache.mark_dirty(0)
        cache.fill(0)
        assert cache.mark_dirty(0)

    def test_dirty_eviction_reports_victim(self):
        cache = Cache(1024, 16)  # 64 lines
        cache.fill(0, dirty=True)
        victim = cache.fill(1024)  # same line, different tag
        assert victim == 0

    def test_clean_eviction_reports_none(self):
        cache = Cache(1024, 16)
        cache.fill(0, dirty=False)
        assert cache.fill(1024) is None

    def test_refill_merges_dirty_bit(self):
        cache = Cache(1024, 16)
        cache.fill(0, dirty=False)
        assert cache.fill(0, dirty=True) is None
        assert cache.fill(1024) == 0  # now dirty -> write-back


WRITE_LOOP = """
        li   r1, 0x10000
        li   r4, 0x12000        # 2048 words: exceeds the 4 KiB cache
        li   r2, 7
loop:   sw   r2, 0(r1)
        addi r1, r1, 4
        bne  r1, r4, loop
        halt
"""


class TestWriteBackPipeline:
    def run(self, write_back):
        machine = Machine(
            source=WRITE_LOOP,
            config=PipelineConfig(write_back=write_back),
        )
        result = machine.run()
        return machine, result

    def test_write_through_streams_every_store(self):
        machine, result = self.run(write_back=False)
        # Every store appears on the memory bus.
        assert machine.last_pipeline.memory_bus.num_events >= result.stats.stores

    def test_write_back_coalesces_repeated_stores(self):
        # Rewriting a small buffer many times: write-through streams
        # every store; write-back absorbs the rewrites in the cache.
        source = """
            li   r5, 32            # passes
        pass: li   r1, 0x10000
            li   r4, 0x10100       # 64 words
            li   r2, 9
        loop: sw   r2, 0(r1)
            addi r1, r1, 4
            bne  r1, r4, loop
            addi r5, r5, -1
            bne  r5, r0, pass
            halt
        """
        through = Machine(source=source, config=PipelineConfig(write_back=False))
        through.run()
        back = Machine(source=source, config=PipelineConfig(write_back=True))
        back_result = back.run()
        assert (
            back.last_pipeline.memory_bus.num_events
            < through.last_pipeline.memory_bus.num_events / 10
        )
        assert back_result.stats.store_misses > 0

    def test_write_back_streaming_stores_cost_read_for_ownership(self):
        # The flip side: pure streaming stores generate MORE traffic
        # under write-allocate (fetch + eventual write-back per block).
        machine_wb, back = self.run(write_back=True)
        assert back.stats.store_misses == 512  # one per 16-byte block
        assert machine_wb.last_pipeline.memory_bus.num_events > 512

    def test_write_back_store_hit_is_fast(self):
        source = """
            li r1, 0x1000
            li r2, 5
            sw r2, 0(r1)
            sw r2, 0(r1)
            sw r2, 0(r1)
            halt
        """
        machine = Machine(source=source, config=PipelineConfig(write_back=True))
        result = machine.run()
        assert result.stats.store_misses == 1  # first allocates, rest hit

    def test_results_identical_across_modes(self):
        m1, _ = self.run(write_back=False)
        m2, _ = self.run(write_back=True)
        assert m1.memory.load_word(0x11FFC) == 7
        assert m2.memory.load_word(0x11FFC) == 7


class TestAddressAndResultBuses:
    def test_address_bus_carries_block_addresses(self):
        machine = Machine(source=WRITE_LOOP)
        result = machine.run()
        addresses = set(result.address_trace.values)
        assert any(0x10000 <= a < 0x12000 for a in addresses)

    def test_result_bus_sees_computed_values(self):
        machine = Machine(source="li r1, 42\nadd r2, r1, r1\nhalt")
        result = machine.run()
        values = set(result.result_trace.values)
        assert 42 in values and 84 in values

    def test_result_bus_skips_r0_writes(self):
        machine = Machine(source="add r0, r0, r0\nnop\nhalt")
        machine.run()
        assert machine.last_pipeline.result_bus.num_events == 0
