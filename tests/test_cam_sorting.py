"""Unit tests for the CAM model and the pending-bit sorter (Figure 27)."""

import numpy as np
import pytest

from repro.hardware import (
    LOW_BITS,
    Op,
    OperationCounts,
    SelectiveCAM,
    SortedFrequencyTable,
)


class TestSelectiveCAM:
    def test_probe_hit(self):
        cam = SelectiveCAM(4, 32)
        cam.write(2, 0xCAFE)
        result = cam.probe(0xCAFE)
        assert result.hit_index == 2

    def test_empty_entries_not_probed(self):
        cam = SelectiveCAM(4, 32)
        cam.write(0, 1)
        result = cam.probe(99)
        assert result.low_probes == 1
        assert result.hit_index is None

    def test_selective_precharge_filters_full_compares(self):
        cam = SelectiveCAM(3, 32)
        cam.write(0, 0x100)  # low byte 0x00
        cam.write(1, 0x2FF)  # low byte 0xFF
        cam.write(2, 0x300)  # low byte 0x00
        result = cam.probe(0x900)  # low byte 0x00: two candidates
        assert result.low_probes == 3
        assert result.full_probes == 2
        assert result.hit_index is None

    def test_write_reports_bit_flips(self):
        cam = SelectiveCAM(2, 32)
        assert cam.write(0, 0b1010) == 32  # first write: full charge
        assert cam.write(0, 0b1000) == 1  # one bit changed

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectiveCAM(0, 32)
        with pytest.raises(ValueError):
            SelectiveCAM(4, 32, low_bits=40)


class TestSortedFrequencyTable:
    def drive(self, table, hits, cycles=None):
        """Apply a hit sequence (position per cycle; None = no hit)."""
        ops = OperationCounts()
        for position in hits:
            if position is not None:
                table.hit(position, ops)
            table.step(ops)
        for _ in range(cycles or 0):
            table.step(ops)
        return ops

    def make(self, tags_and_counts):
        table = SortedFrequencyTable(len(tags_and_counts))
        ops = OperationCounts()
        for tag, count in tags_and_counts:
            table.insert_bottom(tag, count, ops)
            table.step(ops)
        return table

    def test_paper_example_figure27(self):
        # Entries with counts 9, 8, 6, 6, 6 (tags A..E); a hit on the
        # last bubbles it past its equals and increments to 7.
        table = self.make([("A", 9), ("B", 8), ("C", 6), ("D", 6), ("E", 6)])
        position_e = table.find("E")
        ops = OperationCounts()
        table.hit(position_e, ops)
        for _ in range(6):
            table.step(ops)
        table.check_invariants()
        assert table.entries[table.find("E")].counter.value == 7
        # E must now sit above the remaining count-6 entries.
        assert table.find("E") < table.find("C")
        assert table.find("E") < table.find("D")

    def test_hit_while_pending_is_lost(self):
        # The paper's caveat: a second hit before the increment lands
        # is dropped.
        table = self.make([("A", 5), ("B", 5)])
        ops = OperationCounts()
        position = table.find("B")
        table.hit(position, ops)
        table.hit(position, ops)  # lost
        for _ in range(4):
            table.step(ops)
        assert table.entries[table.find("B")].counter.value == 6

    def test_invariant_holds_under_random_traffic(self):
        rng = np.random.default_rng(1)
        table = self.make([(f"t{i}", int(c)) for i, c in enumerate(rng.integers(0, 6, 8))])
        ops = OperationCounts()
        for _ in range(500):
            position = int(rng.integers(0, 8))
            if table.entries[position] is not None and rng.random() < 0.5:
                table.hit(position, ops)
            table.step(ops)
            table.check_invariants()

    def test_divide_all_halves_counters(self):
        table = self.make([("A", 8), ("B", 3)])
        ops = OperationCounts()
        table.divide_all(ops)
        assert table.entries[table.find("A")].counter.value == 4
        assert table.entries[table.find("B")].counter.value == 1
        assert ops[Op.DIVIDE] == 1

    def test_insert_bottom_replaces_least_frequent(self):
        table = self.make([("A", 9), ("B", 1)])
        ops = OperationCounts()
        table.insert_bottom("C", 5, ops)
        table.step(ops)
        table.check_invariants()
        assert table.find("B") is None
        assert table.find("C") is not None

    def test_swap_ops_counted(self):
        table = self.make([("A", 4), ("B", 4)])
        ops = OperationCounts()
        table.hit(table.find("B"), ops)
        for _ in range(3):
            table.step(ops)
        assert ops[Op.SWAP] >= 1
        assert ops[Op.COUNT] >= 1

    def test_bottom_count(self):
        table = SortedFrequencyTable(2)
        assert table.bottom_count == -1
        ops = OperationCounts()
        table.insert_bottom("A", 7, ops)
        assert table.bottom_count == 7

    def test_hit_on_empty_position_raises(self):
        table = SortedFrequencyTable(2)
        with pytest.raises(ValueError):
            table.hit(0, OperationCounts())

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            SortedFrequencyTable(0)
