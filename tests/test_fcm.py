"""Unit tests for the finite-context-method value predictor."""

import numpy as np
import pytest

from repro.coding import FCMPredictor, FCMTranscoder
from repro.energy import normalized_energy_removed
from repro.traces import BusTrace


class TestFCMPredictor:
    def test_learns_context_to_value(self):
        pred = FCMPredictor(order=1, table_bits=6)
        # Teach the pattern 7 -> 9 (contexts 7 and 9 hash to distinct
        # rows, so the mapping survives the intermediate write).
        for v in (7, 9, 7):
            pred.update(v)
        assert pred.match(9) is not None
        assert pred.lookup(pred.match(9)) == 9

    def test_periodic_sequence_fully_predicted(self):
        pred = FCMPredictor(order=2, table_bits=6)
        period = [5, 9, 13, 7]
        for v in period * 3:
            pred.update(v)
        hits = 0
        for v in period * 2:
            if pred.match(v) is not None:
                hits += 1
            pred.update(v)
        assert hits == len(period) * 2

    def test_last_still_slot_zero(self):
        pred = FCMPredictor()
        pred.update(42)
        assert pred.match(42) == 0

    def test_lookup_matches_match(self):
        pred = FCMPredictor(order=1, table_bits=4)
        for v in (3, 8, 3, 8, 3):
            pred.update(v)
        index = pred.match(8)
        assert index is not None
        assert pred.lookup(index) == 8

    def test_lookup_empty_row_raises(self):
        pred = FCMPredictor(order=1, table_bits=4)
        with pytest.raises(ValueError):
            pred.lookup(1)

    def test_lookup_out_of_range(self):
        pred = FCMPredictor(order=1, table_bits=2)
        with pytest.raises(IndexError):
            pred.lookup(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            FCMPredictor(order=0)
        with pytest.raises(ValueError):
            FCMPredictor(table_bits=0)
        with pytest.raises(ValueError):
            FCMPredictor(table_bits=9)


class TestFCMTranscoder:
    def test_roundtrip(self, local_trace):
        coder = FCMTranscoder(2, 4, 32)
        assert np.array_equal(coder.roundtrip(local_trace).values, local_trace.values)

    def test_roundtrip_random(self, rand_trace):
        coder = FCMTranscoder(3, 5, 32)
        assert np.array_equal(coder.roundtrip(rand_trace).values, rand_trace.values)

    def test_captures_long_periodic_patterns(self):
        # Period 12 exceeds an 8-entry recency window's reach once the
        # values are distinct, but FCM keys on context.
        period = [100 + 17 * i for i in range(12)]
        trace = BusTrace.from_values(period * 80, width=32)
        saved = normalized_energy_removed(
            trace, FCMTranscoder(2, 6, 32).encode_trace(trace)
        )
        assert saved > 50.0

    def test_output_width(self):
        assert FCMTranscoder(2, 4, 32).output_width == 34
