"""The observability overhead budget: instrumented kernels stay <2%.

The instrumentation design rule is *trace-level granularity*: hooks
fire once per ``encode_trace`` / sweep cell / cache access, never per
bus cycle, and the disabled path is one boolean check returning a
shared no-op singleton.  This suite pins both halves of that promise on
the transition-kernel microbenchmark (the paper's hottest loop):

* the cost of the exact hook sequence ``encode_trace`` adds (clock
  pair, two counters, one histogram sample) is under 2% of the 1M-cycle
  transition kernel's own time — measured *directly*, because at this
  ratio (~0.1% in practice) a full enabled-vs-disabled encode
  comparison only measures scheduler noise;
* an end-to-end enabled-vs-disabled backstop with a loose bound, which
  would still catch a gross regression (e.g. a hook accidentally moved
  inside the per-cycle loop);
* the per-call telemetry volume is O(1) in trace length.

Timings use best-of-N minima, robust to one-sided scheduler noise; the
budget test carries the ``bench_smoke`` marker so perf-sensitive CI
lanes can select it.
"""

import time

import pytest

from repro import obs
from repro.coding.transition import TransitionCoder
from repro.workloads.synthetic import random_trace

#: Cycles for the overhead measurement — the acceptance-size trace.
#: The hooks cost O(1) per encode, so the ratio only tightens as the
#: kernel's share grows; smaller traces would measure clock noise.
CYCLES = 1_000_000
REPS = 7
BUDGET = 1.02  # the <2% acceptance bar


@pytest.fixture()
def clean_obs():
    previous = obs.set_enabled(True)
    obs.reset()
    yield
    obs.reset()
    obs.set_enabled(previous)


def _best_encode_time(coder, trace, enabled):
    """Minimum wall time over REPS encodes with collection toggled."""
    best = float("inf")
    previous = obs.set_enabled(enabled)
    try:
        for _ in range(REPS):
            coder.reset()
            t0 = time.perf_counter()
            coder.encode_trace(trace)
            best = min(best, time.perf_counter() - t0)
    finally:
        obs.set_enabled(previous)
    return best


def _hook_cost_per_encode(cycles):
    """Best-case seconds for the exact per-encode instrumentation.

    Mirrors :meth:`repro.coding.base.Transcoder.encode_trace`: an
    enabled-check, a ``perf_counter`` pair, two counter increments and
    one histogram sample.  Anything the instrumented path adds beyond
    the kernel itself is this sequence.
    """
    loops = 2_000
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        for _ in range(loops):
            if obs.is_enabled():
                s0 = time.perf_counter()
                seconds = time.perf_counter() - s0
                obs.inc("coder.encodes", coder="TransitionCoder")
                obs.inc("coder.encoded_cycles", cycles, coder="TransitionCoder")
                obs.observe("coder.encode_s", seconds, coder="TransitionCoder")
        best = min(best, (time.perf_counter() - t0) / loops)
    return best


@pytest.mark.bench_smoke
def test_span_overhead_under_two_percent_on_transition_kernel(clean_obs):
    trace = random_trace(CYCLES, 32, seed=7, name="overhead")
    coder = TransitionCoder(32)
    coder.encode_trace(trace)  # warm both paths (allocations, caches)
    kernel = _best_encode_time(coder, trace, enabled=False)
    hooks = _hook_cost_per_encode(len(trace))
    ratio = 1.0 + hooks / max(kernel, 1e-12)
    assert ratio < BUDGET, (
        f"instrumentation adds {100.0 * (ratio - 1.0):.3f}% to the "
        f"{kernel * 1e3:.3f} ms transition encode "
        f"(hooks={hooks * 1e6:.2f} us); budget is 2%"
    )
    # Backstop: a full enabled encode must not be grossly slower — a
    # hook inside the per-cycle loop would fail this even through noise.
    on = _best_encode_time(coder, trace, enabled=True)
    assert on < 1.5 * kernel, (
        f"enabled encode took {on * 1e3:.3f} ms vs {kernel * 1e3:.3f} ms "
        "disabled — instrumentation is no longer trace-granular"
    )


def test_telemetry_volume_is_constant_per_encode(clean_obs):
    """Hooks fire per trace, not per cycle: record counts stay O(1)."""
    coder = TransitionCoder(32)
    for cycles in (2_000, 20_000):
        obs.reset()
        coder.reset()
        coder.encode_trace(random_trace(cycles, 32, seed=3, name="volume"))
        registry = obs.get_registry()
        assert registry.counter("coder.encodes", coder="TransitionCoder") == 1
        assert registry.counter(
            "coder.encoded_cycles", coder="TransitionCoder"
        ) == cycles
        hist = registry.histogram("coder.encode_s", coder="TransitionCoder")
        assert hist["count"] == 1  # one sample regardless of trace length
