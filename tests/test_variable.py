"""Unit tests for variable-length coding (paper Section 6)."""

import numpy as np
import pytest

from repro.coding import VariableLengthTranscoder
from repro.energy import weighted_activity
from repro.traces import BusTrace
from repro.workloads import locality_trace, random_trace


class TestFlitStream:
    def test_roundtrip_locality(self, local_trace):
        coder = VariableLengthTranscoder(32, 8, 8)
        report = coder.encode_trace(local_trace)
        decoded = coder.decode_flits(report)
        assert np.array_equal(decoded.values, local_trace.values)

    def test_roundtrip_random(self, rand_trace):
        coder = VariableLengthTranscoder(32, 8, 8)
        report = coder.encode_trace(rand_trace)
        assert np.array_equal(coder.decode_flits(report).values, rand_trace.values)

    def test_repeats_take_one_flit(self):
        trace = BusTrace.from_values([7] * 100, width=32)
        report = VariableLengthTranscoder(32, 8, 8).encode_trace(trace)
        # First value: raw header + 4 payload flits; repeats: 1 each.
        assert len(report.flits) == 5 + 99
        assert report.expansion == pytest.approx(len(report.flits) / 100)

    def test_dictionary_hits_take_one_flit(self):
        values = [0xAAAA0000, 0x5555FFFF] * 50
        trace = BusTrace.from_values(values, width=32)
        report = VariableLengthTranscoder(32, 8, 8).encode_trace(trace)
        # Two raw values (5 flits each), everything else hits (1 flit).
        assert len(report.flits) == 2 * 5 + 98

    def test_random_data_expands_timing(self):
        trace = random_trace(500, seed=4)
        report = VariableLengthTranscoder(32, 8, 8).encode_trace(trace)
        # Nearly everything is raw: ~5 flits per value.
        assert report.expansion > 4.0

    def test_local_data_compresses_timing(self):
        trace = locality_trace(
            2000, repeat_fraction=0.4, reuse_fraction=0.4, stride_fraction=0.1,
            working_set=8, seed=5,
        )
        report = VariableLengthTranscoder(32, 8, 8).encode_trace(trace)
        assert report.expansion < 2.0

    def test_narrow_bus_moves_fewer_wires(self, local_trace):
        # The Section 6 claim: over a window of time, fewer bits move.
        coder = VariableLengthTranscoder(32, 8, 8)
        report = coder.encode_trace(local_trace)
        narrow = weighted_activity(report.flits, 1.0)
        wide = weighted_activity(local_trace, 1.0)
        assert narrow < wide

    def test_width_mismatch_rejected(self, local_trace):
        with pytest.raises(ValueError):
            VariableLengthTranscoder(16, 8, 8).encode_trace(local_trace)

    def test_validation(self):
        with pytest.raises(ValueError):
            VariableLengthTranscoder(32, 3, 2)
        with pytest.raises(ValueError):
            VariableLengthTranscoder(32, 8, 100)  # window too big for header

    def test_truncated_stream_rejected(self, local_trace):
        coder = VariableLengthTranscoder(32, 8, 8)
        report = coder.encode_trace(local_trace)
        truncated = type(report)(
            report.flits.head(len(report.flits) // 2),
            report.input_values,
            report.expansion,
        )
        with pytest.raises((ValueError, IndexError)):
            coder.decode_flits(truncated)
