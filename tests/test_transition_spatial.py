"""Unit tests for the transition and spatial coders."""

import numpy as np
import pytest

from repro.coding import MAX_SPATIAL_WIDTH, SpatialTranscoder, TransitionCoder
from repro.energy import count_activity, weighted_activity
from repro.traces import BusTrace


class TestTransitionCoder:
    def test_roundtrip(self, rand_trace):
        coder = TransitionCoder(32)
        assert np.array_equal(coder.roundtrip(rand_trace).values, rand_trace.values)

    def test_bits_become_toggles(self):
        coder = TransitionCoder(4)
        trace = BusTrace.from_values([0b0001, 0b0010], width=4)
        phys = coder.encode_trace(trace)
        # state accumulates XORs: 0001 then 0011
        assert list(phys) == [0b0001, 0b0011]

    def test_transitions_equal_input_weight(self):
        trace = BusTrace.from_values([0b111, 0b001, 0b000], width=3)
        phys = TransitionCoder(3).encode_trace(trace)
        counts = count_activity(phys)
        assert counts.total_transitions == 3 + 1 + 0

    def test_zero_input_is_silent(self):
        trace = BusTrace.from_values([0, 0, 0], width=8)
        phys = TransitionCoder(8).encode_trace(trace)
        assert count_activity(phys).total_transitions == 0


class TestSpatialTranscoder:
    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        trace = BusTrace.from_values(rng.integers(0, 16, 500), width=4)
        coder = SpatialTranscoder(4)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    def test_output_width_is_exponential(self):
        assert SpatialTranscoder(4).output_width == 16
        assert SpatialTranscoder(6).output_width == 64

    def test_one_transition_per_new_value(self):
        trace = BusTrace.from_values([1, 2, 3, 1], width=4)
        phys = SpatialTranscoder(4).encode_trace(trace)
        assert count_activity(phys).total_transitions == 4

    def test_repeats_are_free(self):
        trace = BusTrace.from_values([5, 5, 5, 5], width=4)
        phys = SpatialTranscoder(4).encode_trace(trace)
        assert count_activity(phys).total_transitions == 1  # only the first

    def test_rejects_wide_bus(self):
        with pytest.raises(ValueError):
            SpatialTranscoder(MAX_SPATIAL_WIDTH + 1)

    def test_beats_raw_bus_on_random_data(self):
        rng = np.random.default_rng(9)
        trace = BusTrace.from_values(rng.integers(0, 16, 2000), width=4)
        phys = SpatialTranscoder(4).encode_trace(trace)
        assert weighted_activity(phys, 1.0) < weighted_activity(trace, 1.0)

    def test_repeat_of_initial_zero_value(self):
        # Value 0 repeated from power-on must decode correctly even
        # though no wire ever toggles.
        trace = BusTrace.from_values([0, 0, 1, 0], width=4)
        coder = SpatialTranscoder(4)
        assert list(coder.roundtrip(trace)) == [0, 0, 1, 0]
