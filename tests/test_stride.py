"""Unit tests for the strided predictor (Figure 11)."""

import numpy as np
import pytest

from repro.coding import StridePredictor, StrideTranscoder
from repro.energy import count_activity, normalized_energy_removed
from repro.traces import BusTrace


class TestStridePredictor:
    def test_stride_one_arithmetic_sequence(self):
        pred = StridePredictor(1, 32)
        for v in (10, 14):
            pred.update(v)
        assert pred.match(18) == 1  # 14 + (14 - 10)

    def test_stride_two_interleaved_lanes(self):
        pred = StridePredictor(2, 32)
        for v in (100, 7, 110, 14):  # lane A: 100,110 lane B: 7,14
            pred.update(v)
        assert pred.match(120) == 2  # lane A extrapolation at stride 2

    def test_lowest_stride_wins(self):
        pred = StridePredictor(4, 32)
        for v in (5, 5, 5, 5, 5, 5, 5, 5):
            pred.update(v)
        # All strides predict 5, but LAST (slot 0) wins first.
        assert pred.match(5) == 0

    def test_prediction_wraps_modulo_word(self):
        pred = StridePredictor(1, 32)
        pred.update(0xFFFFFFFE)
        pred.update(0xFFFFFFFF)
        assert pred.match(0) == 1

    def test_lookup_inverts_match(self):
        pred = StridePredictor(3, 32)
        for v in (1, 2, 3, 4, 5, 6):
            pred.update(v)
        for slot in range(4):
            assert pred.match(pred.lookup(slot)) is not None

    def test_lookup_out_of_range(self):
        pred = StridePredictor(2, 32)
        with pytest.raises(IndexError):
            pred.lookup(3)

    def test_rejects_zero_strides(self):
        with pytest.raises(ValueError):
            StridePredictor(0, 32)


class TestStrideTranscoder:
    def test_roundtrip(self, local_trace):
        coder = StrideTranscoder(8, 32)
        assert np.array_equal(coder.roundtrip(local_trace).values, local_trace.values)

    def test_pure_stride_stream_is_nearly_free(self):
        # An arithmetic sequence costs one wire toggle per value after
        # warm-up (the stride-1 codeword).
        trace = BusTrace.from_values(range(0, 4000, 4), width=32)
        phys = StrideTranscoder(1, 32).encode_trace(trace)
        counts = count_activity(phys)
        assert counts.total_transitions < 1.5 * len(trace)

    def test_saves_on_strided_traffic(self):
        trace = BusTrace.from_values(range(0, 8000, 8), width=32)
        assert normalized_energy_removed(
            trace, StrideTranscoder(4, 32).encode_trace(trace)
        ) > 30.0

    def test_more_strides_never_hurt_much(self, gcc_register):
        few = normalized_energy_removed(
            gcc_register, StrideTranscoder(2, 32).encode_trace(gcc_register)
        )
        many = normalized_energy_removed(
            gcc_register, StrideTranscoder(16, 32).encode_trace(gcc_register)
        )
        assert many >= few - 3.0  # small codeword-weight penalty allowed
