"""Unit tests for the fault models and the faulty channel."""

import numpy as np
import pytest

from repro.faults import (
    BitFlips,
    Burst,
    Compose,
    Droop,
    FaultyChannel,
    NoFaults,
    Scripted,
    StuckAt,
)
from repro.traces import BusTrace


def _flip_cycles(model, cycles=2000, width=32, state=0):
    """Cycle -> xor mask actually applied by the model."""
    model.reset()
    flips = {}
    for t in range(cycles):
        out = model.perturb(t, state, width)
        if out != state:
            flips[t] = out ^ state
    return flips


class TestBitFlips:
    def test_deterministic_across_resets(self):
        model = BitFlips(1e-3, seed=42)
        first = _flip_cycles(model)
        second = _flip_cycles(model)
        assert first == second

    def test_seed_changes_pattern(self):
        a = _flip_cycles(BitFlips(1e-3, seed=1))
        b = _flip_cycles(BitFlips(1e-3, seed=2))
        assert a != b

    def test_rate_close_to_ber(self):
        width, cycles, ber = 32, 20_000, 1e-3
        flips = _flip_cycles(BitFlips(ber, seed=7), cycles, width)
        total_bits = sum(bin(m).count("1") for m in flips.values())
        expected = ber * cycles * width  # 640
        assert 0.5 * expected < total_bits < 1.5 * expected

    def test_zero_ber_is_clean(self):
        assert _flip_cycles(BitFlips(0.0, seed=3)) == {}

    def test_rejects_bad_ber(self):
        with pytest.raises(ValueError):
            BitFlips(1.5)
        with pytest.raises(ValueError):
            BitFlips(-0.1)


class TestStuckAt:
    def test_forces_wire_high(self):
        model = StuckAt(wire=3, value=1)
        assert model.perturb(0, 0, 8) == 0b1000
        assert model.perturb(1, 0b1000, 8) == 0b1000  # already high: no change

    def test_forces_wire_low(self):
        model = StuckAt(wire=0, value=0)
        assert model.perturb(0, 0b11, 8) == 0b10

    def test_inactive_before_start(self):
        model = StuckAt(wire=0, value=1, start=10)
        assert model.perturb(9, 0, 8) == 0
        assert model.perturb(10, 0, 8) == 1

    def test_wire_beyond_width_is_harmless(self):
        model = StuckAt(wire=40, value=1)
        assert model.perturb(0, 0, 8) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StuckAt(wire=-1, value=1)
        with pytest.raises(ValueError):
            StuckAt(wire=0, value=2)


class TestBurst:
    def test_flips_adjacent_span_for_length_cycles(self):
        flips = _flip_cycles(Burst(rate=0.01, span=3, length=2, seed=5), 5000, 32)
        assert flips, "expected at least one burst at 1% rate over 5000 cycles"
        for mask in flips.values():
            bits = [i for i in range(32) if mask >> i & 1]
            assert len(bits) == 3
            assert bits[-1] - bits[0] == 2  # contiguous span

    def test_burst_lasts_length_cycles(self):
        cycles = 4000
        model = Burst(rate=0.05, span=2, length=3, seed=9)
        flips = sorted(_flip_cycles(model, cycles, 16))
        # every burst start is followed by two more faulty cycles
        runs = []
        run = [flips[0]]
        for t in flips[1:]:
            if t == run[-1] + 1:
                run.append(t)
            else:
                runs.append(run)
                run = [t]
        runs.append(run)
        # a burst straddling the end of the observed window is truncated
        complete = [r for r in runs if r[-1] < cycles - 1]
        assert complete
        assert all(len(r) % 3 == 0 for r in complete)

    def test_deterministic(self):
        model = Burst(rate=0.02, seed=3)
        assert _flip_cycles(model) == _flip_cycles(model)


class TestDroop:
    def test_faults_confined_to_droop_window(self):
        model = Droop(period=100, duration=5, ber=0.2, seed=1)
        flips = _flip_cycles(model, 2000, 32)
        assert flips
        assert all(t % 100 < 5 for t in flips)

    def test_deterministic(self):
        model = Droop(period=50, duration=10, ber=0.1, seed=8)
        assert _flip_cycles(model) == _flip_cycles(model)

    def test_validation(self):
        with pytest.raises(ValueError):
            Droop(period=0, duration=1, ber=0.1)
        with pytest.raises(ValueError):
            Droop(period=10, duration=11, ber=0.1)


class TestScriptedAndCompose:
    def test_scripted_exact_masks(self):
        model = Scripted({3: 0b101, 7: 0b1})
        assert _flip_cycles(model, 10, 8) == {3: 0b101, 7: 0b1}

    def test_scripted_masks_clipped_to_width(self):
        model = Scripted({0: 0x1FF})
        assert model.perturb(0, 0, 8) == 0xFF

    def test_compose_applies_in_sequence(self):
        model = Compose(Scripted({0: 0b1}), StuckAt(wire=0, value=0))
        # scripted sets wire 0, stuck-at clears it again
        assert model.perturb(0, 0, 8) == 0

    def test_compose_requires_models(self):
        with pytest.raises(ValueError):
            Compose()


class TestFaultyChannel:
    def test_counts_injections(self):
        channel = FaultyChannel(Scripted({1: 0b11, 5: 0b100}))
        for t in range(8):
            channel.transmit(t, 0, 8)
        assert channel.injected_cycles == 2
        assert channel.flipped_bits == 3

    def test_default_is_clean(self):
        channel = FaultyChannel()
        assert isinstance(channel.model, NoFaults)
        assert channel.transmit(0, 0xAB, 8) == 0xAB
        assert channel.injected_cycles == 0

    def test_apply_perturbs_whole_trace(self):
        trace = BusTrace.from_values([0, 0, 0, 0], width=8, name="z")
        channel = FaultyChannel(Scripted({2: 0b10}))
        faulty = channel.apply(trace)
        assert list(faulty.values) == [0, 0, 2, 0]
        assert faulty.width == 8
        # apply() resets first, so it is repeatable
        again = channel.apply(trace)
        assert np.array_equal(faulty.values, again.values)
