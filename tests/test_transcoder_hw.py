"""Unit tests for the hardware-instrumented transcoders (Figure 34)."""

import numpy as np
import pytest

from repro.hardware import (
    HardwareContextTranscoder,
    HardwareWindowTranscoder,
    Op,
    encoder_energy_per_cycle,
    inversion_energy_per_cycle,
    table2_summaries,
)
from repro.traces import BusTrace
from repro.wires import TECH_007, TECH_013
from repro.workloads import locality_trace


class TestHardwareWindow:
    def test_same_coding_as_functional_parent(self, gcc_register):
        from repro.coding import WindowTranscoder

        hw = HardwareWindowTranscoder(TECH_013, 8, 32)
        functional = WindowTranscoder(8, 32)
        assert np.array_equal(
            hw.encode_trace(gcc_register).values,
            functional.encode_trace(gcc_register).values,
        )

    def test_roundtrip(self, gcc_register):
        hw = HardwareWindowTranscoder(TECH_013, 8, 32)
        assert np.array_equal(
            hw.roundtrip(gcc_register).values, gcc_register.values
        )

    def test_ops_counted_every_cycle(self, local_trace):
        hw = HardwareWindowTranscoder(TECH_013, 8, 32)
        hw.encode_trace(local_trace)
        assert hw.ops[Op.CYCLE] == len(local_trace)

    def test_repeats_skip_the_cam(self):
        hw = HardwareWindowTranscoder(TECH_013, 8, 32)
        trace = BusTrace.from_values([7] * 100, width=32)
        hw.encode_trace(trace)
        assert hw.ops[Op.MATCH_LOW] == 0

    def test_misses_shift(self):
        hw = HardwareWindowTranscoder(TECH_013, 8, 32)
        trace = BusTrace.from_values(range(100, 150), width=32)
        hw.encode_trace(trace)
        assert hw.ops[Op.SHIFT] == 50

    def test_energy_positive_and_reasonable(self, gcc_register):
        energy = encoder_energy_per_cycle(TECH_013, gcc_register, size=8)
        assert 0.1e-12 < energy < 5e-12

    def test_smaller_node_cheaper(self, gcc_register):
        e13 = encoder_energy_per_cycle(TECH_013, gcc_register, size=8)
        e07 = encoder_energy_per_cycle(TECH_007, gcc_register, size=8)
        assert e07 < e13

    def test_reset_clears_ops(self, local_trace):
        hw = HardwareWindowTranscoder(TECH_013, 8, 32)
        hw.encode_trace(local_trace)
        hw.reset()
        assert hw.ops.total == 0


class TestHardwareContext:
    def test_same_coding_as_functional_parent(self, gcc_register):
        from repro.coding import ContextTranscoder

        hw = HardwareContextTranscoder(TECH_013, 16, 8)
        functional = ContextTranscoder(16, 8)
        assert np.array_equal(
            hw.encode_trace(gcc_register).values,
            functional.encode_trace(gcc_register).values,
        )

    def test_roundtrip(self, gcc_register):
        hw = HardwareContextTranscoder(TECH_013, 16, 8)
        assert np.array_equal(
            hw.roundtrip(gcc_register).values, gcc_register.values
        )

    def test_counts_swaps_and_counters(self):
        hw = HardwareContextTranscoder(TECH_013, 8, 4, divide_period=128)
        trace = locality_trace(
            2000, repeat_fraction=0.1, reuse_fraction=0.6, stride_fraction=0.1,
            working_set=6, seed=4,
        )
        hw.encode_trace(trace)
        assert hw.ops[Op.COUNT] > 0
        assert hw.ops[Op.DIVIDE] == len(trace) // 128

    def test_costs_more_than_window(self, gcc_register):
        window = encoder_energy_per_cycle(TECH_013, gcc_register, size=8)
        context = encoder_energy_per_cycle(
            TECH_013, gcc_register, size=8, table_size=28
        )
        assert context > window


class TestInversionEnergy:
    def test_tracks_trace_activity(self):
        quiet = BusTrace.from_values([0] * 500, width=32)
        busy = BusTrace.from_values([0, 0xFFFFFFFF] * 250, width=32)
        assert inversion_energy_per_cycle(TECH_013, busy) > inversion_energy_per_cycle(
            TECH_013, quiet
        )

    def test_empty_trace(self):
        assert inversion_energy_per_cycle(TECH_013, BusTrace.from_values([], width=32)) == 0.0


class TestTable2:
    def test_rows_and_calibration(self, gcc_register):
        rows = table2_summaries(gcc_register)
        assert [r.technology.name for r in rows[:3]] == ["0.13um", "0.10um", "0.07um"]
        assert rows[3].name == "InvertCoder"
        # Energy decreases with technology for the window design.
        assert rows[0].op_energy_pj > rows[1].op_energy_pj > rows[2].op_energy_pj
        # Leakage increases with technology shrink (Table 2's trend).
        assert rows[0].leakage_pj < rows[1].leakage_pj < rows[2].leakage_pj
