"""Record → shard → digest-verified replay, bit- and cost-identical.

The acceptance property of the record/replay pillar: a live
``repro.cpu`` bus trace captured into a corpus shard and replayed
through the memory-mapped chunked reader must be indistinguishable —
to the values, to every coder family's encoded wire stream, and to the
energy accounting — from the in-memory trace it came from.
"""

import numpy as np
import pytest

from repro.coding import CODER_FAMILIES, build_coder
from repro.corpus import CorpusReader, CorpusWriter, record_workload
from repro.corpus.workload import parse_workload_source
from repro.energy import count_activity
from repro.traces import BusTrace, StreamingEncoder
from repro.workloads.suite import run_workload

CYCLES = 2500
WORKLOAD = "gzip"


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recording session: gzip register+memory buses into a corpus."""
    directory = str(tmp_path_factory.mktemp("recorded-corpus"))
    with CorpusWriter(directory) as writer:
        metas = record_workload(
            writer, WORKLOAD, cycles=CYCLES, buses=("register", "memory")
        )
    return directory, metas


class TestRecordedShards:
    def test_manifest_carries_provenance_and_cycles(self, recorded):
        directory, metas = recorded
        names = {meta.name for meta in metas}
        assert names == {f"{WORKLOAD}/register", f"{WORKLOAD}/memory"}
        for meta in metas:
            assert meta.source.startswith(f"record:{WORKLOAD}/")
            assert meta.source.endswith(f"@{CYCLES}")
            assert meta.width == 32

    def test_replay_values_bit_identical(self, recorded):
        directory, _metas = recorded
        reader = CorpusReader(directory)
        result = run_workload(WORKLOAD, CYCLES)
        for bus in ("register", "memory"):
            live = getattr(result, f"{bus}_trace")
            replayed = BusTrace.concat(*reader.chunks(f"{WORKLOAD}/{bus}"))
            assert np.array_equal(replayed.values, live.values)
            assert replayed.initial == live.initial

    def test_unknown_bus_rejected(self, tmp_path):
        with CorpusWriter(str(tmp_path)) as writer:
            with pytest.raises(ValueError, match="bus must be one of"):
                record_workload(writer, WORKLOAD, cycles=100, buses=("dma",))

    def test_unknown_workload_rejected(self, tmp_path):
        with CorpusWriter(str(tmp_path)) as writer:
            with pytest.raises(KeyError):
                record_workload(writer, "no-such-kernel", cycles=100)


@pytest.mark.parametrize("family", CODER_FAMILIES)
class TestReplayThroughEveryCoder:
    """The shard replay is invisible to every registered coder family."""

    def test_streamed_encode_equals_live_one_shot(self, family, recorded):
        directory, _metas = recorded
        live = run_workload(WORKLOAD, CYCLES).register_trace
        oneshot = build_coder(family, 4, 32).encode_trace(live)

        encoder = StreamingEncoder(build_coder(family, 4, 32))
        parts = [
            encoder.feed_trace(chunk)
            for chunk in CorpusReader(directory).chunks(
                f"{WORKLOAD}/register", chunk_cycles=333
            )
        ]
        streamed = np.concatenate([p.values for p in parts])
        assert np.array_equal(streamed, oneshot.values)

        # Cost-identical too: the spliced wire stream integrates to the
        # same transition counts the paper's energy model consumes.
        spliced = BusTrace(streamed, oneshot.width, initial=parts[0].initial)
        assert (
            count_activity(spliced).total_transitions
            == count_activity(oneshot).total_transitions
        )

    def test_per_chunk_activity_sums_exactly(self, family, recorded):
        # Encoded chunk activities are additive because each replayed
        # chunk's `initial` chains — no transition is lost or double
        # counted at shard-chunk boundaries.
        directory, _metas = recorded
        live = run_workload(WORKLOAD, CYCLES).register_trace
        oneshot = build_coder(family, 4, 32).encode_trace(live)
        encoder = StreamingEncoder(build_coder(family, 4, 32))
        total = 0
        for chunk in CorpusReader(directory).chunks(
            f"{WORKLOAD}/register", chunk_cycles=617
        ):
            total += count_activity(encoder.feed_trace(chunk)).total_transitions
        assert total == count_activity(oneshot).total_transitions


class TestWorkloadSourceReplay:
    def test_corpus_spec_serves_recorded_streams(self, recorded):
        directory, _metas = recorded
        source = parse_workload_source(f"corpus:{directory}")
        assert source.size == 2
        names = {source.for_stream(i).name for i in range(2)}
        assert names == {f"{WORKLOAD}/register", f"{WORKLOAD}/memory"}
        live = run_workload(WORKLOAD, CYCLES).register_trace
        member = parse_workload_source(
            f"corpus:{directory}#{WORKLOAD}/register"
        ).for_stream(0)
        assert np.array_equal(member.trace().values, live.values)
