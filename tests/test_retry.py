"""Unit tests for the unified retry discipline (no sockets, no sleeps).

``RetryPolicy``/``RetryState`` take explicit ``now`` arguments, so the
deadline-budget arithmetic is tested against a fake clock; the
``CircuitBreaker`` likewise.  The wall-clock paths are exercised end to
end by the chaos tests.
"""

import pytest

from repro.serve.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RestartBackoff,
    RetryBudgetExceeded,
    RetryPolicy,
)


class TestPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)

    def test_policy_is_immutable_and_shareable(self):
        policy = RetryPolicy()
        with pytest.raises(AttributeError):
            policy.attempts = 9


class TestBackoffShape:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(
            attempts=5, base_backoff_s=0.1, multiplier=2.0, max_backoff_s=0.5, jitter=0.0
        )
        state = policy.start(now=0.0)
        sleeps = []
        for _ in range(4):
            state.begin_attempt()
            sleeps.append(state.next_backoff(now=0.0))
        assert sleeps == pytest.approx([0.1, 0.2, 0.4, 0.5])  # capped

    def test_jitter_stays_in_band_and_is_deterministic(self):
        policy = RetryPolicy(attempts=8, base_backoff_s=0.1, jitter=0.5, seed=3)
        a, b = policy.start(key=7, now=0.0), policy.start(key=7, now=0.0)
        for _ in range(6):
            a.begin_attempt()
            b.begin_attempt()
            sa, sb = a.next_backoff(now=0.0), b.next_backoff(now=0.0)
            assert sa == sb  # same (seed, key) => same jitter sequence
            nominal = min(policy.max_backoff_s, 0.1 * 2.0 ** (a.attempt - 1))
            assert nominal * 0.5 <= sa <= nominal

    def test_different_keys_decorrelate(self):
        policy = RetryPolicy(attempts=8, base_backoff_s=0.1, jitter=0.5, seed=3)
        a, b = policy.start(key=1, now=0.0), policy.start(key=2, now=0.0)
        sleeps_a, sleeps_b = [], []
        for _ in range(6):
            a.begin_attempt()
            b.begin_attempt()
            sleeps_a.append(a.next_backoff(now=0.0))
            sleeps_b.append(b.next_backoff(now=0.0))
        assert sleeps_a != sleeps_b


class TestDeadlineBudget:
    def test_attempt_timeout_is_clipped_to_remaining_budget(self):
        policy = RetryPolicy(attempts=5, attempt_timeout_s=2.0, deadline_s=3.0)
        state = policy.start(now=100.0)
        assert state.attempt_timeout(now=100.0) == pytest.approx(2.0)
        assert state.attempt_timeout(now=102.0) == pytest.approx(1.0)

    def test_spent_budget_raises_instead_of_attempting(self):
        policy = RetryPolicy(attempts=5, deadline_s=1.0)
        state = policy.start(now=0.0)
        with pytest.raises(RetryBudgetExceeded):
            state.attempt_timeout(now=1.5)

    def test_backoff_is_clipped_to_remaining_budget(self):
        policy = RetryPolicy(
            attempts=5, base_backoff_s=10.0, jitter=0.0, max_backoff_s=10.0, deadline_s=1.0
        )
        state = policy.start(now=0.0)
        state.begin_attempt()
        assert state.next_backoff(now=0.75) == pytest.approx(0.25)
        with pytest.raises(RetryBudgetExceeded):
            state.next_backoff(now=1.25)

    def test_no_deadline_means_unbounded(self):
        state = RetryPolicy(attempts=2).start(now=0.0)
        assert state.remaining(now=1e9) is None
        assert state.attempt_timeout(now=1e9) is None

    def test_attempt_counting(self):
        state = RetryPolicy(attempts=2).start(now=0.0)
        assert state.more_attempts()
        assert state.begin_attempt() == 1
        assert state.more_attempts()
        assert state.begin_attempt() == 2
        assert not state.more_attempts()


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0)
        for _ in range(2):
            breaker.record_failure(now=0.0)
        breaker.before_attempt(now=1.0)  # still closed
        breaker.record_failure(now=1.0)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt(now=2.0)

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=0.0)
        assert breaker.state == "closed"  # runs must be *consecutive*

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == "open"
        breaker.before_attempt(now=6.0)  # probe allowed through
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_reopens_on_failure(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0)
        breaker.record_failure(now=0.0)
        breaker.before_attempt(now=6.0)
        breaker.record_failure(now=6.0)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt(now=7.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_reopen_after_half_open_failure_restarts_the_full_cooldown(self):
        """A failed probe must buy the server a *full* fresh cooldown,
        measured from the probe failure — not the original opening."""
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0)
        breaker.record_failure(now=0.0)
        breaker.before_attempt(now=6.0)  # half-open probe
        breaker.record_failure(now=6.0)  # probe failed -> re-open at t=6
        # 5s after the ORIGINAL open would be t=5 (already past); 5s
        # after the re-open is t=11.  Anything before that fails fast.
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt(now=10.9)
        breaker.before_attempt(now=11.0)  # next probe allowed
        assert breaker.state == "half-open"

    def test_half_open_allows_exactly_one_probe_outcome_cycle(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=1.0)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.0)
        assert breaker.state == "open"
        breaker.before_attempt(now=2.0)
        assert breaker.state == "half-open"
        # A single failure re-opens immediately in half-open — the
        # closed-state threshold does not apply to probes.
        breaker.record_failure(now=2.0)
        assert breaker.state == "open"


class TestRestartBackoff:
    def test_delays_grow_exponentially_with_the_streak(self):
        backoff = RestartBackoff(
            base_s=0.1, multiplier=2.0, max_s=10.0, jitter=0.0,
            flap_threshold=100,
        )
        delays = [backoff.next_delay(now=float(i)) for i in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_delay_is_capped(self):
        backoff = RestartBackoff(
            base_s=1.0, multiplier=10.0, max_s=3.0, jitter=0.0,
            flap_threshold=100,
        )
        backoff.next_delay(now=0.0)
        assert backoff.next_delay(now=1.0) == pytest.approx(3.0)

    def test_jitter_is_seeded_and_in_band(self):
        a = RestartBackoff(base_s=1.0, jitter=0.5, seed=7, flap_threshold=100)
        b = RestartBackoff(base_s=1.0, jitter=0.5, seed=7, flap_threshold=100)
        da, db = a.next_delay(now=0.0), b.next_delay(now=0.0)
        assert da == db  # same seed, same schedule
        assert 0.5 <= da <= 1.0

    def test_stability_resets_the_streak(self):
        backoff = RestartBackoff(
            base_s=0.1, multiplier=2.0, max_s=10.0, jitter=0.0,
            stable_after_s=5.0, flap_threshold=100,
        )
        backoff.next_delay(now=0.0)
        backoff.next_delay(now=1.0)
        backoff.note_stable(uptime_s=2.0, now=2.0)  # not stable enough
        assert backoff.next_delay(now=3.0) == pytest.approx(0.4)
        backoff.note_stable(uptime_s=6.0, now=9.0)  # genuinely stable
        assert backoff.next_delay(now=10.0) == pytest.approx(0.1)

    def test_flap_detector_holds_the_worker_down(self):
        backoff = RestartBackoff(
            base_s=0.01, multiplier=1.0, max_s=0.01, jitter=0.0,
            flap_window_s=30.0, flap_threshold=3, hold_down_s=5.0,
        )
        assert backoff.next_delay(now=0.0) == pytest.approx(0.01)
        assert backoff.next_delay(now=1.0) == pytest.approx(0.01)
        # Third restart inside the window: flapping -> hold-down floor.
        assert backoff.next_delay(now=2.0) == pytest.approx(5.0)
        assert backoff.flapping

    def test_flap_window_expires(self):
        backoff = RestartBackoff(
            base_s=0.01, multiplier=1.0, max_s=0.01, jitter=0.0,
            flap_window_s=10.0, flap_threshold=2, hold_down_s=5.0,
        )
        backoff.next_delay(now=0.0)
        # Second restart far outside the window: not flapping.
        assert backoff.next_delay(now=100.0) == pytest.approx(0.01)
        assert not backoff.flapping

    def test_lifetime_restarts_counter(self):
        backoff = RestartBackoff(jitter=0.0, flap_threshold=100)
        for i in range(3):
            backoff.next_delay(now=float(i))
        assert backoff.restarts == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RestartBackoff(base_s=-1.0)
        with pytest.raises(ValueError):
            RestartBackoff(jitter=1.5)
        with pytest.raises(ValueError):
            RestartBackoff(flap_threshold=0)
