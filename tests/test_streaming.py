"""Chunked streaming encode/decode: equivalence with the one-shot path.

The contract under test (the tentpole invariant of
``repro.traces.streaming``): resetting a coder and feeding a trace
through ``encode_chunk`` in *any* chunking produces exactly the
one-shot ``encode_trace`` result — bit-identical states, identical
activity cost, identical trace name — for every registered coder
family, including the stateful dictionary coders (window, FCM, stride,
LAST, inversion) whose FSM state crosses chunk boundaries.
"""

import numpy as np
import pytest

from repro.coding import CODER_FAMILIES, TransitionCoder, WindowTranscoder, build_coder
from repro.energy import count_activity
from repro.traces import (
    BusTrace,
    StreamCheckpoint,
    StreamingDecoder,
    StreamingEncoder,
    chunk_spans,
    decode_trace_chunked,
    encode_trace_chunked,
    iter_chunks,
)

WIDTH = 16

#: Chunk sizes straddling the interesting boundaries: single-cycle,
#: prime-sized, exact divisor of the trace length, and longer-than-trace.
CHUNKINGS = [1, 7, 64, 250, 1000, 5000]


def make_trace(cycles=1000, seed=3):
    """A locality-heavy trace so dictionary coders actually hit."""
    rng = np.random.default_rng(seed)
    pool = rng.integers(0, 1 << WIDTH, size=12, dtype=np.uint64)
    picks = rng.integers(0, len(pool), size=cycles)
    values = pool[picks]
    # Sprinkle in strided and repeated runs for stride/LAST coders.
    values[100:200] = (np.arange(100, dtype=np.uint64) * 4 + 32) & 0xFFFF
    values[300:340] = values[299]
    return BusTrace(values, WIDTH, name="streamtest")


@pytest.fixture(scope="module")
def trace():
    return make_trace()


class TestChunkSpans:
    def test_covers_range_exactly(self):
        spans = list(chunk_spans(10, 3))
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_zero_cycles_yields_nothing(self):
        assert list(chunk_spans(0, 4)) == []

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(ValueError):
            list(chunk_spans(10, 0))
        with pytest.raises(ValueError):
            list(chunk_spans(10, -2))


class TestIterChunks:
    def test_concat_round_trips(self, trace):
        chunks = list(iter_chunks(trace, 64))
        rebuilt = BusTrace.concat(*chunks)
        assert np.array_equal(rebuilt.values, trace.values)
        assert rebuilt.initial == trace.initial

    def test_chunk_initials_chain(self, trace):
        chunks = list(iter_chunks(trace, 100))
        assert chunks[0].initial == trace.initial
        for prev, nxt in zip(chunks, chunks[1:]):
            assert nxt.initial == int(prev.values[-1])

    def test_activity_sums_exactly(self, trace):
        whole = count_activity(trace)
        parts = [count_activity(c) for c in iter_chunks(trace, 77)]
        total = parts[0]
        for p in parts[1:]:
            total = total + p
        assert total.total_transitions == whole.total_transitions
        assert total.total_coupling == whole.total_coupling


class TestChunkedEqualsOneShot:
    @pytest.mark.parametrize("family", CODER_FAMILIES)
    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_encode_bit_identical(self, trace, family, chunk):
        oneshot = build_coder(family, 8, WIDTH).encode_trace(trace)
        chunked = encode_trace_chunked(build_coder(family, 8, WIDTH), trace, chunk)
        assert np.array_equal(chunked.values, oneshot.values)
        assert chunked.width == oneshot.width
        assert chunked.initial == oneshot.initial
        assert chunked.name == oneshot.name

    @pytest.mark.parametrize("family", CODER_FAMILIES)
    @pytest.mark.parametrize("chunk", [1, 64, 250])
    def test_cost_identical(self, trace, family, chunk):
        oneshot = build_coder(family, 8, WIDTH).encode_trace(trace)
        chunked = encode_trace_chunked(build_coder(family, 8, WIDTH), trace, chunk)
        a, b = count_activity(oneshot), count_activity(chunked)
        assert a.total_transitions == b.total_transitions
        assert a.total_coupling == b.total_coupling

    @pytest.mark.parametrize("family", CODER_FAMILIES)
    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_decode_round_trips(self, trace, family, chunk):
        coder = build_coder(family, 8, WIDTH)
        phys = coder.encode_trace(trace)
        decoded = decode_trace_chunked(build_coder(family, 8, WIDTH), phys, chunk)
        assert np.array_equal(decoded.values, trace.values)
        assert decoded.name == coder.decode_trace(phys).name

    @pytest.mark.parametrize("family", CODER_FAMILIES)
    def test_irregular_chunking(self, trace, family):
        """Hand-fed irregular chunk sizes, not just fixed strides."""
        coder = build_coder(family, 8, WIDTH)
        oneshot = build_coder(family, 8, WIDTH).encode_trace(trace).values
        stream = StreamingEncoder(coder)
        parts, pos = [], 0
        for size in [1, 2, 3, 499, 5, 490]:
            parts.append(stream.feed(trace.values[pos : pos + size]))
            pos += size
        parts.append(stream.feed(trace.values[pos:]))
        assert np.array_equal(np.concatenate(parts), oneshot)

    def test_empty_trace(self):
        empty = BusTrace.from_values([], width=WIDTH, name="empty")
        coder = WindowTranscoder(8, WIDTH)
        out = encode_trace_chunked(coder, empty, 16)
        assert len(out) == 0
        assert out.width == coder.output_width
        back = decode_trace_chunked(WindowTranscoder(8, WIDTH), out, 16)
        assert len(back) == 0


class TestCheckpointRestore:
    def test_restore_replays_identically(self, trace):
        coder = build_coder("window", 8, WIDTH)
        stream = StreamingEncoder(coder)
        stream.feed(trace.values[:400])
        ckpt = stream.checkpoint()
        assert isinstance(ckpt, StreamCheckpoint)
        assert ckpt.cycles == 400
        first = stream.feed(trace.values[400:700])
        stream.restore(ckpt)
        assert stream.cycles == 400
        again = stream.feed(trace.values[400:700])
        assert np.array_equal(first, again)

    def test_checkpoint_isolated_from_later_mutation(self, trace):
        """The snapshot must be a deep copy, not a live alias."""
        coder = build_coder("fcm", 8, WIDTH)
        stream = StreamingEncoder(coder)
        stream.feed(trace.values[:300])
        ckpt = stream.checkpoint()
        stream.feed(trace.values[300:900])  # mutate the FSM a lot
        stream.restore(ckpt)
        replay = stream.feed(trace.values[300:900])
        fresh = StreamingEncoder(build_coder("fcm", 8, WIDTH))
        fresh.feed(trace.values[:300])
        assert np.array_equal(replay, fresh.feed(trace.values[300:900]))

    def test_restore_rejects_mismatched_coder_type(self, trace):
        enc = StreamingEncoder(build_coder("window", 8, WIDTH))
        enc.feed(trace.values[:10])
        other = StreamingEncoder(build_coder("fcm", 8, WIDTH))
        with pytest.raises(ValueError):
            other.restore(enc.checkpoint())

    def test_decoder_checkpoint_round_trip(self, trace):
        coder = build_coder("stride", 8, WIDTH)
        phys = coder.encode_trace(trace)
        dec = StreamingDecoder(build_coder("stride", 8, WIDTH))
        dec.feed(phys.values[:500])
        ckpt = dec.checkpoint()
        first = dec.feed(phys.values[500:800])
        dec.restore(ckpt)
        assert np.array_equal(first, dec.feed(phys.values[500:800]))

    def test_feed_trace_preserves_activity_additivity(self, trace):
        coder = build_coder("window", 8, WIDTH)
        oneshot = build_coder("window", 8, WIDTH).encode_trace(trace)
        stream = StreamingEncoder(coder)
        parts = [stream.feed_trace(c) for c in iter_chunks(trace, 123)]
        whole = count_activity(oneshot)
        total = count_activity(parts[0])
        for p in parts[1:]:
            total = total + count_activity(p)
        assert total.total_transitions == whole.total_transitions
        assert total.total_coupling == whole.total_coupling


class TestTransitionChunkKernels:
    """The transition coder has dedicated vectorized chunk kernels."""

    def test_encode_chunks_match_scalar_per_cycle(self, trace):
        fast = TransitionCoder(WIDTH)
        slow = TransitionCoder(WIDTH)
        slow_out = [slow.encode_value(int(v)) for v in trace.values]
        fast_parts = []
        for chunk in iter_chunks(trace, 97):
            fast_parts.append(fast.encode_chunk(chunk.values))
        assert np.array_equal(np.concatenate(fast_parts), np.array(slow_out, dtype=np.uint64))

    def test_decode_chunks_match_scalar_per_cycle(self, trace):
        enc = TransitionCoder(WIDTH)
        states = enc.encode_chunk(trace.values)
        fast = TransitionCoder(WIDTH)
        slow = TransitionCoder(WIDTH)
        slow_out = [slow.decode_state(int(s)) for s in states]
        fast_parts = []
        for start, stop in chunk_spans(len(states), 61):
            fast_parts.append(fast.decode_chunk(states[start:stop]))
        assert np.array_equal(np.concatenate(fast_parts), np.array(slow_out, dtype=np.uint64))

    def test_empty_chunk_is_identity(self):
        coder = TransitionCoder(WIDTH)
        coder.encode_chunk(np.array([5, 6], dtype=np.uint64))
        before = coder.save_state()
        out = coder.encode_chunk(np.empty(0, dtype=np.uint64))
        assert len(out) == 0
        assert coder.save_state() == before

    def test_chunk_masks_inputs_to_width(self):
        coder = TransitionCoder(8)
        out = coder.encode_chunk([0x1FF])
        ref = TransitionCoder(8)
        assert int(out[0]) == ref.encode_value(0xFF)
