"""The run ledger: append-only journal, torn-tail reads, replay folding.

Contracts under test:

* every ``append`` is flushed as one line immediately (the SIGKILL
  guarantee: the page cache survives the process);
* reading tolerates exactly one torn *tail* line and refuses interior
  corruption with a ``path:lineno`` error;
* ``replay_ledger`` folds events into latest-state: ``done`` supersedes
  an earlier final ``failed`` and vice versa, non-final failures only
  bump attempt bookkeeping;
* the canonical-JSON content digests are byte-stable (cell identity and
  artifact digests both hang off them).
"""

import json
import os

import pytest

from repro.runs import (
    LEDGER_FILENAME,
    RunLedger,
    canonical_json,
    content_digest,
    file_digest,
    read_ledger,
    replay_ledger,
)


@pytest.fixture
def ledger_path(tmp_path):
    return str(tmp_path / "run" / LEDGER_FILENAME)


class TestWriter:
    def test_append_is_visible_before_close(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            ledger.append("run_open", run_id="r1")
            ledger.append("started", key="k", index=0, attempt=1)
            # Line-buffered: both events readable while the handle is open.
            events = read_ledger(ledger_path)
        assert [e["event"] for e in events] == ["run_open", "started"]
        assert events[1]["key"] == "k"
        assert all("ts" in e for e in events)

    def test_append_only_across_reopen(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            ledger.append("run_open", run_id="r1")
        with RunLedger(ledger_path) as ledger:
            ledger.append("resumed", skipped=3)
        events = read_ledger(ledger_path)
        assert [e["event"] for e in events] == ["run_open", "resumed"]


class TestReader:
    def test_torn_tail_is_dropped(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            ledger.append("run_open", run_id="r1")
            ledger.append("done", key="k")
        with open(ledger_path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "key": "trunc')  # kill mid-write
        events = read_ledger(ledger_path)
        assert [e["event"] for e in events] == ["run_open", "done"]

    def test_interior_corruption_names_the_line(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            ledger.append("run_open", run_id="r1")
        with open(ledger_path, "a", encoding="utf-8") as handle:
            handle.write("!!! not json !!!\n")
            handle.write(json.dumps({"event": "done", "key": "k"}) + "\n")
        with pytest.raises(ValueError, match=rf"{os.path.basename(ledger_path)}:2"):
            read_ledger(ledger_path)

    def test_blank_lines_are_skipped(self, ledger_path):
        with RunLedger(ledger_path) as ledger:
            ledger.append("run_open", run_id="r1")
        with open(ledger_path, "a", encoding="utf-8") as handle:
            handle.write("\n")
        assert [e["event"] for e in read_ledger(ledger_path)] == ["run_open"]


class TestReplay:
    def test_done_supersedes_final_failure(self):
        state = replay_ledger(
            [
                {"event": "run_open", "run_id": "r"},
                {"event": "failed", "key": "k", "final": True, "klass": "x"},
                {"event": "done", "key": "k", "sha256": "abc"},
            ]
        )
        assert "k" in state.done and "k" not in state.failed
        assert state.done["k"]["sha256"] == "abc"

    def test_final_failure_supersedes_done(self):
        state = replay_ledger(
            [
                {"event": "done", "key": "k", "sha256": "abc"},
                {"event": "failed", "key": "k", "final": True, "klass": "x"},
            ]
        )
        assert "k" in state.failed and "k" not in state.done

    def test_non_final_failure_only_counts_attempts(self):
        state = replay_ledger(
            [
                {"event": "started", "key": "k", "attempt": 1},
                {"event": "failed", "key": "k", "final": False, "klass": "transient"},
                {"event": "started", "key": "k", "attempt": 2},
            ]
        )
        assert not state.failed and not state.done
        assert state.attempts["k"] == 2

    def test_header_first_wins_and_close_recorded(self):
        state = replay_ledger(
            [
                {"event": "run_open", "run_id": "first"},
                {"event": "run_open", "run_id": "dupe"},
                {"event": "resumed", "skipped": 2},
                {"event": "quarantined", "key": "k", "reason": "artifact-missing"},
                {"event": "run_close", "status": "complete"},
            ]
        )
        assert state.header["run_id"] == "first"
        assert state.resumes == 1
        assert state.quarantines[0]["reason"] == "artifact-missing"
        assert state.closed["status"] == "complete"


class TestDigests:
    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == canonical_json(
            {"a": [2, 3], "b": 1}
        )
        assert content_digest({"b": 1, "a": 2}) == content_digest({"a": 2, "b": 1})

    def test_content_digest_is_pinned(self):
        # Byte-stability across sessions is the whole point: a resumed
        # run must compute the same cell keys as the killed one.
        assert (
            content_digest({"x": 1})
            == "5041bf1f713df204784353e82f6a4a535931cb64f1f4b4a5aeaffcb720918b22"
        )

    def test_file_digest_matches_content(self, tmp_path):
        path = tmp_path / "artifact.json"
        payload = canonical_json({"v": 1.5}) + "\n"
        path.write_text(payload, encoding="utf-8")
        import hashlib

        assert file_digest(str(path)) == hashlib.sha256(
            payload.encode("utf-8")
        ).hexdigest()
