"""Unit tests for the analysis layer: budgets, crossovers, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    CrossoverAnalysis,
    budget_curve,
    crossover_table,
    energy_budget,
    format_series,
    format_table,
    headline_transition_savings,
    median_crossover,
    savings_for,
    savings_sweep,
)
from repro.coding import WindowTranscoder
from repro.traces import BusTrace
from repro.wires import TECH_007, TECH_013
from repro.workloads import locality_trace

FAST = 4000


@pytest.fixture(scope="module")
def hot_trace():
    return locality_trace(
        3000, repeat_fraction=0.2, reuse_fraction=0.55, stride_fraction=0.1,
        working_set=8, seed=13,
    )


class TestEnergyBudget:
    def test_positive_for_compressible_traffic(self, hot_trace):
        budget = energy_budget(hot_trace, TECH_013, 10.0, entries=8)
        assert budget > 0

    def test_grows_with_wire_length(self, hot_trace):
        short = energy_budget(hot_trace, TECH_013, 5.0, entries=8)
        long = energy_budget(hot_trace, TECH_013, 15.0, entries=8)
        assert long > short

    def test_context_design_accepted(self, hot_trace):
        budget = energy_budget(hot_trace, TECH_013, 10.0, entries=24, design="context")
        assert np.isfinite(budget)

    def test_rejects_unknown_design(self, hot_trace):
        with pytest.raises(ValueError):
            energy_budget(hot_trace, TECH_013, 10.0, 8, design="magic")

    def test_empty_trace(self):
        assert energy_budget(BusTrace.from_values([], width=32), TECH_013, 10, 8) == 0.0

    def test_curve_matches_pointwise(self, hot_trace):
        curve = budget_curve(hot_trace, TECH_013, 10.0, [4, 8])
        assert curve[1] == pytest.approx(
            energy_budget(hot_trace, TECH_013, 10.0, 8)
        )


class TestCrossoverAnalysis:
    def test_ratio_decreases_with_length(self, hot_trace):
        analysis = CrossoverAnalysis(hot_trace, TECH_013, 8)
        lengths = [2.0, 10.0, 30.0]
        ratios = analysis.curve(lengths)
        assert ratios[0] > ratios[1] > ratios[2]

    def test_crossover_has_ratio_one(self, hot_trace):
        analysis = CrossoverAnalysis(hot_trace, TECH_013, 8)
        crossover = analysis.crossover_length()
        assert crossover is not None
        assert analysis.ratio(crossover) == pytest.approx(1.0, abs=0.02)

    def test_incompressible_traffic_never_crosses(self):
        # A pure counting trace: LAST never hits, the window never hits.
        trace = BusTrace.from_values(
            np.random.default_rng(0).integers(0, 2**32, 2000), width=32
        )
        analysis = CrossoverAnalysis(trace, TECH_013, 8)
        crossover = analysis.crossover_length(hi=50.0)
        # Random data gives the window coder nothing; allow either no
        # crossover or a very long one.
        assert crossover is None or crossover > 20.0

    def test_median_crossover_uses_never_value(self, hot_trace):
        good = CrossoverAnalysis(hot_trace, TECH_013, 8)
        median = median_crossover([good], never_value=99.0)
        assert median == pytest.approx(good.crossover_length(), rel=0.01)

    def test_median_requires_input(self):
        with pytest.raises(ValueError):
            median_crossover([])

    def test_transcoder_energy_scales_with_cycles(self, hot_trace):
        analysis = CrossoverAnalysis(hot_trace, TECH_013, 8)
        assert analysis.transcoder_energy == pytest.approx(
            analysis._transcoder_per_cycle * len(hot_trace)
        )


class TestSweeps:
    def test_savings_for(self, hot_trace):
        saved = savings_for(hot_trace, WindowTranscoder(8, 32))
        assert saved > 10.0

    def test_savings_sweep_shape(self):
        curves = savings_sweep(
            "register",
            lambda size: WindowTranscoder(size, 32),
            [2, 8],
            names=("gcc", "swim"),
            cycles=FAST,
        )
        assert set(curves) == {"gcc", "swim"}
        assert all(len(v) == 2 for v in curves.values())

    def test_headline_savings_positive(self):
        value = headline_transition_savings(
            lambda: WindowTranscoder(8, 32),
            names=("m88ksim", "ijpeg", "compress"),
            cycles=FAST,
        )
        assert value > 10.0

    def test_crossover_table_cells(self):
        cells = crossover_table([TECH_007], entry_sizes=(8,), cycles=FAST)
        suites = {c.suite for c in cells}
        assert suites == {"SPECint", "SPECfp", "ALL"}
        assert all(c.median_mm > 0 for c in cells)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "x"], [["a", 1.5], ["bb", 20]], precision=1)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("x")
        assert "1.5" in lines[2]

    def test_format_table_title_and_none(self):
        text = format_table(["v"], [[None]], title="T")
        assert text.startswith("T\n")
        assert "-" in text.splitlines()[-1]

    def test_format_series(self):
        text = format_series("L", [1, 2], {"a": [0.5, 0.6], "b": [1, 2]})
        assert "L" in text.splitlines()[0]
        assert "0.60" in text
