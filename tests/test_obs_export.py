"""Exporters: JSONL round-trip and the Chrome ``trace_event`` schema.

Pins the on-disk contracts: every trace event carries exactly the keys
``name, ph, ts, dur, pid, tid, cat, args`` with ``ph == "X"`` and
integer microsecond timestamps rebased to the earliest span; the top
level is ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` — the
object form both ``chrome://tracing`` and Perfetto load as-is.
"""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    metrics_jsonl_records,
    read_jsonl,
    span_jsonl_records,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecord, SpanTracer

#: The exact per-event key set the trace_event exporter emits.
EVENT_KEYS = {"name", "ph", "ts", "dur", "pid", "tid", "cat", "args"}


def _record(name, ts, dur, pid=100, tid=1, span_id=1, parent_id=0, depth=0, **attrs):
    return SpanRecord(
        name=name,
        ts=ts,
        dur=dur,
        pid=pid,
        tid=tid,
        span_id=span_id,
        parent_id=parent_id,
        depth=depth,
        attrs=attrs,
    )


# -- Chrome trace_event ---------------------------------------------------


def test_chrome_trace_top_level_shape():
    trace = chrome_trace([_record("table3.cell", 10.0, 0.5)])
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    assert trace["displayTimeUnit"] == "ms"
    assert isinstance(trace["traceEvents"], list)


def test_chrome_trace_event_schema():
    trace = chrome_trace(
        [_record("table3.cell", 10.0, 0.5, workload="gcc", entries=8)]
    )
    (event,) = trace["traceEvents"]
    assert set(event) == EVENT_KEYS
    assert event["ph"] == "X"
    assert event["name"] == "table3.cell"
    assert event["cat"] == "table3"  # prefix before the first dot
    assert isinstance(event["ts"], int) and isinstance(event["dur"], int)
    assert event["args"]["workload"] == "gcc"
    assert event["args"]["depth"] == 0


def test_chrome_trace_rebases_to_earliest_span():
    trace = chrome_trace(
        [
            _record("late", 12.0, 0.25, span_id=2),
            _record("early", 10.0, 1.0, span_id=1),
        ]
    )
    events = {e["name"]: e for e in trace["traceEvents"]}
    assert events["early"]["ts"] == 0
    assert events["late"]["ts"] == 2_000_000  # 2 s later, in microseconds
    assert events["early"]["dur"] == 1_000_000


def test_chrome_trace_preserves_pid_tid_rows():
    trace = chrome_trace(
        [
            _record("parent", 0.0, 1.0, pid=100),
            _record("worker", 0.5, 0.2, pid=200, tid=7),
        ]
    )
    pids = {e["pid"] for e in trace["traceEvents"]}
    assert pids == {100, 200}  # one Perfetto row per worker process


def test_chrome_trace_events_sorted_and_empty_ok():
    assert chrome_trace([])["traceEvents"] == []
    trace = chrome_trace(
        [
            _record("b", 2.0, 0.1, pid=2),
            _record("a", 1.0, 0.1, pid=1),
            _record("c", 0.5, 0.1, pid=1),
        ]
    )
    order = [(e["pid"], e["ts"]) for e in trace["traceEvents"]]
    assert order == sorted(order)


def test_write_chrome_trace_is_loadable_json(tmp_path):
    tracer = SpanTracer()
    with tracer.span("cli.table3", {"command": "table3"}):
        with tracer.span("table3.cell", {"workload": "gcc"}):
            pass
    path = write_chrome_trace(tracer.records(), str(tmp_path / "deep" / "t.json"))
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert len(loaded["traceEvents"]) == 2
    for event in loaded["traceEvents"]:
        assert set(event) == EVENT_KEYS


# -- JSONL ----------------------------------------------------------------


def test_span_jsonl_records_are_self_describing():
    (record,) = span_jsonl_records([_record("x.y", 1.0, 0.5, workload="gcc")])
    assert record["type"] == "span"
    assert record["name"] == "x.y"
    assert record["attrs"] == {"workload": "gcc"}


def test_jsonl_round_trip(tmp_path):
    registry = MetricsRegistry()
    registry.inc("trace_cache.hits", 3, layer="disk")
    registry.observe("cell_s", 0.25)
    path = write_jsonl(metrics_jsonl_records(registry), str(tmp_path / "m.jsonl"))
    records = read_jsonl(path)
    by_name = {(r["type"], r["name"]): r for r in records}
    assert by_name[("counter", "trace_cache.hits")]["value"] == 3
    assert by_name[("histogram", "cell_s")]["count"] == 1


def test_read_jsonl_skips_blanks_and_names_bad_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ok": 1}\n\n{"ok": 2}\nnot json\n', encoding="utf-8")
    good = tmp_path / "good.jsonl"
    good.write_text('{"ok": 1}\n\n{"ok": 2}\n', encoding="utf-8")
    assert read_jsonl(str(good)) == [{"ok": 1}, {"ok": 2}]
    with pytest.raises(ValueError, match=r"bad\.jsonl:4"):
        read_jsonl(str(path))
