"""Unit tests for the connection-level fault models (pure FSMs).

No sockets here: each model maps ``(seed, frame index)`` to a
:class:`FrameDecision`, and these tests pin the properties the chaos
soak's determinism argument rests on — same seed, same verdicts; frame
content never influences the decision sequence; composition merges
verdicts without losing any.
"""

import pytest

from repro.faults import (
    ComposeTransport,
    ConnectionDrop,
    CorruptFrame,
    FrameDecision,
    NoTransportFaults,
    PartialWrite,
    ReorderFrames,
    ScriptedTransport,
    StallFrames,
)

FRAME = b'{"v": 2, "id": 1, "op": "hello"}\n'


def verdicts(fault, frames=200, frame=FRAME):
    fault.reset()
    return [fault.decide(i, frame) for i in range(frames)]


class TestFrameDecision:
    def test_default_is_benign(self):
        assert FrameDecision().benign
        assert not FrameDecision(cut_after=True).benign
        assert not FrameDecision(stall_s=0.01).benign

    def test_merge_composes_fields(self):
        a = FrameDecision(stall_s=0.01, corrupt_at=(1,), split_at=8)
        b = FrameDecision(stall_s=0.02, corrupt_at=(3,), split_at=4, cut_after=True)
        merged = a.merge(b)
        assert merged.stall_s == pytest.approx(0.03)
        assert merged.corrupt_at == (1, 3)
        assert merged.split_at == 4  # the earlier split wins
        assert merged.cut_after
        assert not merged.cut_before

    def test_merge_with_benign_is_identity(self):
        verdict = FrameDecision(corrupt_at=(2,), hold=True)
        assert verdict.merge(FrameDecision()) == verdict
        assert FrameDecision().merge(verdict) == verdict


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ConnectionDrop(rate=0.2, seed=7),
            lambda: StallFrames(rate=0.3, delay_s=0.01, seed=7),
            lambda: PartialWrite(rate=0.3, seed=7),
            lambda: PartialWrite(rate=0.3, seed=7, truncate=True),
            lambda: CorruptFrame(rate=0.3, seed=7, nbytes=2),
            lambda: ReorderFrames(rate=0.3, seed=7),
        ],
    )
    def test_same_seed_same_verdicts(self, factory):
        assert verdicts(factory()) == verdicts(factory())

    def test_reset_restores_power_on_state(self):
        fault = CorruptFrame(rate=0.5, seed=3)
        first = [fault.decide(i, FRAME) for i in range(50)]
        fault.reset()
        again = [fault.decide(i, FRAME) for i in range(50)]
        assert first == again

    def test_decisions_ignore_frame_content(self):
        # One variate per frame: hit/miss depends on the index only, so
        # stacked faults and varying payload sizes cannot skew each
        # other's schedules.
        fault = StallFrames(rate=0.4, delay_s=0.01, seed=11)
        a = verdicts(fault, frame=FRAME)
        b = verdicts(fault, frame=b"x" * 500 + b"\n")
        assert [v.benign for v in a] == [v.benign for v in b]

    def test_different_seeds_differ(self):
        a = verdicts(CorruptFrame(rate=0.3, seed=1))
        b = verdicts(CorruptFrame(rate=0.3, seed=2))
        assert a != b


class TestConnectionDrop:
    def test_scheduled_cut_fires_exactly_there(self):
        fault = ConnectionDrop(at_frames=(5, 9))
        for index, verdict in enumerate(verdicts(fault, 12)):
            assert verdict.cut_after == (index in (5, 9))

    def test_random_cuts_respect_min_index(self):
        fault = ConnectionDrop(rate=0.5, seed=13, min_index=10)
        for index, verdict in enumerate(verdicts(fault, 10)):
            assert not verdict.cut_after

    def test_rate_zero_without_schedule_is_clean(self):
        assert all(v.benign for v in verdicts(ConnectionDrop()))


class TestCorruptFrame:
    def test_never_touches_the_trailing_newline(self):
        fault = CorruptFrame(rate=1.0, seed=5, nbytes=4)
        newline_at = len(FRAME) - 1
        for verdict in verdicts(fault, 100):
            assert verdict.corrupt_at
            assert all(0 <= p < newline_at for p in verdict.corrupt_at)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CorruptFrame(rate=1.5)
        with pytest.raises(ValueError):
            CorruptFrame(rate=0.1, nbytes=0)


class TestPartialWrite:
    def test_split_points_are_interior(self):
        fault = PartialWrite(rate=1.0, seed=5)
        for verdict in verdicts(fault, 100):
            assert verdict.split_at is not None
            assert 0 < verdict.split_at < len(FRAME)
            assert not verdict.truncate and not verdict.cut_after

    def test_truncate_mode_cuts_the_connection(self):
        fault = PartialWrite(rate=1.0, seed=5, truncate=True)
        verdict = fault.decide(0, FRAME)
        assert verdict.truncate and verdict.cut_after


class TestComposition:
    def test_compose_merges_all_members(self):
        fault = ComposeTransport(
            ScriptedTransport({2: FrameDecision(cut_after=True)}),
            ScriptedTransport({2: FrameDecision(corrupt_at=(1,))}),
        )
        verdict = fault.decide(2, FRAME)
        assert verdict.cut_after and verdict.corrupt_at == (1,)
        assert fault.decide(0, FRAME).benign

    def test_compose_reset_resets_members(self):
        member = CorruptFrame(rate=0.5, seed=9)
        fault = ComposeTransport(member)
        first = [fault.decide(i, FRAME) for i in range(30)]
        fault.reset()
        assert [fault.decide(i, FRAME) for i in range(30)] == first

    def test_no_faults_is_always_benign(self):
        assert all(v.benign for v in verdicts(NoTransportFaults()))
