"""The crash-resumable executor: resume-exactness, quarantine, retry.

The headline invariant — an interrupted-then-resumed run produces
byte-identical ``summary.json``/``summary.txt`` to an uninterrupted one
— is proven here in-process (a truncated ledger stands in for the
SIGKILL; the subprocess version with a real ``kill -9`` is the
``repro run-soak`` gate).  Around it: artifact digest verification on
resume (corrupt/missing -> quarantine + re-run, never silent reuse),
transient-vs-deterministic retry classification, and the per-family
circuit breaker.
"""

import json
import os

import pytest

from repro.runs import (
    ExecutorOptions,
    RunConfig,
    RunDirectory,
    cell_key,
    read_ledger,
    run_matrix,
)

GEN = "gen:mixed,seed=5,population=2,cycles=256,width=16"


def savings_config(coders=("last", "window8")):
    return RunConfig(matrix="savings", sources=(GEN,), coders=tuple(coders))


def fast_options(**kwargs):
    kwargs.setdefault("sleep", lambda _s: None)  # no real backoff in tests
    return ExecutorOptions(**kwargs)


class TestFreshRun:
    def test_completes_and_journals(self, tmp_path):
        result = run_matrix(
            savings_config(), str(tmp_path), run_id="r", options=fast_options()
        )
        assert result.ok and result.status == "complete"
        assert len(result.results) == 4
        rundir = RunDirectory(str(tmp_path), "r")
        events = read_ledger(rundir.ledger_path)
        assert events[0]["event"] == "run_open"
        assert events[-1]["event"] == "run_close"
        assert sum(1 for e in events if e["event"] == "done") == 4
        # Every done event's digest matches the artifact on disk.
        from repro.runs import file_digest

        for event in events:
            if event["event"] == "done":
                path = os.path.join(rundir.path, event["artifact"])
                assert file_digest(path) == event["sha256"]
        assert os.path.exists(rundir.summary_json_path)
        assert result.summary_text.rstrip().startswith("savings matrix")

    def test_refuses_to_clobber_existing_ledger(self, tmp_path):
        run_matrix(savings_config(), str(tmp_path), run_id="r", options=fast_options())
        with pytest.raises(ValueError, match="--resume"):
            run_matrix(
                savings_config(), str(tmp_path), run_id="r", options=fast_options()
            )

    def test_bad_run_id_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="invalid run id"):
            run_matrix(
                savings_config(), str(tmp_path), run_id="../evil", options=fast_options()
            )


class TestResume:
    def test_resume_of_complete_run_skips_everything(self, tmp_path):
        first = run_matrix(
            savings_config(), str(tmp_path), run_id="r", options=fast_options()
        )
        again = run_matrix(
            None, str(tmp_path), resume="r", options=fast_options()
        )
        assert again.skipped == 4 and not again.retried
        assert again.results == first.results
        assert again.summary_json == first.summary_json

    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        reference = run_matrix(
            savings_config(), str(tmp_path), run_id="ref", options=fast_options()
        )
        victim = run_matrix(
            savings_config(), str(tmp_path), run_id="vic", options=fast_options()
        )
        assert victim.summary_json == reference.summary_json
        # Simulate the SIGKILL: truncate the ledger after two done
        # events and delete the summaries the dead run never wrote.
        rundir = RunDirectory(str(tmp_path), "vic")
        with open(rundir.ledger_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        kept, done = [], 0
        for line in lines:
            event = json.loads(line)
            if event["event"] == "done":
                done += 1
            kept.append(line)
            if done == 2:
                break
        with open(rundir.ledger_path, "w", encoding="utf-8") as handle:
            handle.writelines(kept)
        os.remove(rundir.summary_json_path)
        os.remove(rundir.summary_text_path)

        resumed = run_matrix(None, str(tmp_path), resume="vic", options=fast_options())
        assert resumed.skipped == 2
        assert resumed.summary_json == reference.summary_json
        assert resumed.summary_text == reference.summary_text
        with open(rundir.summary_json_path, "r", encoding="utf-8") as handle:
            assert handle.read() == reference.summary_json

    def test_corrupt_artifact_quarantined_and_reexecuted(self, tmp_path):
        first = run_matrix(
            savings_config(), str(tmp_path), run_id="r", options=fast_options()
        )
        rundir = RunDirectory(str(tmp_path), "r")
        key = cell_key(first.cells[0])
        artifact = rundir.artifact_path(key)
        with open(artifact, "r", encoding="utf-8") as handle:
            value = json.load(handle)
        value["savings_pct"] += 1.0  # still parses; digest now lies
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(value, handle)

        resumed = run_matrix(None, str(tmp_path), resume="r", options=fast_options())
        assert resumed.quarantined == 1 and resumed.skipped == 3
        assert resumed.results == first.results  # recomputed, not reused
        assert resumed.summary_json == first.summary_json
        # Evidence impounded: record names the reason, artifact preserved.
        record_path = os.path.join(rundir.quarantine_dir, f"{key}.json")
        with open(record_path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["reason"] == "artifact-digest-mismatch"
        assert os.path.exists(os.path.join(rundir.path, record["impounded"]))
        events = read_ledger(rundir.ledger_path)
        assert any(
            e["event"] == "quarantined"
            and e["reason"] == "artifact-digest-mismatch"
            and e["key"] == key
            for e in events
        )

    def test_missing_artifact_quarantined_and_reexecuted(self, tmp_path):
        first = run_matrix(
            savings_config(), str(tmp_path), run_id="r", options=fast_options()
        )
        key = cell_key(first.cells[1])
        rundir = RunDirectory(str(tmp_path), "r")
        os.remove(rundir.artifact_path(key))
        resumed = run_matrix(None, str(tmp_path), resume="r", options=fast_options())
        assert resumed.quarantined == 1
        assert resumed.results == first.results
        events = read_ledger(rundir.ledger_path)
        assert any(
            e["event"] == "quarantined" and e["reason"] == "artifact-missing"
            for e in events
        )

    def test_resume_without_ledger_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="nothing to resume"):
            run_matrix(None, str(tmp_path), resume="ghost", options=fast_options())

    def test_resume_with_mismatched_config_refused(self, tmp_path):
        run_matrix(savings_config(), str(tmp_path), run_id="r", options=fast_options())
        other = savings_config(coders=("window16",))
        with pytest.raises(ValueError, match="configuration mismatch"):
            run_matrix(other, str(tmp_path), resume="r", options=fast_options())


class TestFailureClassification:
    def test_deterministic_failure_quarantined_after_one_attempt(self, tmp_path):
        result = run_matrix(
            savings_config(),
            str(tmp_path),
            run_id="r",
            options=fast_options(chaos=("fail@1",), retries=3),
        )
        assert result.status == "degraded"
        assert list(result.failed.values()) == ["deterministic-failure"]
        assert "FAILED:deterministic-failure" in result.summary_text
        assert result.exit_code(strict=True) == 1
        assert result.exit_code(strict=False) == 0
        events = read_ledger(RunDirectory(str(tmp_path), "r").ledger_path)
        failed = [e for e in events if e["event"] == "failed"]
        assert len(failed) == 1 and failed[0]["final"]
        assert failed[0]["kind"] == "ValueError"

    def test_transient_failure_retried_to_success(self, tmp_path):
        result = run_matrix(
            savings_config(),
            str(tmp_path),
            run_id="r",
            options=fast_options(chaos=("flaky@2",), retries=3),
        )
        assert result.ok and result.retried == 1
        events = read_ledger(RunDirectory(str(tmp_path), "r").ledger_path)
        transient = [
            e for e in events if e["event"] == "failed" and not e["final"]
        ]
        assert len(transient) == 1
        assert transient[0]["kind"] == "OSError"
        assert transient[0]["klass"] == "transient"

    def test_transient_exhaustion_is_quarantined(self, tmp_path):
        # wedge with an impossible watchdog would be slow; instead make
        # the transient error permanent by shrinking the retry budget.
        result = run_matrix(
            savings_config(coders=("last",)),
            str(tmp_path),
            run_id="r",
            options=fast_options(chaos=("flaky@0",), retries=1),
        )
        assert result.failed
        assert list(result.failed.values()) == ["retries-exhausted"]

    def test_timeout_is_transient_and_retried(self, tmp_path):
        result = run_matrix(
            savings_config(coders=("last",)),
            str(tmp_path),
            run_id="r",
            options=fast_options(
                chaos=("wedge@0=0.6",), timeout_s=0.15, retries=3
            ),
        )
        assert result.ok and result.retried >= 1
        events = read_ledger(RunDirectory(str(tmp_path), "r").ledger_path)
        timeouts = [
            e for e in events if e["event"] == "failed" and e["kind"] == "timeout"
        ]
        assert timeouts and not timeouts[0]["final"]
        assert timeouts[0]["elapsed_s"] >= 0.1
        assert timeouts[0]["pid"] > 0

    def test_circuit_breaker_fails_family_fast(self, tmp_path):
        config = RunConfig(
            matrix="savings",
            sources=("gen:mixed,seed=5,population=4,cycles=256,width=16",),
            coders=("last",),
        )
        result = run_matrix(
            config,
            str(tmp_path),
            run_id="r",
            options=fast_options(
                chaos=("fail@0", "fail@1"), breaker_threshold=2, batch=2
            ),
        )
        classes = sorted(result.failed.values())
        assert classes == [
            "circuit-open",
            "circuit-open",
            "deterministic-failure",
            "deterministic-failure",
        ]
        assert "FAILED:circuit-open" in result.summary_text


class TestDeterminism:
    def test_chaos_does_not_change_summaries(self, tmp_path):
        clean = run_matrix(
            savings_config(), str(tmp_path), run_id="clean", options=fast_options()
        )
        shaken = run_matrix(
            savings_config(),
            str(tmp_path),
            run_id="shaken",
            options=fast_options(chaos=("flaky@0", "flaky@3"), retries=3),
        )
        assert shaken.retried == 2
        assert shaken.summary_json == clean.summary_json
        assert shaken.summary_text == clean.summary_text

    def test_jobs_do_not_change_summaries(self, tmp_path):
        serial = run_matrix(
            savings_config(), str(tmp_path), run_id="serial", options=fast_options()
        )
        fanned = run_matrix(
            savings_config(),
            str(tmp_path),
            run_id="fanned",
            options=fast_options(jobs=2),
        )
        assert fanned.summary_json == serial.summary_json


class TestCorpusSourcedRuns:
    """Satellite: corpus digest failures surface as quarantined cells,
    not crashes — a resumed run completes degraded and names the shard."""

    @pytest.fixture(autouse=True)
    def no_trace_cache(self):
        # The content-addressed trace cache would (correctly) serve the
        # uncorrupted bytes; disable it so every read hits the shard.
        from repro.traces import TraceCache
        from repro.traces.cache import get_default_cache, set_default_cache

        previous = get_default_cache()
        set_default_cache(TraceCache(enabled=False))
        yield
        set_default_cache(previous)

    def _corpus(self, tmp_path):
        import numpy as np

        from repro.corpus import CorpusWriter
        from repro.traces import BusTrace

        directory = tmp_path / "corpus"
        rng = np.random.default_rng(11)
        with CorpusWriter(str(directory)) as writer:
            for name in ("alpha", "beta"):
                writer.add_trace(
                    name,
                    BusTrace(
                        rng.integers(0, 1 << 16, size=300, dtype=np.uint64),
                        16,
                        name,
                    ),
                    source="test",
                )
        return directory

    def test_corpus_run_completes(self, tmp_path):
        directory = self._corpus(tmp_path)
        config = RunConfig(
            matrix="savings", sources=(f"corpus:{directory}",), coders=("last",)
        )
        result = run_matrix(config, str(tmp_path), run_id="r", options=fast_options())
        assert result.ok and len(result.results) == 2
        assert {c.workload for c in result.cells} == {"alpha", "beta"}

    def test_corrupt_shard_quarantines_cell_on_resume(self, tmp_path):
        from repro.corpus import CorpusReader

        directory = self._corpus(tmp_path)
        config = RunConfig(
            matrix="savings", sources=(f"corpus:{directory}",), coders=("last",)
        )
        first = run_matrix(config, str(tmp_path), run_id="r", options=fast_options())

        # Kill the run after one cell (truncate ledger) AND flip a bit
        # inside the shard the pending cell reads.
        rundir = RunDirectory(str(tmp_path), "r")
        with open(rundir.ledger_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        kept, done = [], 0
        for line in lines:
            kept.append(line)
            if json.loads(line)["event"] == "done":
                done += 1
                if done == 1:
                    break
        with open(rundir.ledger_path, "w", encoding="utf-8") as handle:
            handle.writelines(kept)

        pending = first.cells[1].workload  # canonical order: beta pending
        meta = CorpusReader(str(directory)).meta(pending)
        shard = directory / meta.file
        blob = bytearray(shard.read_bytes())
        blob[64] ^= 0x01
        shard.write_bytes(bytes(blob))

        resumed = run_matrix(None, str(tmp_path), resume="r", options=fast_options())
        assert resumed.status == "degraded"
        assert resumed.skipped == 1
        assert list(resumed.failed.values()) == ["deterministic-failure"]
        # The quarantine record names the shard via the error message.
        records = os.listdir(rundir.quarantine_dir)
        record_path = os.path.join(
            rundir.quarantine_dir, [r for r in records if r.endswith(".json")][0]
        )
        with open(record_path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["kind"] == "CorpusFormatError"
        assert pending in record["message"]
