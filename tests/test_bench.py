"""`repro bench`: smoke runs and the BENCH_*.json schema guard.

The ``bench_smoke`` marker selects the quick end-to-end runs; the
schema-validator tests are plain unit tests.  The guard's contract:
any drift in the emitted report layout (missing key, renamed key, type
change, schema-tag bump) is rejected by :func:`validate_bench_report`,
which is what makes ``repro bench --quick`` exit nonzero on drift.
"""

import copy
import json
import re

import pytest

from repro.analysis.bench import (
    BENCH_SCHEMA,
    BenchSchemaError,
    default_report_path,
    run_bench,
    validate_bench_report,
    write_report,
)
from repro.cli import main


@pytest.fixture(scope="module")
def quick_report():
    return run_bench(quick=True, jobs=1)


# -- smoke runs -----------------------------------------------------------


@pytest.mark.bench_smoke
def test_quick_bench_matches_schema(quick_report):
    validate_bench_report(quick_report)  # must not raise
    assert quick_report["schema"] == BENCH_SCHEMA
    assert quick_report["quick"] is True


@pytest.mark.bench_smoke
def test_quick_bench_kernels_are_identical_and_fast(quick_report):
    kernels = {k["coder"]: k for k in quick_report["kernels"]}
    assert set(kernels) == {"transition", "last-value", "inversion"}
    for record in kernels.values():
        assert record["identical"], f"{record['coder']} fast path diverged"
        assert record["fast_s"] > 0
    # Even on tiny quick-mode traces the transition kernel clears the
    # full-size acceptance bar by a wide margin.
    assert kernels["transition"]["speedup"] > 5


@pytest.mark.bench_smoke
def test_quick_bench_cache_warms_up(quick_report):
    sweeps = {s["name"]: s for s in quick_report["sweeps"]}
    assert set(sweeps) == {"robust_savings_sweep", "crossover_table"}
    for record in sweeps.values():
        assert record["cold_s"] > 0 and record["warm_s"] > 0
    # The persistent cache must make the warm crossover run faster.
    assert sweeps["crossover_table"]["warm_s"] < sweeps["crossover_table"]["cold_s"]


@pytest.mark.bench_smoke
def test_quick_bench_covers_the_corpus_stages(quick_report):
    stages = {c["name"]: c for c in quick_report["corpus"]}
    assert set(stages) == {"generate", "ingest", "read_mmap", "read_memory"}
    assert stages["ingest"]["unit"] == "MB/s"
    assert stages["generate"]["unit"] == "streams/s"
    for record in stages.values():
        assert record["per_s"] > 0 and record["elapsed_s"] >= 0
    # Both read paths walked the whole ingested shard.
    assert stages["read_mmap"]["cycles"] == stages["ingest"]["cycles"]
    assert stages["read_memory"]["cycles"] == stages["ingest"]["cycles"]


@pytest.mark.bench_smoke
def test_write_report_round_trips(quick_report, tmp_path):
    path = write_report(quick_report, str(tmp_path / "BENCH_t.json"))
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    validate_bench_report(loaded)
    assert loaded["kernels"] == quick_report["kernels"]


@pytest.mark.bench_smoke
def test_cli_bench_quick_exits_zero(tmp_path, capsys):
    out = str(tmp_path / "BENCH_cli.json")
    assert main(["bench", "--quick", "--output", out]) == 0
    stdout = capsys.readouterr().out
    assert "vectorized kernels" in stdout
    assert "trace-cache" in stdout
    with open(out, "r", encoding="utf-8") as handle:
        validate_bench_report(json.load(handle))


# -- schema guard ---------------------------------------------------------


def _mutate(report, fn):
    mutated = copy.deepcopy(report)
    fn(mutated)
    return mutated


VALID = {
    "schema": BENCH_SCHEMA,
    "created": "2026-01-01T00:00:00+00:00",
    "quick": True,
    "jobs": 1,
    "numpy": "2.0.0",
    "kernels": [
        {
            "coder": "transition",
            "cycles": 1000,
            "scalar_s": 0.5,
            "fast_s": 0.05,
            "speedup": 10.0,
            "fast_mcycles_per_s": 20.0,
            "identical": True,
        }
    ],
    "sweeps": [
        {
            "name": "crossover_table",
            "cycles": 1000,
            "cold_s": 1.0,
            "warm_s": 0.25,
            "speedup": 4.0,
        }
    ],
}


CORPUS_RECORD = {
    "name": "ingest",
    "cycles": 1000,
    "mbytes": 8.0,
    "elapsed_s": 0.1,
    "per_s": 80.0,
    "unit": "MB/s",
}


def test_valid_synthetic_report_passes():
    validate_bench_report(VALID)
    validate_bench_report(_mutate(VALID, lambda r: r.update(jobs=None)))
    # `corpus` is optional: absent is fine, well-formed is fine.
    validate_bench_report(
        _mutate(VALID, lambda r: r.update(corpus=[dict(CORPUS_RECORD)]))
    )


@pytest.mark.parametrize(
    "mutator, pattern",
    [
        (lambda r: r.update(schema="repro-bench/2"), "schema tag"),
        (lambda r: r.pop("created"), "missing top-level"),
        (lambda r: r.update(extra_field=1), "unexpected top-level"),
        (lambda r: r.update(quick="yes"), "'quick' must be a bool"),
        (lambda r: r.update(jobs="four"), "'jobs' must be an int"),
        (lambda r: r.update(kernels=[]), "non-empty list"),
        (lambda r: r.update(sweeps="nope"), "non-empty list"),
        (lambda r: r["kernels"][0].pop("speedup"), "missing key 'speedup'"),
        (lambda r: r["kernels"][0].update(identical="yes"), "should be bool"),
        (lambda r: r["kernels"][0].update(unknown=1), "unexpected keys"),
        (lambda r: r["sweeps"][0].update(cold_s="slow"), "should be float"),
        (lambda r: r["sweeps"][0].update(cycles=2.5), "should be int"),
        (lambda r: r.update(corpus=[]), "non-empty list"),
        (
            lambda r: r.update(
                corpus=[{k: v for k, v in CORPUS_RECORD.items() if k != "unit"}]
            ),
            "missing key 'unit'",
        ),
        (
            lambda r: r.update(corpus=[dict(CORPUS_RECORD, per_s="fast")]),
            "should be float",
        ),
    ],
)
def test_schema_drift_is_rejected(mutator, pattern):
    with pytest.raises(BenchSchemaError, match=re.escape(pattern)):
        validate_bench_report(_mutate(VALID, mutator))


def test_non_dict_rejected():
    with pytest.raises(BenchSchemaError):
        validate_bench_report([VALID])
    with pytest.raises(BenchSchemaError):
        validate_bench_report(None)


def test_write_report_rejects_drift(tmp_path):
    bad = _mutate(VALID, lambda r: r["kernels"][0].pop("identical"))
    with pytest.raises(BenchSchemaError):
        write_report(bad, str(tmp_path / "BENCH_bad.json"))


def test_default_report_path_shape(tmp_path):
    path = default_report_path(str(tmp_path))
    assert re.fullmatch(
        r"BENCH_\d{8}T\d{6}Z\.json", path.rsplit("/", 1)[-1]
    )
