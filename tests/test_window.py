"""Unit tests for the window-based transcoder (Figures 18-19, 30, 33)."""

import numpy as np
import pytest

from repro.coding import WindowPredictor, WindowTranscoder
from repro.energy import count_activity, normalized_energy_removed
from repro.traces import BusTrace
from repro.workloads import locality_trace, random_trace


class TestWindowPredictor:
    def test_miss_inserts_at_head(self):
        pred = WindowPredictor(4, 32)
        pred.update(10)
        assert 10 in pred.contents

    def test_evicts_oldest_unique_value(self):
        pred = WindowPredictor(2, 32)
        for v in (1, 2, 3):
            pred.update(v)
        assert 1 not in pred.contents
        assert {2, 3} <= set(pred.contents)

    def test_repeats_do_not_duplicate_entries(self):
        pred = WindowPredictor(4, 32)
        for v in (7, 7, 7):
            pred.update(v)
        assert pred.contents.count(7) == 1

    def test_resident_entry_keeps_its_slot(self):
        # Pointer-based design (Figure 30): hits never move entries.
        pred = WindowPredictor(4, 32)
        for v in (1, 2, 3):
            pred.update(v)
        slot_before = pred.contents.index(2)
        pred.update(2)  # hit
        assert pred.contents.index(2) == slot_before

    def test_match_prefers_last_slot(self):
        pred = WindowPredictor(4, 32)
        pred.update(5)
        assert pred.match(5) == 0  # LAST, not the window slot

    def test_match_returns_slot_plus_one(self):
        pred = WindowPredictor(4, 32)
        pred.update(5)
        pred.update(6)
        assert pred.match(5) == 1 + pred.contents.index(5)

    def test_lookup_empty_slot_raises(self):
        pred = WindowPredictor(4, 32)
        with pytest.raises(ValueError):
            pred.lookup(3)

    def test_lookup_out_of_range(self):
        pred = WindowPredictor(2, 32)
        with pytest.raises(IndexError):
            pred.lookup(5)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            WindowPredictor(0, 32)


class TestWindowTranscoder:
    def test_roundtrip_locality(self, local_trace):
        coder = WindowTranscoder(8, 32)
        assert np.array_equal(coder.roundtrip(local_trace).values, local_trace.values)

    def test_roundtrip_random(self, rand_trace):
        coder = WindowTranscoder(8, 32)
        assert np.array_equal(coder.roundtrip(rand_trace).values, rand_trace.values)

    def test_roundtrip_register_bus(self, gcc_register):
        coder = WindowTranscoder(8, 32)
        assert np.array_equal(
            coder.roundtrip(gcc_register).values, gcc_register.values
        )

    def test_window_hit_costs_one_data_transition(self):
        coder = WindowTranscoder(8, 32)
        coder.reset()
        coder.encode_value(100)
        coder.encode_value(200)
        before = coder.encode_value(300)
        after = coder.encode_value(100)  # window hit (not LAST)
        assert bin(before ^ after).count("1") <= 2  # codeword + control

    def test_sizes_beyond_bus_width_use_weight_two_codes(self):
        # 64 entries on a 32-bit bus forces weight-2 codewords; the
        # coder must still round-trip.
        trace = locality_trace(1500, working_set=60, seed=3)
        coder = WindowTranscoder(64, 32)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    def test_savings_grow_with_window_on_reuse_heavy_traffic(self):
        trace = locality_trace(
            4000, repeat_fraction=0.1, reuse_fraction=0.6, working_set=24, seed=5
        )
        small = normalized_energy_removed(
            trace, WindowTranscoder(2, 32).encode_trace(trace)
        )
        large = normalized_energy_removed(
            trace, WindowTranscoder(32, 32).encode_trace(trace)
        )
        assert large > small

    def test_saves_energy_on_reuse_heavy_traffic(self):
        trace = locality_trace(
            4000,
            repeat_fraction=0.2,
            reuse_fraction=0.6,
            stride_fraction=0.1,
            working_set=8,
            seed=6,
        )
        phys = WindowTranscoder(8, 32).encode_trace(trace)
        assert normalized_energy_removed(trace, phys) > 30.0

    def test_random_traffic_roughly_breaks_even(self):
        # No locality to exploit: the coder should not blow up the bus.
        trace = random_trace(3000, seed=8)
        saved = normalized_energy_removed(
            trace, WindowTranscoder(8, 32).encode_trace(trace)
        )
        assert saved > -10.0
