"""Unit tests for the absolute bus energy model."""

import pytest

from repro.energy import BusEnergyModel, count_activity
from repro.traces import BusTrace
from repro.wires import TECH_007, TECH_013


class TestBusEnergyModel:
    def test_quiet_trace_costs_nothing(self):
        model = BusEnergyModel(TECH_013, 10.0)
        trace = BusTrace.from_values([0, 0, 0], width=32)
        assert model.trace_energy(trace) == 0.0

    def test_energy_matches_manual_combination(self, tiny_trace):
        model = BusEnergyModel(TECH_013, 8.0)
        counts = count_activity(tiny_trace)
        expected = model.wire.bus_energy(
            counts.total_transitions, counts.total_coupling
        )
        assert model.trace_energy(tiny_trace) == pytest.approx(expected)

    def test_energy_per_cycle(self, tiny_trace):
        model = BusEnergyModel(TECH_013, 8.0)
        assert model.energy_per_cycle(tiny_trace) == pytest.approx(
            model.trace_energy(tiny_trace) / len(tiny_trace)
        )

    def test_energy_per_cycle_empty_trace(self):
        model = BusEnergyModel(TECH_013, 8.0)
        assert model.energy_per_cycle(BusTrace.from_values([], width=8)) == 0.0

    def test_longer_bus_costs_more(self, tiny_trace):
        short = BusEnergyModel(TECH_013, 5.0).trace_energy(tiny_trace)
        long = BusEnergyModel(TECH_013, 20.0).trace_energy(tiny_trace)
        assert long > short
        # Not exactly 4x: the integer repeater count quantises the
        # per-mm capacitance at short lengths.
        assert long == pytest.approx(4 * short, rel=0.25)

    def test_smaller_node_costs_less(self, tiny_trace):
        e13 = BusEnergyModel(TECH_013, 10.0).trace_energy(tiny_trace)
        e07 = BusEnergyModel(TECH_007, 10.0).trace_energy(tiny_trace)
        assert e07 < e13

    def test_effective_lambda_passthrough(self):
        model = BusEnergyModel(TECH_013, 10.0)
        assert model.effective_lambda == pytest.approx(
            model.wire.effective_lambda
        )
