"""The persistent trace cache: round-trips, key invalidation, corruption.

Three contracts:

* a stored trace/artifact comes back bit-identical, across processes
  (simulated here by clearing the in-memory layer);
* the key covers everything the trace depends on — workload *program*,
  bus, cycle budget — so edits and different budgets miss instead of
  serving stale data;
* a corrupt or truncated cache file is evicted and re-simulated, never
  fatal.
"""

import json
import os

import numpy as np
import pytest

from repro.traces import (
    BusTrace,
    TraceCache,
    cache_enabled_by_env,
    default_cache_dir,
    get_default_cache,
    set_default_cache,
)
from repro.traces.cache import CACHE_DIR_ENV, CACHE_ENABLE_ENV
from repro.workloads import clear_caches, program_hash, register_trace
from repro.workloads.suite import _trace_cache_key


@pytest.fixture
def tmp_cache(tmp_path):
    """A fresh default cache in a throwaway directory (restored after)."""
    previous = get_default_cache()
    cache = TraceCache(str(tmp_path / "cache"))
    set_default_cache(cache)
    clear_caches()
    yield cache
    set_default_cache(previous)
    clear_caches()


def _trace(seed=0, n=50, width=16, name="t"):
    rng = np.random.default_rng(seed)
    return BusTrace(
        rng.integers(0, 1 << width, size=n, dtype=np.uint64), width, name
    )


# -- round trips ----------------------------------------------------------


def test_trace_round_trip_through_disk(tmp_cache):
    trace = _trace(seed=1, name="roundtrip")
    key = tmp_cache.key("test", "roundtrip")
    tmp_cache.store(key, trace)
    tmp_cache.clear_memory()  # force the disk layer
    loaded = tmp_cache.load(key)
    assert loaded is not None
    assert np.array_equal(loaded.values, trace.values)
    assert loaded.width == trace.width
    assert loaded.name == trace.name
    assert os.path.exists(tmp_cache.trace_path(key))


def test_json_round_trip_through_disk(tmp_cache):
    key = tmp_cache.key("test", "artifact")
    payload = {"ops": {"match": 12, "shift": 3}, "width": 34}
    tmp_cache.store_json(key, payload)
    tmp_cache.clear_memory()
    assert tmp_cache.load_json(key) == payload


def test_miss_on_unknown_key(tmp_cache):
    assert tmp_cache.load(tmp_cache.key("nope")) is None
    assert tmp_cache.load_json(tmp_cache.key("nope", "json")) is None
    assert tmp_cache.stats()["misses"] == 2
    assert tmp_cache.stats()["hits"] == 0


def test_disabled_cache_never_stores(tmp_path):
    cache = TraceCache(str(tmp_path / "off"), enabled=False)
    key = cache.key("k")
    cache.store(key, _trace())
    cache.store_json(key, {"a": 1})
    assert cache.load(key) is None
    assert cache.load_json(key) is None
    assert not os.path.exists(str(tmp_path / "off"))


# -- key invalidation -----------------------------------------------------


def test_key_is_stable_and_sensitive():
    a = TraceCache.key("trace", "gcc", "register", 5000, "abc")
    assert a == TraceCache.key("trace", "gcc", "register", 5000, "abc")
    assert a != TraceCache.key("trace", "gcc", "register", 5001, "abc")
    assert a != TraceCache.key("trace", "gcc", "memory", 5000, "abc")
    assert a != TraceCache.key("trace", "gcc", "register", 5000, "abd")
    assert a != TraceCache.key("trace", "swim", "register", 5000, "abc")


def test_program_hash_distinguishes_workloads():
    assert program_hash("gcc") != program_hash("swim")
    assert program_hash("gcc") == program_hash("gcc")


def test_suite_key_changes_with_cycles_and_program(tmp_cache):
    k1 = _trace_cache_key("gcc", "register", 1000)
    k2 = _trace_cache_key("gcc", "register", 2000)
    k3 = _trace_cache_key("swim", "register", 1000)
    assert len({k1, k2, k3}) == 3


def test_suite_traces_persist_and_reload(tmp_cache):
    cold = register_trace("gcc", 1200)
    key = _trace_cache_key("gcc", "register", 1200)
    assert os.path.exists(tmp_cache.trace_path(key))
    clear_caches()  # drop lru + memory; the next call must hit the disk
    warm = register_trace("gcc", 1200)
    assert tmp_cache.stats()["hits"] >= 1
    assert np.array_equal(cold.values, warm.values)
    # A different cycle budget is a different key: re-simulates.
    other = register_trace("gcc", 600)
    assert len(other) != len(cold)


# -- corruption recovery --------------------------------------------------


def test_corrupt_trace_file_is_evicted_and_resimulated(tmp_cache):
    cold = register_trace("gcc", 1200)
    key = _trace_cache_key("gcc", "register", 1200)
    path = tmp_cache.trace_path(key)
    with open(path, "wb") as handle:
        handle.write(b"this is not an npz archive")
    clear_caches()
    recovered = register_trace("gcc", 1200)  # must not raise
    assert np.array_equal(recovered.values, cold.values)
    assert tmp_cache.stats()["corrupt_evictions"] >= 1


def test_corrupt_json_artifact_is_evicted(tmp_cache):
    key = tmp_cache.key("artifact")
    tmp_cache.store_json(key, {"x": 1})
    with open(tmp_cache.json_path(key), "w") as handle:
        handle.write("{truncated")
    tmp_cache.clear_memory()
    assert tmp_cache.load_json(key) is None
    assert tmp_cache.stats()["corrupt_evictions"] == 1
    assert not os.path.exists(tmp_cache.json_path(key))


def test_readonly_directory_degrades_to_memory(tmp_path):
    target = tmp_path / "ro"
    target.mkdir()
    os.chmod(target, 0o500)
    try:
        cache = TraceCache(str(target))
        key = cache.key("k")
        cache.store(key, _trace())  # must not raise
        assert cache.load(key) is not None  # memory layer still serves it
    finally:
        os.chmod(target, 0o700)


# -- environment configuration --------------------------------------------


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "custom"))
    assert default_cache_dir() == str(tmp_path / "custom")
    monkeypatch.delenv(CACHE_DIR_ENV)
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == str(tmp_path / "xdg" / "repro" / "traces")


def test_cache_enabled_by_env(monkeypatch):
    for off in ("0", "false", "OFF", "no"):
        monkeypatch.setenv(CACHE_ENABLE_ENV, off)
        assert not cache_enabled_by_env()
    monkeypatch.setenv(CACHE_ENABLE_ENV, "1")
    assert cache_enabled_by_env()
    monkeypatch.delenv(CACHE_ENABLE_ENV)
    assert cache_enabled_by_env()


# -- content digest verification (silent-corruption class) ----------------


def _corrupt_counter():
    from repro import obs

    return obs.get_registry().counter("trace_cache.corrupt")


def test_plausible_trace_tamper_is_detected_and_recomputed(tmp_cache):
    """A value swap that keeps the archive structurally valid must be
    caught by the digest on load, counted, evicted, recomputed."""
    cold = register_trace("gcc", 1200)
    key = _trace_cache_key("gcc", "register", 1200)
    path = tmp_cache.trace_path(key)
    with np.load(path) as data:
        members = {k: data[k] for k in data.files}
    values = np.array(members["values"], dtype=np.uint64)
    values[0] ^= 1  # the bit-flip the structural checks cannot see
    members["values"] = values
    np.savez_compressed(path, **members)

    before = _corrupt_counter()
    clear_caches()
    recovered = register_trace("gcc", 1200)  # must not raise, must not lie
    assert np.array_equal(recovered.values, cold.values)
    assert _corrupt_counter() == before + 1
    assert tmp_cache.stats()["corrupt_evictions"] >= 1


def test_json_envelope_tamper_is_detected(tmp_cache):
    key = tmp_cache.key("artifact", "sealed")
    tmp_cache.store_json(key, {"x": 1, "y": [2, 3]})
    with open(tmp_cache.json_path(key), "r", encoding="utf-8") as handle:
        blob = json.load(handle)
    blob["value"]["x"] = 99  # parses fine; envelope digest now lies
    with open(tmp_cache.json_path(key), "w", encoding="utf-8") as handle:
        json.dump(blob, handle)
    tmp_cache.clear_memory()
    before = _corrupt_counter()
    assert tmp_cache.load_json(key) is None
    assert _corrupt_counter() == before + 1
    assert not os.path.exists(tmp_cache.json_path(key))


def test_legacy_bare_json_artifact_treated_as_corrupt(tmp_cache):
    # Pre-envelope cache files (a bare value, no {"sha256","value"}
    # wrapper) cannot be verified; they are evicted, not trusted.
    key = tmp_cache.key("artifact", "legacy")
    os.makedirs(tmp_cache.directory, exist_ok=True)
    with open(tmp_cache.json_path(key), "w", encoding="utf-8") as handle:
        json.dump({"x": 1}, handle)
    assert tmp_cache.load_json(key) is None
    assert not os.path.exists(tmp_cache.json_path(key))


def test_json_round_trip_keeps_envelope_on_disk(tmp_cache):
    key = tmp_cache.key("artifact", "envelope")
    tmp_cache.store_json(key, [1, 2, 3])
    with open(tmp_cache.json_path(key), "r", encoding="utf-8") as handle:
        blob = json.load(handle)
    assert set(blob) == {"sha256", "value"}
    assert blob["value"] == [1, 2, 3]
    tmp_cache.clear_memory()
    assert tmp_cache.load_json(key) == [1, 2, 3]
