"""Unit tests for the related-work coding schemes (paper Section 2)."""

import numpy as np
import pytest

from repro.coding import (
    AdaptiveCodebookTranscoder,
    BusInvertTranscoder,
    WorkZoneTranscoder,
)
from repro.energy import count_activity, normalized_energy_removed
from repro.traces import BusTrace
from repro.workloads import random_trace


class TestBusInvert:
    def test_roundtrip(self, rand_trace):
        coder = BusInvertTranscoder(32, 1)
        assert np.array_equal(coder.roundtrip(rand_trace).values, rand_trace.values)

    def test_partial_roundtrip(self, rand_trace):
        coder = BusInvertTranscoder(32, 4)
        assert np.array_equal(coder.roundtrip(rand_trace).values, rand_trace.values)

    def test_majority_rule(self):
        coder = BusInvertTranscoder(8, 1)
        coder.reset()
        coder.encode_value(0x00)
        # 5 of 8 wires would toggle -> inverted (3 toggles + invert wire).
        state = coder.encode_value(0x1F)
        assert state >> 8 == 1  # invert wire set
        assert state & 0xFF == (~0x1F) & 0xFF

    def test_no_invert_at_half(self):
        coder = BusInvertTranscoder(8, 1)
        coder.reset()
        coder.encode_value(0x00)
        # Exactly half (4 of 8): the classic rule does not invert.
        state = coder.encode_value(0x0F)
        assert state >> 8 == 0

    def test_data_toggles_never_exceed_half_per_group(self):
        trace = random_trace(400, seed=3)
        coder = BusInvertTranscoder(32, 4)
        phys = coder.encode_trace(trace)
        group_mask = 0xFF
        previous = 0
        for state in phys:
            for g in range(4):
                old = (previous >> (8 * g)) & group_mask
                new = (state >> (8 * g)) & group_mask
                assert bin(old ^ new).count("1") <= 4
            previous = state & 0xFFFFFFFF

    def test_saves_on_random_traffic(self):
        trace = random_trace(3000, seed=6)
        phys = BusInvertTranscoder(32, 4).encode_trace(trace)
        assert normalized_energy_removed(trace, phys, lam=0.0) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BusInvertTranscoder(32, 0)
        with pytest.raises(ValueError):
            BusInvertTranscoder(32, 5)  # 32 % 5 != 0


class TestWorkZone:
    def test_roundtrip_addresses(self):
        addresses = []
        for i in range(300):
            addresses.append(0x10000 + 4 * i)  # streaming zone
            if i % 3 == 0:
                addresses.append(0x7F000 + 8 * (i % 10))  # stack-ish zone
        trace = BusTrace.from_values(addresses, 32)
        coder = WorkZoneTranscoder(32, zones=4, offset_bits=5)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    def test_roundtrip_random(self, rand_trace):
        coder = WorkZoneTranscoder(32, zones=4, offset_bits=5)
        assert np.array_equal(coder.roundtrip(rand_trace).values, rand_trace.values)

    def test_sequential_addresses_cost_little(self):
        trace = BusTrace.from_values([0x4000 + 4 * i for i in range(500)], 32)
        phys = WorkZoneTranscoder(32, zones=2, offset_bits=5).encode_trace(trace)
        counts = count_activity(phys)
        # ~2 transitions per access (offset toggle on/off) after warm-up.
        assert counts.total_transitions < 3 * len(trace)

    def test_beats_raw_bus_on_strided_addresses(self):
        trace = BusTrace.from_values(
            [0x10000 + 4 * (i % 800) for i in range(2000)], 32
        )
        phys = WorkZoneTranscoder(32).encode_trace(trace)
        assert normalized_energy_removed(trace, phys) > 20.0

    def test_negative_offsets(self):
        values = [0x8000, 0x8000 - 4, 0x8000 - 8, 0x8000 - 4]
        trace = BusTrace.from_values(values, 32)
        coder = WorkZoneTranscoder(32, zones=2, offset_bits=4)
        assert list(coder.roundtrip(trace)) == values

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkZoneTranscoder(32, zones=0)
        with pytest.raises(ValueError):
            WorkZoneTranscoder(32, offset_bits=0)
        with pytest.raises(ValueError):
            WorkZoneTranscoder(4, offset_bits=6)  # one-hot field too wide


class TestAdaptiveCodebook:
    def test_roundtrip(self, rand_trace):
        coder = AdaptiveCodebookTranscoder(32, 8)
        assert np.array_equal(coder.roundtrip(rand_trace).values, rand_trace.values)

    def test_roundtrip_locality(self, local_trace):
        coder = AdaptiveCodebookTranscoder(32, 4)
        assert np.array_equal(coder.roundtrip(local_trace).values, local_trace.values)

    def test_learns_recurring_delta(self):
        # Alternating A/B traffic has one recurring transition vector;
        # after learning it, each step costs ~1 select-wire toggle.
        values = [0x12345678, 0x0BADF00D] * 400
        trace = BusTrace.from_values(values, 32)
        coder = AdaptiveCodebookTranscoder(32, 4)
        phys = coder.encode_trace(trace)
        tail = count_activity(phys[100:])
        # ~2 select-wire toggles per step once learned, vs ~16 data
        # toggles unencoded.
        assert tail.total_transitions <= 2 * (len(trace) - 100)

    def test_identity_pattern_pinned(self):
        coder = AdaptiveCodebookTranscoder(32, 4)
        coder.encode_trace(random_trace(500, seed=2))
        assert coder._book[0] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveCodebookTranscoder(32, 3)  # not a power of two
        with pytest.raises(ValueError):
            AdaptiveCodebookTranscoder(32, 1)
