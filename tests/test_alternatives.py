"""Unit tests for the shielding and low-swing wire alternatives."""

import pytest

from repro.energy import BusEnergyModel, count_activity
from repro.traces import BusTrace
from repro.wires import (
    TECH_013,
    WireModel,
    low_swing_energy,
    shielded_bus_energy,
    shielded_wire_count,
)


@pytest.fixture
def counts():
    trace = BusTrace.from_values([0x5, 0xA, 0x5, 0xA, 0x0], width=4)
    return count_activity(trace)


@pytest.fixture
def wire():
    return WireModel(TECH_013, 10.0)


class TestShielding:
    def test_wire_count_doubles_minus_one(self):
        assert shielded_wire_count(32) == 63
        assert shielded_wire_count(1) == 1

    def test_rejects_zero_wires(self):
        with pytest.raises(ValueError):
            shielded_wire_count(0)

    def test_energy_is_tau_times_worst_case(self, counts, wire):
        per_transition = (
            wire.self_energy_per_transition + 2 * wire.coupling_energy_per_event
        )
        assert shielded_bus_energy(counts, wire) == pytest.approx(
            counts.total_transitions * per_transition
        )

    def test_independent_of_kappa(self, wire):
        # Opposite-switching and same-direction traces with equal tau
        # cost the same once shielded.
        opposite = count_activity(
            BusTrace.from_values([0b10, 0b01] * 10, width=2, initial=0b01)
        )
        together = count_activity(
            BusTrace.from_values([0b11, 0b00] * 10, width=2, initial=0b00)
        )
        assert opposite.total_transitions == together.total_transitions
        assert shielded_bus_energy(opposite, wire) == pytest.approx(
            shielded_bus_energy(together, wire)
        )

    def test_quiet_bus_costs_nothing(self, wire):
        counts = count_activity(BusTrace.from_values([0, 0, 0], width=4))
        assert shielded_bus_energy(counts, wire) == 0.0


class TestLowSwing:
    def test_quadratic_in_swing(self, counts, wire):
        full = low_swing_energy(counts, wire, 1.0, receiver_energy_per_cycle=0.0)
        half = low_swing_energy(counts, wire, 0.5, receiver_energy_per_cycle=0.0)
        assert half == pytest.approx(full / 4)

    def test_full_swing_no_receiver_equals_raw(self, counts, wire):
        raw = wire.bus_energy(counts.total_transitions, counts.total_coupling)
        assert low_swing_energy(
            counts, wire, 1.0, receiver_energy_per_cycle=0.0
        ) == pytest.approx(raw)

    def test_receiver_cost_scales_with_cycles_and_wires(self, counts, wire):
        base = low_swing_energy(counts, wire, 0.4, receiver_energy_per_cycle=0.0)
        with_receiver = low_swing_energy(
            counts, wire, 0.4, receiver_energy_per_cycle=1e-15
        )
        expected = 1e-15 * counts.cycles * counts.tau.shape[0]
        assert with_receiver - base == pytest.approx(expected)

    def test_receiver_floor_dominates_quiet_buses(self, wire):
        counts = count_activity(BusTrace.from_values([0] * 100, width=8))
        energy = low_swing_energy(counts, wire, 0.4)
        assert energy > 0  # receivers burn even when the bus idles

    def test_validation(self, counts, wire):
        with pytest.raises(ValueError):
            low_swing_energy(counts, wire, 0.0)
        with pytest.raises(ValueError):
            low_swing_energy(counts, wire, 1.5)
        with pytest.raises(ValueError):
            low_swing_energy(counts, wire, 0.4, receiver_energy_per_cycle=-1.0)


class TestQuadraticCouplingOption:
    def test_opposite_toggles_cost_four(self):
        trace = BusTrace.from_values([0b01], width=2, initial=0b10)
        linear = count_activity(trace).total_coupling
        quadratic = count_activity(trace, quadratic_coupling=True).total_coupling
        assert linear == 2
        assert quadratic == 4

    def test_lone_toggle_same_in_both_models(self):
        trace = BusTrace.from_values([0b01], width=2, initial=0b00)
        assert (
            count_activity(trace).total_coupling
            == count_activity(trace, quadratic_coupling=True).total_coupling
        )

    def test_quadratic_never_below_linear(self, gcc_register):
        linear = count_activity(gcc_register).total_coupling
        quadratic = count_activity(
            gcc_register, quadratic_coupling=True
        ).total_coupling
        assert quadratic >= linear
