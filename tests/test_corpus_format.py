"""Tests for the versioned corpus on-disk format and its store layer.

The manifest validator must reject every malformed manifest with a
one-line :class:`CorpusFormatError` (the CLI contract), including the
hostile cases: wrong format version, non-bare shard filenames (path
traversal), duplicate stream names, drifted key sets.  The store layer
must detect every content tamper — a flipped byte, a truncated shard,
an edited cycle count — via the manifest's storage-independent SHA-256
digest, on both the streaming and the materializing read paths.
"""

import json
import os

import numpy as np
import pytest

from repro.corpus import (
    CORPUS_FORMAT,
    MANIFEST_NAME,
    CorpusFormatError,
    CorpusReader,
    CorpusWriter,
    ShardMeta,
    digest_values,
    import_binary,
    import_npz,
    load_manifest,
    save_manifest,
)
from repro.traces import BusTrace, TraceCache, save_trace


def make_corpus(directory, traces):
    """Build a corpus of named in-memory traces; returns the manifest path."""
    with CorpusWriter(str(directory)) as writer:
        for name, trace in traces.items():
            writer.add_trace(name, trace, source=f"test:{name}")
    return os.path.join(str(directory), MANIFEST_NAME)


def small_trace(seed=0, length=300, width=16):
    rng = np.random.default_rng(seed)
    return BusTrace(
        rng.integers(0, 1 << width, size=length, dtype=np.uint64),
        width,
        f"t{seed}",
    )


class TestDigest:
    def test_digest_is_chunking_independent(self):
        values = np.arange(1000, dtype=np.uint64)
        one = digest_values([values])
        many = digest_values([values[:7], values[7:130], values[130:]])
        assert one == many

    def test_digest_is_storage_independent_raw_vs_npz(self, tmp_path):
        trace = small_trace(3)
        raw_dir, npz_dir = tmp_path / "raw", tmp_path / "npz"
        make_corpus(raw_dir, {"s": trace})
        archive = tmp_path / "s.npz"
        save_trace(trace, str(archive))
        with CorpusWriter(str(npz_dir)) as writer:
            import_npz(writer, str(archive), name="s", convert=False)
        raw_meta = CorpusReader(str(raw_dir)).meta("s")
        npz_meta = CorpusReader(str(npz_dir)).meta("s")
        assert raw_meta.sha256 == npz_meta.sha256
        assert raw_meta.kind == "raw" and npz_meta.kind == "npz"


class TestManifestValidation:
    def tamper(self, tmp_path, mutate):
        """Build a one-shard corpus, rewrite its manifest via ``mutate``."""
        path = make_corpus(tmp_path, {"s": small_trace()})
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        mutate(document)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        return str(tmp_path)

    def test_missing_manifest_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_manifest(str(tmp_path))

    def test_malformed_json_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(CorpusFormatError, match="unreadable manifest"):
            load_manifest(str(tmp_path))

    def test_wrong_format_version_rejected(self, tmp_path):
        directory = self.tamper(
            tmp_path, lambda d: d.update(format=CORPUS_FORMAT + 1)
        )
        with pytest.raises(CorpusFormatError, match="unsupported corpus format"):
            load_manifest(directory)

    def test_missing_shard_key_rejected(self, tmp_path):
        directory = self.tamper(tmp_path, lambda d: d["shards"][0].pop("sha256"))
        with pytest.raises(CorpusFormatError, match="missing key"):
            load_manifest(directory)

    def test_unknown_shard_key_rejected(self, tmp_path):
        directory = self.tamper(
            tmp_path, lambda d: d["shards"][0].update(surprise=1)
        )
        with pytest.raises(CorpusFormatError, match="unknown key"):
            load_manifest(directory)

    def test_path_traversal_filename_rejected(self, tmp_path):
        directory = self.tamper(
            tmp_path,
            lambda d: d["shards"][0].update(file="../../etc/passwd"),
        )
        with pytest.raises(CorpusFormatError, match="bare filename"):
            load_manifest(directory)

    def test_duplicate_stream_names_rejected(self, tmp_path):
        directory = self.tamper(
            tmp_path, lambda d: d["shards"].append(dict(d["shards"][0]))
        )
        with pytest.raises(CorpusFormatError, match="duplicate stream name"):
            load_manifest(directory)

    def test_bad_width_and_digest_shape_rejected(self, tmp_path):
        directory = self.tamper(tmp_path, lambda d: d["shards"][0].update(width=65))
        with pytest.raises(CorpusFormatError, match="width must be 1..64"):
            load_manifest(directory)
        directory = self.tamper(
            tmp_path / "b", lambda d: d["shards"][0].update(sha256="DEADBEEF")
        )
        with pytest.raises(CorpusFormatError, match="64 lowercase hex"):
            load_manifest(directory)

    def test_unsupported_kind_rejected(self, tmp_path):
        directory = self.tamper(
            tmp_path, lambda d: d["shards"][0].update(kind="parquet")
        )
        with pytest.raises(CorpusFormatError, match="unsupported kind"):
            load_manifest(directory)

    def test_save_then_load_round_trips(self, tmp_path):
        meta = ShardMeta(
            name="s", file="s.u64", kind="raw", width=16, cycles=0,
            initial=0, sha256="0" * 64, source="test",
        )
        save_manifest(str(tmp_path), [meta])
        assert load_manifest(str(tmp_path)) == [meta]

    def test_error_string_is_one_line_with_path(self, tmp_path):
        directory = self.tamper(tmp_path, lambda d: d.update(format=99))
        with pytest.raises(CorpusFormatError) as excinfo:
            load_manifest(directory)
        message = str(excinfo.value)
        assert "\n" not in message and MANIFEST_NAME in message


class TestTamperDetection:
    def test_flipped_byte_fails_streaming_verify(self, tmp_path):
        make_corpus(tmp_path, {"s": small_trace(1)})
        meta = CorpusReader(str(tmp_path)).meta("s")
        shard = tmp_path / meta.file
        blob = bytearray(shard.read_bytes())
        blob[100] ^= 0x01
        shard.write_bytes(bytes(blob))
        reader = CorpusReader(str(tmp_path))
        with pytest.raises(CorpusFormatError, match="digest mismatch"):
            for _chunk in reader.chunks("s"):
                pass
        with pytest.raises(CorpusFormatError, match="digest mismatch"):
            reader.verify()

    def test_unverified_read_skips_the_digest(self, tmp_path):
        # verify=False is the documented fast path: corruption passes.
        make_corpus(tmp_path, {"s": small_trace(1)})
        meta = CorpusReader(str(tmp_path)).meta("s")
        shard = tmp_path / meta.file
        blob = bytearray(shard.read_bytes())
        blob[100] ^= 0x01
        shard.write_bytes(bytes(blob))
        chunks = list(CorpusReader(str(tmp_path)).chunks("s", verify=False))
        assert sum(len(c) for c in chunks) == meta.cycles

    def test_truncated_raw_shard_rejected_at_open(self, tmp_path):
        make_corpus(tmp_path, {"s": small_trace(2)})
        meta = CorpusReader(str(tmp_path)).meta("s")
        shard = tmp_path / meta.file
        shard.write_bytes(shard.read_bytes()[:-8])
        with pytest.raises(CorpusFormatError):
            CorpusReader(str(tmp_path))

    def test_length_mismatch_error_names_the_shard(self, tmp_path):
        """Manifest cycles vs shard bytes disagreeing must produce a
        one-line error that says *which* shard, in both directions."""
        make_corpus(tmp_path, {"alpha": small_trace(2), "beta": small_trace(3)})
        meta = CorpusReader(str(tmp_path)).meta("beta")
        shard = tmp_path / meta.file
        # Shard longer than the manifest says.
        shard.write_bytes(shard.read_bytes() + b"\x00" * 8)
        with pytest.raises(CorpusFormatError) as excinfo:
            CorpusReader(str(tmp_path))
        message = str(excinfo.value)
        assert "beta" in message and "\n" not in message
        # And shorter.
        shard.write_bytes(shard.read_bytes()[:-16])
        with pytest.raises(CorpusFormatError) as excinfo:
            CorpusReader(str(tmp_path))
        assert "beta" in str(excinfo.value)

    def test_materialized_trace_is_digest_checked(self, tmp_path):
        make_corpus(tmp_path, {"s": small_trace(4)})
        meta = CorpusReader(str(tmp_path)).meta("s")
        shard = tmp_path / meta.file
        blob = bytearray(shard.read_bytes())
        blob[0] ^= 0xFF
        shard.write_bytes(bytes(blob))
        reader = CorpusReader(str(tmp_path))
        with pytest.raises(CorpusFormatError, match="digest mismatch"):
            reader.trace("s", cache=TraceCache(str(tmp_path / "cache")))


class TestStoreRoundTrip:
    def test_write_read_bit_identical(self, tmp_path):
        traces = {f"s{i}": small_trace(i) for i in range(3)}
        make_corpus(tmp_path, traces)
        reader = CorpusReader(str(tmp_path))
        assert sorted(reader.names()) == sorted(traces)
        for name, trace in traces.items():
            parts = list(reader.chunks(name, chunk_cycles=37))
            got = BusTrace.concat(*parts)
            assert np.array_equal(got.values, trace.values)
            assert got.initial == trace.initial
            assert got.width == trace.width

    def test_chunk_initials_chain_from_manifest(self, tmp_path):
        trace = BusTrace.from_values([5, 9, 9, 2, 7], width=8, name="s")
        with CorpusWriter(str(tmp_path)) as writer:
            writer.add_chunks("s", [trace.values], width=8, initial=3)
        parts = list(CorpusReader(str(tmp_path)).chunks("s", chunk_cycles=2))
        assert parts[0].initial == 3
        assert parts[1].initial == 9  # last value of the previous chunk
        assert parts[2].initial == 2

    def test_unknown_stream_error_lists_available(self, tmp_path):
        make_corpus(tmp_path, {"alpha": small_trace(), "beta": small_trace(1)})
        with pytest.raises(KeyError, match="alpha"):
            CorpusReader(str(tmp_path)).meta("gamma")

    def test_duplicate_add_rejected(self, tmp_path):
        with CorpusWriter(str(tmp_path)) as writer:
            writer.add_trace("s", small_trace())
            with pytest.raises(ValueError, match="already has a stream"):
                writer.add_trace("s", small_trace(1))

    def test_append_to_existing_corpus(self, tmp_path):
        make_corpus(tmp_path, {"first": small_trace(0)})
        with CorpusWriter(str(tmp_path)) as writer:
            writer.add_trace("second", small_trace(1))
        reader = CorpusReader(str(tmp_path))
        assert sorted(reader.names()) == ["first", "second"]
        reader.verify()

    def test_failed_build_leaves_no_manifest(self, tmp_path):
        directory = tmp_path / "broken"
        with pytest.raises(RuntimeError):
            with CorpusWriter(str(directory)) as writer:
                writer.add_trace("s", small_trace())
                raise RuntimeError("simulated build failure")
        assert not os.path.exists(directory / MANIFEST_NAME)

    def test_values_masked_to_width_on_ingest(self, tmp_path):
        with CorpusWriter(str(tmp_path)) as writer:
            writer.add_chunks(
                "s", [np.array([0x1FF, 0x3FF], dtype=np.uint64)], width=8
            )
        trace = CorpusReader(str(tmp_path)).trace(
            "s", cache=TraceCache(str(tmp_path / "cache"))
        )
        assert list(trace.values) == [0xFF, 0xFF]

    def test_trace_cache_hit_is_content_keyed(self, tmp_path):
        trace = small_trace(9)
        make_corpus(tmp_path / "a", {"one": trace})
        make_corpus(tmp_path / "b", {"other-name": trace})
        cache = TraceCache(str(tmp_path / "cache"))
        first = CorpusReader(str(tmp_path / "a")).trace("one", cache=cache)
        # Same content under a different name in a different corpus:
        # the digest key makes this a cache hit, renamed on the way out.
        second = CorpusReader(str(tmp_path / "b")).trace("other-name", cache=cache)
        assert np.array_equal(first.values, second.values)
        assert second.name == "other-name"


class TestImporters:
    def test_import_binary_round_trips(self, tmp_path):
        words = np.arange(5000, dtype=np.uint64)
        raw = tmp_path / "dump.u64"
        raw.write_bytes(words.astype("<u8").tobytes())
        with CorpusWriter(str(tmp_path / "c")) as writer:
            meta = import_binary(writer, str(raw), 16, name="dump")
        assert meta.cycles == 5000
        trace = CorpusReader(str(tmp_path / "c")).trace(
            "dump", cache=TraceCache(str(tmp_path / "cache"))
        )
        assert np.array_equal(trace.values, words & np.uint64(0xFFFF))

    def test_import_binary_rejects_ragged_file(self, tmp_path):
        raw = tmp_path / "ragged.u64"
        raw.write_bytes(b"\x00" * 12)  # not a multiple of 8
        with CorpusWriter(str(tmp_path / "c")) as writer:
            with pytest.raises(CorpusFormatError, match="multiple of 8"):
                import_binary(writer, str(raw), 16)

    def test_import_npz_converts_to_raw_by_default(self, tmp_path):
        trace = small_trace(5)
        archive = tmp_path / "t.npz"
        save_trace(trace, str(archive))
        with CorpusWriter(str(tmp_path / "c")) as writer:
            meta = import_npz(writer, str(archive))
        assert meta.kind == "raw"
        reader = CorpusReader(str(tmp_path / "c"))
        got = BusTrace.concat(*reader.chunks(meta.name))
        assert np.array_equal(got.values, trace.values)
