"""Span tracing: nesting, attributes, the no-op fast path, adoption.

Covers the :mod:`repro.obs.spans` contract the instrumentation relies
on: parent/child linkage through the per-thread stack, attribute
capture (including the automatic ``error`` attribute), the disabled
path returning one shared allocation-free singleton, the bounded
buffer, and :meth:`~repro.obs.SpanTracer.adopt` for fork workers.
"""

import pickle
import threading

import pytest

from repro import obs
from repro.obs.spans import NO_SPAN, SpanRecord, SpanTracer


@pytest.fixture()
def clean_obs():
    previous = obs.set_enabled(True)
    obs.reset()
    yield
    obs.reset()
    obs.set_enabled(previous)


# -- nesting and attributes ----------------------------------------------


def test_nested_spans_link_parent_and_depth():
    tracer = SpanTracer()
    with tracer.span("outer", {"workload": "gcc"}):
        with tracer.span("inner", {}):
            pass
    records = {r.name: r for r in tracer.records()}
    outer, inner = records["outer"], records["inner"]
    assert outer.parent_id == 0 and outer.depth == 0
    assert inner.parent_id == outer.span_id and inner.depth == 1
    # Completion order: inner closes first.
    assert [r.name for r in tracer.records()] == ["inner", "outer"]


def test_attrs_captured_and_settable_mid_span():
    tracer = SpanTracer()
    with tracer.span("cell", {"workload": "gcc"}) as span:
        span.set(size=8, bus="register")
    (record,) = tracer.records()
    assert record.attrs == {"workload": "gcc", "size": 8, "bus": "register"}


def test_duration_measured_and_exposed():
    tracer = SpanTracer()
    with tracer.span("timed", {}) as span:
        pass
    (record,) = tracer.records()
    assert record.dur >= 0.0
    assert span.dur == record.dur  # bench reads the span's own duration


def test_exception_recorded_without_suppression():
    tracer = SpanTracer()
    with pytest.raises(KeyError):
        with tracer.span("failing", {}):
            raise KeyError("boom")
    (record,) = tracer.records()
    assert record.attrs["error"] == "KeyError"


def test_sibling_threads_do_not_nest_into_each_other():
    tracer = SpanTracer()

    def work():
        with tracer.span("thread-root", {}):
            pass

    with tracer.span("main-root", {}):
        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
    for record in tracer.records():
        assert record.depth == 0
        assert record.parent_id == 0


def test_records_pickle():
    tracer = SpanTracer()
    with tracer.span("cell", {"workload": "gcc"}):
        pass
    clone = pickle.loads(pickle.dumps(tracer.records()))
    assert clone[0].name == "cell"
    assert isinstance(clone[0], SpanRecord)


# -- bounded buffer -------------------------------------------------------


def test_buffer_bounds_and_counts_drops():
    tracer = SpanTracer(max_spans=3)
    for i in range(5):
        with tracer.span(f"s{i}", {}):
            pass
    assert len(tracer.records()) == 3
    assert tracer.dropped == 2


def test_adopt_merges_and_respects_bound():
    parent = SpanTracer(max_spans=4)
    with parent.span("local", {}):
        pass
    worker = SpanTracer()
    for i in range(5):
        with worker.span(f"remote{i}", {}):
            pass
    parent.adopt(worker.records())
    assert len(parent.records()) == 4
    assert parent.dropped == 2


def test_mark_take_since_ships_only_new_spans():
    tracer = SpanTracer()
    with tracer.span("before", {}):
        pass
    mark = tracer.mark()
    with tracer.span("after", {}):
        pass
    shipped = tracer.take_since(mark)
    assert [r.name for r in shipped] == ["after"]


# -- the facade and the no-op fast path ----------------------------------


def test_disabled_span_is_the_shared_singleton():
    previous = obs.set_enabled(False)
    try:
        first = obs.span("anything", workload="gcc")
        second = obs.span("else")
        assert first is NO_SPAN and second is NO_SPAN
        with first as span:
            assert span.set(x=1) is NO_SPAN  # still no allocation
    finally:
        obs.set_enabled(previous)


def test_noop_span_has_no_per_use_state():
    # __slots__ = () ⇒ the singleton cannot accumulate state, which is
    # what makes sharing one instance across all disabled call sites safe.
    assert NO_SPAN.__slots__ == ()
    with pytest.raises(AttributeError):
        NO_SPAN.anything = 1


def test_disabled_counters_record_nothing():
    previous = obs.set_enabled(False)
    obs.reset()
    try:
        obs.inc("ghost")
        obs.set_gauge("ghost.g", 1)
        obs.observe("ghost.h", 1.0)
        with obs.span("ghost.span"):
            pass
        assert obs.get_registry().counter("ghost") == 0
        assert obs.get_registry().gauge("ghost.g") is None
        assert obs.get_tracer().records() == []
    finally:
        obs.set_enabled(previous)
        obs.reset()


def test_enabled_facade_feeds_global_sinks(clean_obs):
    with obs.span("table3.cell", workload="gcc", entries=8):
        obs.inc("trace_cache.hits", layer="memory")
    (record,) = obs.get_tracer().records()
    assert record.name == "table3.cell"
    assert record.attrs == {"workload": "gcc", "entries": 8}
    assert obs.get_registry().counter("trace_cache.hits", layer="memory") == 1


def test_env_kill_switch_parsing(monkeypatch):
    for value in ("0", "false", "OFF", "no"):
        monkeypatch.setenv(obs.OBS_ENV, value)
        assert obs.enabled_by_env() is False
    for value in ("1", "true", "on", ""):
        monkeypatch.setenv(obs.OBS_ENV, value)
        assert obs.enabled_by_env() is True
    monkeypatch.delenv(obs.OBS_ENV)
    assert obs.enabled_by_env() is True


def test_timed_always_exposes_seconds(clean_obs):
    with obs.timed("block_s", stage="test") as timer:
        pass
    assert timer.seconds >= 0.0
    assert obs.get_registry().histogram("block_s", stage="test")["count"] == 1
    obs.set_enabled(False)
    with obs.timed("block_s", stage="off") as timer:
        pass
    assert timer.seconds >= 0.0  # timing works even when recording is off
    obs.set_enabled(True)
    assert obs.get_registry().histogram("block_s", stage="off") is None
