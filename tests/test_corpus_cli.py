"""End-to-end tests for the ``repro corpus`` CLI verbs.

Drives the real argument parser and command functions — build, import,
ls, verify, record, replay, plus ``workloads --list`` — against
temporary corpora, and pins the ``repro: error:`` one-line contract for
every corpus failure mode a user can hit from the shell.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.corpus import CorpusReader, MANIFEST_NAME
from repro.traces import BusTrace, save_trace


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return captured.out


def run_cli_error(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 1
    assert captured.err.startswith("repro: error:")
    assert captured.err.count("\n") == 1  # one line, per the contract
    return captured.err


@pytest.fixture()
def built(tmp_path, capsys):
    """A small generator-built corpus directory."""
    directory = str(tmp_path / "corpus")
    run_cli(
        capsys, "corpus", "build", directory,
        "--profile", "mixed", "--seed", "7", "--streams", "3",
        "--cycles", "600", "--width", "16",
    )
    return directory


class TestBuildLsVerify:
    def test_build_creates_manifest_and_streams(self, built):
        reader = CorpusReader(built)
        assert len(reader.names()) == 3
        for name in reader.names():
            assert name.startswith("gen7/")
            assert reader.meta(name).cycles == 600
            assert reader.meta(name).width == 16

    def test_build_is_deterministic(self, tmp_path, capsys, built):
        other = str(tmp_path / "again")
        run_cli(
            capsys, "corpus", "build", other,
            "--profile", "mixed", "--seed", "7", "--streams", "3",
            "--cycles", "600", "--width", "16",
        )
        first = {m.name: m.sha256 for m in CorpusReader(built).shards}
        second = {m.name: m.sha256 for m in CorpusReader(other).shards}
        assert first == second

    def test_ls_shows_streams_digests_and_sources(self, built, capsys):
        out = run_cli(capsys, "corpus", "ls", built)
        reader = CorpusReader(built)
        for name in reader.names():
            assert name in out
            assert reader.meta(name).sha256[:16] in out
        assert "gen(profile=mix" in out

    def test_verify_reports_stream_count(self, built, capsys):
        out = run_cli(capsys, "corpus", "verify", built)
        assert "3 stream(s)" in out and "ok" in out

    def test_verify_catches_corruption(self, built, capsys):
        meta = CorpusReader(built).meta(CorpusReader(built).names()[0])
        shard = f"{built}/{meta.file}"
        with open(shard, "r+b") as handle:
            handle.seek(64)
            byte = handle.read(1)
            handle.seek(64)
            handle.write(bytes([byte[0] ^ 1]))
        err = run_cli_error(capsys, "corpus", "verify", built)
        assert "digest mismatch" in err


class TestImport:
    def test_import_raw_binary(self, tmp_path, capsys):
        raw = tmp_path / "bus.u64"
        raw.write_bytes(np.arange(700, dtype="<u8").tobytes())
        directory = str(tmp_path / "c")
        run_cli(
            capsys, "corpus", "import", directory, str(raw), "--width", "16"
        )
        reader = CorpusReader(directory)
        assert reader.meta("bus").cycles == 700

    def test_import_npz(self, tmp_path, capsys):
        trace = BusTrace.from_values([1, 2, 3, 2, 1], width=8, name="t")
        archive = tmp_path / "t.npz"
        save_trace(trace, str(archive))
        directory = str(tmp_path / "c")
        run_cli(capsys, "corpus", "import", directory, str(archive))
        assert CorpusReader(directory).meta("t").kind == "raw"

    def test_import_binary_without_width_is_one_line_error(
        self, tmp_path, capsys
    ):
        raw = tmp_path / "bus.u64"
        raw.write_bytes(b"\x00" * 16)
        err = run_cli_error(
            capsys, "corpus", "import", str(tmp_path / "c"), str(raw)
        )
        assert "--width" in err


class TestRecordReplay:
    def test_record_then_replay_prints_savings(self, tmp_path, capsys):
        directory = str(tmp_path / "rec")
        run_cli(
            capsys, "corpus", "record", directory, "gzip",
            "--cycles", "2000", "--bus", "register",
        )
        assert CorpusReader(directory).names() == ["gzip/register"]
        out = run_cli(
            capsys, "corpus", "replay", directory, "gzip/register",
            "--coder", "window8",
        )
        assert "savings" in out and "%" in out

    def test_record_unknown_workload_is_one_line_error(self, tmp_path, capsys):
        err = run_cli_error(
            capsys, "corpus", "record", str(tmp_path / "rec"), "no-such",
            "--cycles", "100",
        )
        assert "no-such" in err

    def test_replay_unknown_stream_lists_available(self, built, capsys):
        err = run_cli_error(capsys, "corpus", "replay", built, "nope")
        assert "gen7/" in err  # the error names what IS there


class TestWorkloadsList:
    def test_list_enumerates_suite_and_corpus(self, built, capsys):
        out = run_cli(capsys, "workloads", "--list", "--corpus", built)
        assert "gcc" in out and "suite" in out
        assert "gen7/" in out and "corpus/raw" in out
        digest = CorpusReader(built).meta(CorpusReader(built).names()[0]).sha256
        assert digest[:16] in out

    def test_list_without_corpus_still_lists_suite(self, capsys):
        out = run_cli(capsys, "workloads", "--list")
        assert "gcc" in out and "swim" in out


class TestErrorContract:
    def test_ls_on_missing_directory(self, tmp_path, capsys):
        err = run_cli_error(capsys, "corpus", "ls", str(tmp_path / "nope"))
        assert "corpus" in err.lower() or "manifest" in err

    def test_ls_on_directory_without_manifest(self, tmp_path, capsys):
        err = run_cli_error(capsys, "corpus", "ls", str(tmp_path))
        assert MANIFEST_NAME in err

    def test_build_rejects_unknown_profile(self, tmp_path, capsys):
        err = run_cli_error(
            capsys, "corpus", "build", str(tmp_path / "c"),
            "--profile", "nosuch",
        )
        assert "profile" in err
