"""Unit tests for the SPEC95-substitute workload suite."""

import numpy as np
import pytest

from repro.traces import window_unique_fraction
from repro.workloads import (
    FP_WORKLOADS,
    INT_WORKLOADS,
    WORKLOADS,
    locality_trace,
    memory_trace,
    random_trace,
    register_trace,
    run_workload,
    suite_traces,
    workload_names,
)

FAST = 4000


class TestRegistry:
    def test_seventeen_benchmarks(self):
        assert len(WORKLOADS) == 17

    def test_int_fp_partition(self):
        assert set(INT_WORKLOADS) | set(FP_WORKLOADS) == set(WORKLOADS)
        assert not set(INT_WORKLOADS) & set(FP_WORKLOADS)

    def test_expected_names_present(self):
        for name in ("gcc", "compress", "swim", "su2cor", "turb3d", "li"):
            assert name in WORKLOADS

    def test_workload_names_order(self):
        names = workload_names()
        assert names[: len(INT_WORKLOADS)] == list(INT_WORKLOADS)

    def test_seeds_stable(self):
        assert WORKLOADS["gcc"].seed == WORKLOADS["gcc"].seed
        assert WORKLOADS["gcc"].seed != WORKLOADS["swim"].seed


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestEveryKernel:
    def test_runs_and_produces_traces(self, name):
        result = run_workload(name, FAST)
        assert result.stats.instructions > 500
        assert len(result.register_trace) == result.stats.cycles
        # Every kernel loops longer than any trace budget.
        assert not result.stats.halted

    def test_traces_not_degenerate(self, name):
        trace = register_trace(name, FAST)
        assert trace.unique_values().size > 10


class TestDeterminism:
    def test_same_run_twice_identical(self):
        run_workload.cache_clear()
        first = register_trace("compress", FAST).values.copy()
        run_workload.cache_clear()
        second = register_trace("compress", FAST).values
        assert np.array_equal(first, second)

    def test_memoisation_returns_same_object(self):
        assert run_workload("gcc", FAST) is run_workload("gcc", FAST)


class TestSuiteTraces:
    def test_selects_bus(self):
        regs = suite_traces("register", ("gcc",), FAST)
        mems = suite_traces("memory", ("gcc",), FAST)
        assert not np.array_equal(regs["gcc"].values, mems["gcc"].values)

    def test_rejects_unknown_bus(self):
        with pytest.raises(ValueError):
            suite_traces("axi", ("gcc",), FAST)

    def test_rejects_unknown_workload(self):
        with pytest.raises(KeyError):
            register_trace("spice", FAST)

    def test_default_selects_all(self):
        traces = suite_traces("register", None, FAST)
        assert set(traces) == set(WORKLOADS)


class TestSynthetic:
    def test_random_trace_deterministic(self):
        a = random_trace(100, seed=3).values
        b = random_trace(100, seed=3).values
        assert np.array_equal(a, b)

    def test_random_trace_uses_full_width(self):
        trace = random_trace(5000, width=32, seed=1)
        assert int(trace.values.max()) > 2**31

    def test_locality_trace_has_more_reuse_than_random(self):
        local = locality_trace(3000, seed=2)
        rand = random_trace(3000, seed=2)
        assert window_unique_fraction(local, 16) < window_unique_fraction(rand, 16)

    def test_locality_fraction_validation(self):
        with pytest.raises(ValueError):
            locality_trace(10, repeat_fraction=0.9, reuse_fraction=0.9, seed=0)
        with pytest.raises(ValueError):
            locality_trace(10, repeat_fraction=-0.1, seed=0)
        with pytest.raises(ValueError):
            locality_trace(10, working_set=0, seed=0)

    def test_seed_is_required(self):
        # The determinism contract: no silent default seed.
        with pytest.raises(TypeError):
            random_trace(10)
        with pytest.raises(TypeError):
            locality_trace(10)

    def test_pure_repeat_trace(self):
        trace = locality_trace(
            50, repeat_fraction=1.0, reuse_fraction=0.0, stride_fraction=0.0, seed=0
        )
        assert trace.unique_values().size == 1


class TestTraceCharacter:
    def test_fp_kernels_touch_memory(self):
        # Streaming FP kernels must produce live memory-bus traffic.
        trace = memory_trace("swim", FAST)
        assert trace.unique_values().size > 20

    def test_int_kernels_have_register_reuse(self):
        # Figure 8's premise: small windows catch real reuse.
        trace = register_trace("m88ksim", FAST)
        assert window_unique_fraction(trace, 16) < 0.6
