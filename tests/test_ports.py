"""Tests for the shared ``--port 0`` announce/parse contract.

Every serving CLI prints one stable stdout line per listening socket;
the supervisor (and scripts) parse it back.  These tests pin the line
format and the deadline/EOF behaviour of the async reader the
supervisor points at a worker's stdout pipe.
"""

import asyncio

import pytest

from repro.serve import ports


def run(coro):
    return asyncio.run(coro)


class TestFormat:
    def test_round_trip(self):
        line = ports.format_listening("serve", "127.0.0.1", 40001)
        assert line == "repro serve: listening on 127.0.0.1:40001"
        assert ports.parse_listening(line) == ("serve", "127.0.0.1", 40001)

    def test_component_is_free_form(self):
        line = ports.format_listening("cluster: worker w3", "127.0.0.1", 7)
        assert ports.parse_listening(line) == ("cluster: worker w3", "127.0.0.1", 7)

    def test_non_matching_lines_parse_to_none(self):
        assert ports.parse_listening("") is None
        assert ports.parse_listening("repro serve: draining") is None
        assert ports.parse_listening("listening on 127.0.0.1:1") is None

    def test_announce_writes_one_line(self, capsys):
        ports.announce_listening("serve", "127.0.0.1", 1234)
        assert capsys.readouterr().out == "repro serve: listening on 127.0.0.1:1234\n"


def reader_with(data: bytes, at_eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if at_eof:
        reader.feed_eof()
    return reader


class TestReadListening:
    def test_skips_noise_until_the_announcement(self):
        async def scenario():
            reader = reader_with(
                b"some wrapper banner\n"
                b"repro serve: listening on 127.0.0.1:40123\n"
            )
            return await ports.read_listening(reader, timeout_s=1.0)

        assert run(scenario()) == ("serve", "127.0.0.1", 40123)

    def test_eof_before_announcement_is_connection_error(self):
        async def scenario():
            with pytest.raises(ConnectionError):
                await ports.read_listening(reader_with(b"crash\n"), timeout_s=1.0)

        run(scenario())

    def test_silence_past_deadline_is_timeout(self):
        async def scenario():
            silent = asyncio.StreamReader()  # never fed, never EOF
            with pytest.raises(TimeoutError):
                await ports.read_listening(silent, timeout_s=0.05)

        run(scenario())
