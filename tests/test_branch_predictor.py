"""Tests for the bimodal branch predictor pipeline option."""

import numpy as np
import pytest

from repro.cpu import Machine, PipelineConfig

LOOP = """
        li   r1, 200
        li   r2, 0
loop:   addi r2, r2, 1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
"""


def run(predictor, source=LOOP):
    machine = Machine(
        source=source, config=PipelineConfig(branch_predictor=predictor)
    )
    result = machine.run()
    return machine, result


class TestBimodal:
    def test_loop_branches_learned(self):
        _, result = run("bimodal")
        # A monotone loop mispredicts only during warm-up and at exit.
        assert result.stats.branch_mispredictions <= 4
        assert result.stats.taken_branches == 199

    def test_bimodal_faster_than_static_on_loops(self):
        _, static = run("static")
        _, bimodal = run("bimodal")
        assert bimodal.stats.cycles < static.stats.cycles

    def test_static_counts_no_mispredictions(self):
        _, result = run("static")
        assert result.stats.branch_mispredictions == 0

    def test_architectural_results_identical(self):
        m_static, _ = run("static")
        m_bimodal, _ = run("bimodal")
        assert (
            m_static.last_pipeline.registers[2]
            == m_bimodal.last_pipeline.registers[2]
            == 200
        )

    def test_alternating_branch_defeats_bimodal(self):
        # taken/not-taken alternation keeps a 2-bit counter guessing.
        source = """
            li   r1, 100
            li   r3, 0
    loop:   andi r4, r1, 1
            beq  r4, r0, even
            addi r3, r3, 1
    even:   addi r1, r1, -1
            bne  r1, r0, loop
            halt
        """
        _, result = run("bimodal", source)
        assert result.stats.branch_mispredictions > 20

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError):
            run("gshare")

    def test_bad_table_size_rejected(self):
        machine = Machine(
            source=LOOP,
            config=PipelineConfig(branch_predictor="bimodal", branch_table_size=100),
        )
        with pytest.raises(ValueError):
            machine.run()

    def test_traces_still_well_formed(self):
        machine, result = run("bimodal")
        assert len(result.register_trace) == result.stats.cycles
