"""The parallel sweep engine: deterministic merge and --jobs equivalence.

The contract under test: for every sweep in the analysis layer,
``jobs=N`` produces results *identical* to ``jobs=1`` — same values,
same order, same failure records — because cells are pure and the merge
is by input index, not completion order.
"""

import multiprocessing
import os

import pytest

from repro.analysis.experiments import (
    crossover_table,
    headline_transition_savings,
    isolated_suite_traces,
    robust_savings_sweep,
    savings_sweep,
)
from repro.analysis.faults_experiments import _seed_for, faults_sweep
from repro.analysis.parallel import (
    CellError,
    CellOutcome,
    parallel_map_cells,
    resolve_jobs,
)
from repro.coding import TransitionCoder
from repro.wires import TECHNOLOGIES

NAMES = ("gcc", "swim")
CYCLES = 1500

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _factory(_param):
    return TransitionCoder(32)


# -- parallel_map_cells unit behaviour ------------------------------------


def test_results_in_input_order_serial_and_parallel():
    cells = list(range(20))
    for jobs in (1, 3):
        outcomes = parallel_map_cells(lambda c: c * c, cells, jobs=jobs)
        assert [o.cell for o in outcomes] == cells
        assert [o.value for o in outcomes] == [c * c for c in cells]
        assert all(o.ok for o in outcomes)


def test_cell_errors_are_isolated_and_structured():
    def fn(c):
        if c == 2:
            raise ValueError("boom on 2")
        return c

    for jobs in (1, 3):
        outcomes = parallel_map_cells(fn, [0, 1, 2, 3], jobs=jobs)
        assert [o.ok for o in outcomes] == [True, True, False, True]
        error = outcomes[2].error
        assert isinstance(error, CellError)
        assert error.kind == "ValueError"
        assert error.message == "boom on 2"
        assert outcomes[2].value is None
        # Healthy neighbours are unaffected.
        assert [o.value for o in outcomes if o.ok] == [0, 1, 3]


def test_closures_need_not_pickle():
    """Cell functions may close over unpicklable state (fork inheritance)."""
    unpicklable = lambda x: x + 1  # noqa: E731 - the point of the test

    outcomes = parallel_map_cells(lambda c: unpicklable(c), [1, 2, 3], jobs=2)
    assert [o.value for o in outcomes] == [2, 3, 4]


def test_empty_cells():
    assert parallel_map_cells(lambda c: c, [], jobs=4) == []


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(5) == 5
    assert resolve_jobs(-3) == 1
    cpus = os.cpu_count() or 1
    assert resolve_jobs(None) == cpus
    assert resolve_jobs(0) == cpus


def test_outcome_ok_property():
    assert CellOutcome(cell=1, value=2).ok
    assert not CellOutcome(cell=1, error=CellError("E", "m")).ok


# -- per-cell watchdog ----------------------------------------------------


def _sleepy(cell):
    import time

    if cell == "slow":
        time.sleep(5.0)
    return cell


def test_watchdog_expiry_is_structured_timeout_error():
    outcomes = parallel_map_cells(_sleepy, ["a", "slow", "b"], jobs=1, timeout_s=0.15)
    assert [o.ok for o in outcomes] == [True, False, True]
    error = outcomes[1].error
    assert error.kind == "timeout"
    assert "watchdog" in error.message
    assert error.pid == os.getpid()  # serial path runs in-process
    assert error.elapsed_s >= 0.1
    # Healthy neighbours are unaffected by the expiry.
    assert [o.value for o in outcomes if o.ok] == ["a", "b"]


@pytest.mark.skipif(not HAVE_FORK, reason="parallel path needs fork")
def test_watchdog_works_inside_fork_workers():
    outcomes = parallel_map_cells(
        _sleepy, ["a", "slow", "b", "c"], jobs=2, timeout_s=0.15
    )
    assert [o.ok for o in outcomes] == [True, False, True, True]
    error = outcomes[1].error
    assert error.kind == "timeout"
    assert error.pid > 0
    assert error.elapsed_s >= 0.1


def test_no_timeout_means_unbounded():
    def quick_sleep(cell):
        import time

        time.sleep(0.05)
        return cell

    outcomes = parallel_map_cells(quick_sleep, [1], jobs=1, timeout_s=None)
    assert outcomes[0].ok


def test_watchdog_disarmed_after_cell():
    """The timer must not fire into the *next* cell (or the caller)."""
    import time

    outcomes = parallel_map_cells(
        _sleepy, ["slow", "a"], jobs=1, timeout_s=0.15
    )
    assert [o.ok for o in outcomes] == [False, True]
    time.sleep(0.25)  # if the alarm leaked, it would fire here and kill us


# -- sweep equivalence: jobs=N == jobs=1 ----------------------------------


@pytest.mark.skipif(not HAVE_FORK, reason="parallel path needs fork")
def test_savings_sweep_jobs_equivalence():
    serial = savings_sweep("register", _factory, (4, 8), names=NAMES, cycles=CYCLES, jobs=1)
    fanned = savings_sweep("register", _factory, (4, 8), names=NAMES, cycles=CYCLES, jobs=3)
    assert serial == fanned


@pytest.mark.skipif(not HAVE_FORK, reason="parallel path needs fork")
def test_robust_savings_sweep_jobs_equivalence():
    serial = robust_savings_sweep(
        "register", _factory, (8,), names=NAMES, cycles=CYCLES, jobs=1
    )
    fanned = robust_savings_sweep(
        "register", _factory, (8,), names=NAMES, cycles=CYCLES, jobs=3
    )
    assert serial.curves == fanned.curves
    assert serial.failures == fanned.failures


@pytest.mark.skipif(not HAVE_FORK, reason="parallel path needs fork")
def test_robust_savings_sweep_failures_identical_across_jobs():
    def exploding(param):
        raise RuntimeError(f"no coder for {param}")

    serial = robust_savings_sweep(
        "register", exploding, (8,), names=NAMES, cycles=CYCLES, jobs=1
    )
    fanned = robust_savings_sweep(
        "register", exploding, (8,), names=NAMES, cycles=CYCLES, jobs=3
    )
    assert serial.failures and not serial.curves
    assert [(f.workload, f.stage, f.kind, f.message) for f in serial.failures] == [
        (f.workload, f.stage, f.kind, f.message) for f in fanned.failures
    ]


@pytest.mark.skipif(not HAVE_FORK, reason="parallel path needs fork")
def test_headline_and_traces_jobs_equivalence():
    assert headline_transition_savings(
        lambda: TransitionCoder(32), names=NAMES, cycles=CYCLES, jobs=1
    ) == headline_transition_savings(
        lambda: TransitionCoder(32), names=NAMES, cycles=CYCLES, jobs=3
    )
    t1, f1 = isolated_suite_traces("register", NAMES, CYCLES, jobs=1)
    t2, f2 = isolated_suite_traces("register", NAMES, CYCLES, jobs=3)
    assert f1 == f2 == []
    assert list(t1) == list(t2)
    for name in t1:
        assert (t1[name].values == t2[name].values).all()


@pytest.mark.skipif(not HAVE_FORK, reason="parallel path needs fork")
def test_crossover_table_jobs_equivalence():
    serial = crossover_table(TECHNOLOGIES[:1], (8,), cycles=800, jobs=1)
    fanned = crossover_table(TECHNOLOGIES[:1], (8,), cycles=800, jobs=3)
    assert serial == fanned


@pytest.mark.skipif(not HAVE_FORK, reason="parallel path needs fork")
def test_faults_sweep_jobs_equivalence():
    serial = faults_sweep(
        lambda: TransitionCoder(32), (1e-4,), names=NAMES, cycles=CYCLES, jobs=1
    )
    fanned = faults_sweep(
        lambda: TransitionCoder(32), (1e-4,), names=NAMES, cycles=CYCLES, jobs=3
    )
    assert serial.cells == fanned.cells
    assert serial.failures == fanned.failures


@pytest.mark.skipif(not HAVE_FORK, reason="parallel path needs fork")
def test_faults_sweep_strict_raises_original_exception():
    def bad_factory():
        raise ValueError("factory boom")

    with pytest.raises(ValueError, match="factory boom"):
        faults_sweep(
            bad_factory,
            (1e-4,),
            names=("gcc",),
            cycles=CYCLES,
            keep_going=False,
            jobs=3,
        )


def test_seed_for_is_interpreter_stable():
    """The per-cell seed must not depend on PYTHONHASHSEED (it is
    derived via hashlib), so parallel workers and reruns agree."""
    assert _seed_for("gcc", "reset-both", 1e-5, 0) == 1096223602
    assert _seed_for("gcc", "reset-both", 1e-5, 1) == 1096223602 ^ 1
    assert _seed_for("gcc", "reset-both", 1e-4, 0) != _seed_for(
        "gcc", "reset-both", 1e-5, 0
    )
