"""Unit tests for the circuit energy/area/delay model (Table 2)."""

import pytest

from repro.hardware import (
    InversionCircuit,
    Op,
    OperationCounts,
    TranscoderCircuit,
    scale_design,
)
from repro.wires import TECH_007, TECH_010, TECH_013


class TestOperationCounts:
    def test_accumulates(self):
        ops = OperationCounts()
        ops.add(Op.SHIFT)
        ops.add(Op.SHIFT, 2)
        assert ops[Op.SHIFT] == 3
        assert ops[Op.SWAP] == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            OperationCounts().add(Op.SHIFT, -1)

    def test_addition_merges(self):
        a = OperationCounts()
        a.add(Op.CYCLE, 5)
        b = OperationCounts()
        b.add(Op.CYCLE, 3)
        b.add(Op.SWAP, 1)
        merged = a + b
        assert merged[Op.CYCLE] == 8
        assert merged[Op.SWAP] == 1
        assert merged.total == 9

    def test_as_dict_copy(self):
        ops = OperationCounts()
        ops.add(Op.COUNT, 2)
        d = ops.as_dict()
        d[Op.COUNT] = 99
        assert ops[Op.COUNT] == 2


class TestWindowCircuit:
    def test_under_5k_transistors(self):
        # The paper: the 8-entry window encoder is "less than 5k
        # transistors".
        circuit = TranscoderCircuit(TECH_013, num_entries=8, width=32)
        assert circuit.transistor_count < 5000

    def test_area_matches_table2(self):
        circuit = TranscoderCircuit(TECH_013, num_entries=8, width=32)
        assert circuit.area_um2 == pytest.approx(12400, rel=0.05)

    def test_area_scales_quadratically(self):
        base = TranscoderCircuit(TECH_013, num_entries=8, width=32)
        small = scale_design(base, TECH_007)
        ratio = (0.07 / 0.13) ** 2
        assert small.area_um2 == pytest.approx(base.area_um2 * ratio, rel=0.01)

    def test_leakage_matches_table2(self):
        targets = {TECH_013: 0.00088e-12, TECH_010: 0.00338e-12, TECH_007: 0.00787e-12}
        for tech, target in targets.items():
            circuit = TranscoderCircuit(tech, num_entries=8, width=32)
            assert circuit.leakage_energy_per_cycle == pytest.approx(
                target, rel=0.15
            ), tech.name

    def test_delay_matches_table2(self):
        circuit = TranscoderCircuit(TECH_013, num_entries=8, width=32)
        assert circuit.delay_seconds == pytest.approx(3.1e-9, rel=0.1)

    def test_every_op_has_positive_energy(self):
        circuit = TranscoderCircuit(TECH_013, num_entries=8, width=32, table_size=28)
        for op in Op:
            assert circuit.op_energy(op) > 0, op

    def test_energy_sums_counts(self):
        circuit = TranscoderCircuit(TECH_013)
        ops = OperationCounts()
        ops.add(Op.SHIFT, 3)
        assert circuit.energy(ops) == pytest.approx(3 * circuit.op_energy(Op.SHIFT))

    def test_smaller_node_cheaper_ops(self):
        for op in (Op.SHIFT, Op.CYCLE, Op.MATCH_LOW):
            e13 = TranscoderCircuit(TECH_013).op_energy(op)
            e07 = TranscoderCircuit(TECH_007).op_energy(op)
            assert e07 < e13


class TestContextCircuit:
    def test_context_has_more_transistors(self):
        window = TranscoderCircuit(TECH_013, num_entries=8, width=32)
        context = TranscoderCircuit(TECH_013, num_entries=8, width=32, table_size=28)
        # Section 5.3.4: counters + counter match are a large fraction
        # (~33% of area) on top of the window design.
        assert context.transistor_count > 1.5 * window.transistor_count

    def test_counter_area_fraction(self):
        context = TranscoderCircuit(TECH_013, num_entries=8, width=32, table_size=28)
        counter_transistors = (28 + 8) * 16 * (10 + 4)
        fraction = counter_transistors / context.transistor_count
        assert 0.2 < fraction < 0.5


class TestInversionCircuit:
    def test_energy_near_table2(self):
        # 1.76 pJ/cycle at moderate input activity.
        circuit = InversionCircuit(TECH_013, 32)
        energy = circuit.cycle_energy(input_bits_changed=10)
        assert 1.0e-12 < energy < 2.5e-12

    def test_energy_grows_with_activity(self):
        circuit = InversionCircuit(TECH_013, 32)
        assert circuit.cycle_energy(30) > circuit.cycle_energy(2)

    def test_idle_still_costs(self):
        # The CSA tree glitches even on quiet inputs.
        assert InversionCircuit(TECH_013, 32).cycle_energy(0) > 0

    def test_area_near_table2(self):
        assert InversionCircuit(TECH_013, 32).area_um2 == pytest.approx(4700, rel=0.15)

    def test_delay_near_table2(self):
        assert InversionCircuit(TECH_013, 32).delay_seconds == pytest.approx(
            2.2e-9, rel=0.15
        )
