"""MetricsRegistry: labels, merge semantics, and fork-delta shipping.

Pins the contract :mod:`repro.obs.registry` documents:

* counters **add** on merge;
* gauges are **last-write-wins**;
* histograms merge component-wise (count/sum add, min/max widen,
  buckets add);
* a fork worker's :func:`repro.obs.fork_delta` folded back through
  :func:`repro.obs.merge_child` makes ``--jobs N`` totals equal serial
  totals — exercised here through the real ``fork`` pool in
  :func:`repro.analysis.parallel.parallel_map_cells`.
"""

import multiprocessing

import pytest

from repro import obs
from repro.analysis.parallel import parallel_map_cells
from repro.obs.registry import HIST_BOUNDS, MetricsRegistry, format_key, parse_key


@pytest.fixture()
def clean_obs():
    """Fresh global sinks, collection forced on; restored afterwards."""
    previous = obs.set_enabled(True)
    obs.reset()
    yield
    obs.reset()
    obs.set_enabled(previous)


# -- key flattening -------------------------------------------------------


def test_format_key_plain_and_labelled():
    assert format_key("trace_cache.hits", {}) == "trace_cache.hits"
    key = format_key("coder.encodes", {"coder": "WindowTranscoder", "bus": "register"})
    assert key == "coder.encodes{bus=register, coder=WindowTranscoder}"


def test_format_key_label_order_is_stable():
    a = format_key("m", {"b": 2, "a": 1})
    b = format_key("m", {"a": 1, "b": 2})
    assert a == b == "m{a=1, b=2}"


def test_parse_key_round_trips():
    name, labels = parse_key(format_key("coder.encodes", {"coder": "X", "n": 8}))
    assert name == "coder.encodes"
    assert labels == {"coder": "X", "n": "8"}  # values come back as strings
    assert parse_key("plain.counter") == ("plain.counter", {})


# -- accumulation ---------------------------------------------------------


def test_counters_add_and_default_to_zero():
    reg = MetricsRegistry()
    assert reg.counter("never.touched") == 0
    reg.inc("hits")
    reg.inc("hits", 4)
    reg.inc("hits", layer="disk")
    assert reg.counter("hits") == 5
    assert reg.counter("hits", layer="disk") == 1


def test_gauges_keep_latest_value():
    reg = MetricsRegistry()
    assert reg.gauge("workers") is None
    reg.set_gauge("workers", 2)
    reg.set_gauge("workers", 8)
    assert reg.gauge("workers") == 8


def test_histogram_tracks_count_sum_min_max_buckets():
    reg = MetricsRegistry()
    for value in (0.25, 0.5, 4.0):
        reg.observe("cell_s", value)
    hist = reg.histogram("cell_s")
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(4.75)
    assert hist["min"] == 0.25 and hist["max"] == 4.0
    assert sum(hist["buckets"]) == 3
    assert len(hist["buckets"]) == len(HIST_BOUNDS) + 1
    # A sample beyond the top bound lands in the +Inf bucket.
    reg.observe("cell_s", 10.0 * HIST_BOUNDS[-1])
    assert reg.histogram("cell_s")["buckets"][-1] == 1


# -- snapshot / diff / merge ---------------------------------------------


def test_snapshot_is_a_plain_copy():
    reg = MetricsRegistry()
    reg.inc("c", 2)
    snap = reg.snapshot()
    reg.inc("c", 3)
    assert snap["counters"]["c"] == 2  # unaffected by later mutation


def test_diff_reports_only_changes():
    reg = MetricsRegistry()
    reg.inc("before", 7)
    reg.observe("h", 1.0)
    baseline = reg.snapshot()
    reg.inc("before", 3)
    reg.inc("after")
    reg.set_gauge("g", 4)
    reg.observe("h", 2.0)
    delta = reg.diff(baseline)
    assert delta["counters"] == {"before": 3, "after": 1}
    assert delta["gauges"] == {"g": 4}
    assert delta["hists"]["h"]["count"] == 1
    assert delta["hists"]["h"]["sum"] == pytest.approx(2.0)


def test_merge_semantics_counters_add_gauges_overwrite_hists_widen():
    parent = MetricsRegistry()
    parent.inc("c", 10)
    parent.set_gauge("g", 1)
    parent.observe("h", 1.0)
    child = MetricsRegistry()
    child.inc("c", 5)
    child.set_gauge("g", 2)
    child.observe("h", 0.125)
    child.observe("h", 8.0)
    parent.merge(child.snapshot())
    assert parent.counter("c") == 15
    assert parent.gauge("g") == 2  # last write wins
    hist = parent.histogram("h")
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(9.125)
    assert hist["min"] == 0.125 and hist["max"] == 8.0
    assert sum(hist["buckets"]) == 3


def test_records_are_jsonl_shaped():
    reg = MetricsRegistry()
    reg.inc("hits", 2, layer="disk")
    reg.set_gauge("workers", 4)
    reg.observe("h", 0.5)
    records = {(r["type"], r["name"]): r for r in reg.records()}
    counter = records[("counter", "hits")]
    assert counter["labels"] == {"layer": "disk"} and counter["value"] == 2
    assert records[("gauge", "workers")]["value"] == 4
    hist = records[("histogram", "h")]
    assert hist["count"] == 1 and hist["min"] == 0.5 and hist["max"] == 0.5


def test_empty_histogram_record_has_null_extremes():
    reg = MetricsRegistry()
    merged = MetricsRegistry()
    merged.merge(reg.snapshot())  # no-op, just must not raise
    assert list(reg.records()) == []


# -- the fork contract ----------------------------------------------------


def _count_cell(cell):
    """Runs inside a fork worker: bumps telemetry, returns its input."""
    obs.inc("forktest.cells")
    obs.inc("forktest.weighted", cell)
    obs.observe("forktest.cell_s", 0.001 * (cell + 1))
    return cell * cell


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="requires the fork start method",
)
def test_worker_metrics_merge_into_parent_under_fork(clean_obs):
    cells = list(range(6))
    outcomes = parallel_map_cells(_count_cell, cells, jobs=2)
    assert [o.value for o in outcomes] == [c * c for c in cells]
    reg = obs.get_registry()
    # Worker-side counters arrive via the shipped deltas.
    assert reg.counter("forktest.cells") == len(cells)
    assert reg.counter("forktest.weighted") == sum(cells)
    assert reg.histogram("forktest.cell_s")["count"] == len(cells)
    # Engine-side accounting happens in the parent.
    assert reg.counter("parallel.cells") == len(cells)
    assert reg.counter("parallel.cells_failed") == 0


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="requires the fork start method",
)
def test_fork_totals_match_serial_totals(clean_obs):
    cells = list(range(5))
    parallel_map_cells(_count_cell, cells, jobs=2)
    forked = {
        "cells": obs.get_registry().counter("forktest.cells"),
        "weighted": obs.get_registry().counter("forktest.weighted"),
    }
    obs.reset()
    parallel_map_cells(_count_cell, cells, jobs=1)
    assert forked == {
        "cells": obs.get_registry().counter("forktest.cells"),
        "weighted": obs.get_registry().counter("forktest.weighted"),
    }


def _fail_odd(cell):
    if cell % 2:
        raise ValueError(f"cell {cell} is odd")
    return cell


def test_cell_errors_carry_pid_and_elapsed(clean_obs):
    outcomes = parallel_map_cells(_fail_odd, [0, 1, 2, 3], jobs=1)
    errors = [o.error for o in outcomes if not o.ok]
    assert len(errors) == 2
    for error in errors:
        assert error.kind == "ValueError"
        assert error.pid > 0
        assert error.elapsed_s >= 0.0
    assert obs.get_registry().counter("parallel.cells_failed") == 2
