"""Process-level supervisor tests (``chaos`` lane: real subprocesses).

These spawn actual ``repro serve`` workers and exercise the three
supervision outcomes the cluster's availability story rests on: a
SIGKILLed worker is respawned as a new generation, a wedged worker
(SIGSTOP — alive but deaf) is detected by missed heartbeats and
killed-then-respawned, and a graceful stop SIGTERMs every worker into
a clean exit-0 drain.
"""

import asyncio
import signal

import pytest

from repro.serve import TraceClient
from repro.serve.retry import RestartBackoff
from repro.serve.supervisor import WorkerSpec, WorkerSupervisor

pytestmark = pytest.mark.chaos


def run(coro):
    return asyncio.run(coro)


def fast_backoff(index: int) -> RestartBackoff:
    return RestartBackoff(base_s=0.05, max_s=0.2, seed=index, flap_threshold=50)


async def wait_for_generation(supervisor, worker_id, generation, timeout_s=20.0):
    """Until the worker's replacement (``generation``) is up.

    ``wait_all_up`` alone races the monitor: right after a kill the
    handle still says "up" for its dead process.  The generation bump
    is the unambiguous signal that a *new* spawn announced its port.
    """
    deadline = asyncio.get_running_loop().time() + timeout_s
    handle = supervisor.handle(worker_id)
    while asyncio.get_running_loop().time() < deadline:
        if handle.generation >= generation and handle.state == "up":
            return
        await asyncio.sleep(0.02)
    raise TimeoutError(
        f"{worker_id} never reached generation {generation} "
        f"(state={handle.state}, generation={handle.generation})"
    )


def make_supervisor(count=2, **overrides) -> WorkerSupervisor:
    overrides.setdefault("heartbeat_interval_s", 0.1)
    overrides.setdefault("liveness_deadline_s", 0.5)
    overrides.setdefault("miss_limit", 2)
    overrides.setdefault("backoff_factory", fast_backoff)
    return WorkerSupervisor(
        count,
        spec=WorkerSpec(drain_timeout_s=2.0, session_idle_timeout_s=30.0),
        **overrides,
    )


class TestSupervision:
    def test_spawns_announce_and_serve(self):
        async def scenario():
            supervisor = make_supervisor(count=2)
            await supervisor.start()
            try:
                assert supervisor.live_workers() == ["w0", "w1"]
                ports = {h.port for h in supervisor.handles.values()}
                assert len(ports) == 2 and 0 not in ports
                handle = supervisor.handle("w0")
                async with await TraceClient.connect(*handle.endpoint) as client:
                    hello = await client.hello()
                return hello["server"], supervisor.restarts()
            finally:
                await supervisor.stop()

        server, restarts = run(scenario())
        assert server == "repro.serve"
        assert restarts == 0

    def test_sigkill_respawns_a_new_generation(self):
        async def scenario():
            ups = []
            downs = []
            supervisor = make_supervisor(
                count=2,
                on_worker_up=lambda h: ups.append((h.worker_id, h.generation)),
                on_worker_down=lambda h: downs.append(h.worker_id),
            )
            await supervisor.start()
            try:
                first_port = supervisor.handle("w0").port
                supervisor.kill("w0", signal.SIGKILL)
                await wait_for_generation(supervisor, "w0", 2)
                handle = supervisor.handle("w0")
                # The replacement is a genuinely new process: fresh
                # generation, (almost surely) fresh ephemeral port, and
                # it answers hello.
                async with await TraceClient.connect(*handle.endpoint) as client:
                    await client.hello()
                return handle.generation, supervisor.restarts(), ups, downs, first_port, handle.port
            finally:
                await supervisor.stop()

        generation, restarts, ups, downs, _old_port, _new_port = run(scenario())
        assert generation == 2
        assert restarts == 1
        assert ("w0", 2) in ups
        assert "w0" in downs

    def test_wedged_worker_is_killed_and_respawned(self):
        async def scenario():
            supervisor = make_supervisor(count=1)
            await supervisor.start()
            try:
                handle = supervisor.handle("w0")
                pid = handle.pid
                # SIGSTOP: the process exists but never answers health.
                supervisor.kill("w0", signal.SIGSTOP)
                await wait_for_generation(supervisor, "w0", 2, timeout_s=30.0)
                return pid, handle.pid, handle.generation
            finally:
                await supervisor.stop()

        old_pid, new_pid, generation = run(scenario())
        assert new_pid != old_pid  # the wedge was killed, not resumed
        assert generation == 2

    def test_graceful_stop_drains_every_worker(self):
        async def scenario():
            supervisor = make_supervisor(count=2)
            await supervisor.start()
            return await supervisor.stop()

        report = run(scenario())
        assert report["clean"] is True
        for entry in report["workers"].values():
            assert entry["graceful"] and entry["exit"] == 0
