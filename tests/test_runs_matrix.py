"""Cell identity and matrix construction for resumable runs.

The identity contract: a cell key is a pure function of everything that
determines the cell's *value* — coder, stream content digest,
technology, fault profile, seed — and of nothing that merely affects
*execution* (jobs, timeouts, retries, chaos).  Run configs validate
eagerly so a bad matrix dies before any cell is simulated.
"""

import pytest

from repro.runs import (
    CellSpec,
    RunConfig,
    build_cells,
    cell_key,
    config_digest,
    default_run_id,
)
from repro.runs.matrix import coder_family, make_cell_fn

GEN = "gen:mixed,seed=3,population=2,cycles=256,width=16"


class TestCellIdentity:
    def test_key_is_stable_and_content_sensitive(self):
        spec = CellSpec(
            kind="savings",
            workload="w",
            source=GEN,
            stream=0,
            source_digest="abc",
            coder="window8",
        )
        from dataclasses import replace

        assert cell_key(spec) == cell_key(spec)
        assert cell_key(replace(spec, source_digest="def")) != cell_key(spec)
        assert cell_key(replace(spec, coder="window16")) != cell_key(spec)

    def test_execution_knobs_are_not_identity(self):
        # CellSpec deliberately has no jobs/timeout/retry/chaos fields:
        # the key must agree between any two executions of the cell.
        fields = set(CellSpec.__dataclass_fields__)
        assert fields == {
            "kind",
            "workload",
            "source",
            "stream",
            "source_digest",
            "coder",
            "technology",
            "ber",
            "policy",
            "lam",
            "seed",
        }

    def test_coder_family_grouping(self):
        assert coder_family("window8") == "window"
        assert coder_family("window16") == "window"
        assert coder_family("last") == "last"
        assert coder_family("fcm3") == "fcm"


class TestRunConfig:
    def test_unknown_matrix_rejected(self):
        with pytest.raises(ValueError, match="unknown matrix"):
            RunConfig(matrix="everything", sources=(GEN,), coders=("last",))

    def test_crossover_needs_technologies_and_window_coders(self):
        with pytest.raises(ValueError, match="--technologies"):
            RunConfig(matrix="crossover", sources=(GEN,), coders=("window8",))
        with pytest.raises(ValueError, match="windowN"):
            RunConfig(
                matrix="crossover",
                sources=(GEN,),
                coders=("last",),
                technologies=("0.10um",),
            )

    def test_faults_needs_bers_and_policies_in_range(self):
        with pytest.raises(ValueError, match="--ber"):
            RunConfig(matrix="faults", sources=(GEN,), coders=("window8",))
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            RunConfig(
                matrix="faults",
                sources=(GEN,),
                coders=("window8",),
                bers=(2.0,),
                policies=("reset-both",),
            )

    def test_from_dict_round_trips_digest(self):
        config = RunConfig(
            matrix="faults",
            sources=(GEN,),
            coders=("window8",),
            bers=(1e-5, 1e-4),
            policies=("reset-both",),
            seed=3,
        )
        from dataclasses import asdict

        rebuilt = RunConfig.from_dict(asdict(config))
        assert config_digest(rebuilt) == config_digest(config)

    def test_default_run_id_shape(self):
        config = RunConfig(matrix="savings", sources=(GEN,), coders=("last",))
        rid = default_run_id(config)
        assert rid.startswith("savings-")
        assert rid == f"savings-{config_digest(config)[:12]}"


class TestBuildCells:
    def test_savings_order_and_count(self):
        config = RunConfig(
            matrix="savings", sources=(GEN,), coders=("last", "window8")
        )
        cells = build_cells(config)
        assert len(cells) == 4  # 2 streams x 2 coders
        assert [(c.stream, c.coder) for c in cells] == [
            (0, "last"),
            (0, "window8"),
            (1, "last"),
            (1, "window8"),
        ]
        assert len({cell_key(c) for c in cells}) == 4
        assert all(c.source_digest for c in cells)

    def test_gen_stream_digests_are_per_stream_and_stable(self):
        config = RunConfig(matrix="savings", sources=(GEN,), coders=("last",))
        first = build_cells(config)
        again = build_cells(config)
        assert [cell_key(c) for c in first] == [cell_key(c) for c in again]
        assert first[0].source_digest != first[1].source_digest

    def test_bad_coder_fails_before_any_simulation(self):
        config = RunConfig(matrix="savings", sources=(GEN,), coders=("w!ndow",))
        with pytest.raises(ValueError):
            build_cells(config)

    def test_faults_axes_product(self):
        config = RunConfig(
            matrix="faults",
            sources=(GEN,),
            coders=("window8",),
            bers=(1e-5, 1e-4),
            policies=("reset-both", "resync-on-error"),
            streams=1,
        )
        cells = build_cells(config)
        assert len(cells) == 1 * 1 * 2 * 2  # streams x coders x policies x bers
        assert {c.policy for c in cells} == {"reset-both", "resync-on-error"}

    def test_streams_cap_limits_population(self):
        config = RunConfig(
            matrix="savings", sources=(GEN,), coders=("last",), streams=1
        )
        assert len(build_cells(config)) == 1


class TestCellFn:
    def test_savings_cell_value_is_json_ready(self):
        config = RunConfig(matrix="savings", sources=(GEN,), coders=("window8",))
        cell = build_cells(config)[0]
        value = make_cell_fn()(cell)
        assert set(value) == {"savings_pct"}
        assert isinstance(value["savings_pct"], float)

    def test_faults_cell_value_fields(self):
        config = RunConfig(
            matrix="faults",
            sources=(GEN,),
            coders=("window8",),
            bers=(1e-4,),
            policies=("reset-both",),
            streams=1,
        )
        value = make_cell_fn()(build_cells(config)[0])
        assert {"savings_pct", "correct_fraction", "injected_cycles"} <= set(value)

    def test_values_deterministic_across_fresh_executors(self):
        config = RunConfig(matrix="savings", sources=(GEN,), coders=("last",))
        cell = build_cells(config)[0]
        assert make_cell_fn()(cell) == make_cell_fn()(cell)
