"""Unit tests for the sparse paged memory."""

import pytest

from repro.cpu import Memory, PAGE_SIZE


class TestWordAccess:
    def test_roundtrip(self):
        mem = Memory()
        mem.store_word(0x1000, 0xDEADBEEF)
        assert mem.load_word(0x1000) == 0xDEADBEEF

    def test_little_endian_layout(self):
        mem = Memory()
        mem.store_word(0x100, 0x04030201)
        assert [mem.load_byte(0x100 + i) for i in range(4)] == [1, 2, 3, 4]

    def test_value_masked_to_32_bits(self):
        mem = Memory()
        mem.store_word(0, 0x1_2345_6789)
        assert mem.load_word(0) == 0x23456789

    def test_unaligned_word_raises(self):
        mem = Memory()
        with pytest.raises(ValueError):
            mem.load_word(2)
        with pytest.raises(ValueError):
            mem.store_word(1, 0)

    def test_cross_page_sequential_words(self):
        mem = Memory()
        addr = PAGE_SIZE - 4
        mem.store_word(addr, 111)
        mem.store_word(addr + 4, 222)
        assert mem.load_word(addr) == 111
        assert mem.load_word(addr + 4) == 222


class TestHalfAndByte:
    def test_half_roundtrip(self):
        mem = Memory()
        mem.store_half(0x10, 0xBEEF)
        assert mem.load_half(0x10) == 0xBEEF

    def test_unaligned_half_raises(self):
        with pytest.raises(ValueError):
            Memory().load_half(1)

    def test_byte_masking(self):
        mem = Memory()
        mem.store_byte(5, 0x1FF)
        assert mem.load_byte(5) == 0xFF

    def test_uninitialised_reads_zero(self):
        assert Memory().load_word(0x5000) == 0


class TestBulk:
    def test_store_load_words(self):
        mem = Memory()
        mem.store_words(0x2000, [10, 20, 30])
        assert list(mem.load_words(0x2000, 3)) == [10, 20, 30]

    def test_allocated_bytes_tracks_pages(self):
        mem = Memory()
        assert mem.allocated_bytes == 0
        mem.store_byte(0, 1)
        mem.store_byte(PAGE_SIZE * 10, 1)
        assert mem.allocated_bytes == 2 * PAGE_SIZE

    def test_address_wraps_at_32_bits(self):
        mem = Memory()
        mem.store_word(0x1_0000_0010, 77)
        assert mem.load_word(0x10) == 77
