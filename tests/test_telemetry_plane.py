"""The cluster telemetry plane: tracing, telemetry op, top, flight.

Covers the four observability contracts the serving stack now makes:

* **trace-context propagation** — hop spans carry ``trace_id`` and the
  ``"pid:span_id"`` parent ref across client → router → engine, survive
  fork-merge, and stitch into one cross-process Chrome trace with flow
  arrows (``repro trace-stitch``);
* **live ``telemetry`` op** — read-only, idempotent, fans out across a
  cluster and merges; with ``REPRO_OBS=0`` it answers an *empty*
  snapshot (never an error) and serving stays byte-identical;
* **``repro top``** — the summary document behind ``--once --json``
  (schema pinned here, asserted by CI against the live soak cluster);
* **flight recorder** — an eager crash-durable journal plus a bounded
  ring, dumped on drain/quarantine and left behind by SIGKILL
  (chaos-marked end-to-end check).
"""

import asyncio
import json
import os
import queue
import signal
import threading

import numpy as np
import pytest

from repro import cli, obs
from repro.coding import parse_coder_spec
from repro.obs.flight import (
    FLIGHT_FILENAME,
    FlightRecorder,
    read_flight_journal,
)
from repro.obs.stitch import collect_span_files, stitch_run, stitched_chrome_trace
from repro.serve import ServeEngine, protocol
from repro.serve.cluster import TraceCluster
from repro.serve.client import TraceClient
from repro.serve.server import TraceServer
from repro.serve.telemetry import render_top, summarize_telemetry
from repro.workloads import locality_trace


def run(coro):
    return asyncio.run(coro)


def req(op, request_id=1, **fields):
    return protocol.request(op, request_id, **fields)


@pytest.fixture()
def obs_on():
    previous = obs.set_enabled(True)
    obs.reset()
    yield
    obs.reset()
    obs.set_enabled(previous)


@pytest.fixture()
def obs_off():
    previous = obs.set_enabled(False)
    obs.reset()
    yield
    obs.reset()
    obs.set_enabled(previous)


# -- trace-context primitives --------------------------------------------


class TestTraceContext:
    def test_extractor_tolerates_everything(self):
        assert protocol.trace_context({}) == ("", "")
        assert protocol.trace_context({"trace": None}) == ("", "")
        assert protocol.trace_context({"trace": "junk"}) == ("", "")
        assert protocol.trace_context({"trace": {"id": 7}}) == ("", "")
        message = {"trace": {"id": "abc123", "parent": "42:9"}}
        assert protocol.trace_context(message) == ("abc123", "42:9")

    def test_trace_field_is_wire_compatible(self):
        message = req("hello")
        message["trace"] = {"id": "deadbeef", "parent": "1:2"}
        op, request_id = protocol.validate_request(message)
        assert (op, request_id) == ("hello", 1)

    def test_hop_span_is_detached_and_carries_context(self, obs_on):
        tid = obs.new_trace_id()
        with obs.span("outer"):
            with obs.hop_span("router.request", trace_id=tid, parent="9:9", op="encode") as hop:
                ref = hop.ref
        records = {r.name: r for r in obs.get_tracer().records()}
        hop_record = records["router.request"]
        assert hop_record.trace_id == tid
        assert hop_record.parent == "9:9"
        # Detached: no stack linkage to `outer`, despite lexical nesting.
        assert hop_record.parent_id == 0 and hop_record.depth == 0
        assert ref == f"{os.getpid()}:{hop_record.span_id}"

    def test_disabled_hop_span_leaks_nothing(self, obs_off):
        hop = obs.hop_span("client.request", trace_id="x", parent="1:1")
        assert hop is obs.NO_SPAN
        assert hop.ref == "" and hop.trace_id == ""

    def test_fork_merge_preserves_trace_ids(self, obs_on):
        baseline = obs.fork_snapshot()
        tid = obs.new_trace_id()
        with obs.hop_span("engine.request", trace_id=tid, parent="123:45", op="encode"):
            pass
        delta = obs.fork_delta(baseline)
        obs.reset()
        obs.merge_child(delta)
        records = obs.get_tracer().records()
        assert [r.trace_id for r in records] == [tid]
        assert records[0].parent == "123:45"
        exported = obs.span_jsonl_records(records)[0]
        assert exported["trace_id"] == tid and exported["parent"] == "123:45"


# -- stitching -----------------------------------------------------------


def _write_spans(directory, records):
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "spans.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return path


def _span(name, pid, span_id, ts, trace_id="", parent=""):
    return {
        "type": "span",
        "name": name,
        "ts": ts,
        "dur": 0.001,
        "pid": pid,
        "tid": 1,
        "span_id": span_id,
        "parent_id": 0,
        "depth": 0,
        "attrs": {},
        "trace_id": trace_id,
        "parent": parent,
    }


class TestStitch:
    def test_flow_arrows_cross_processes(self, tmp_path):
        tid = "aa" * 8
        router = _write_spans(
            tmp_path / "router",
            [_span("router.request", pid=100, span_id=1, ts=1.0, trace_id=tid)],
        )
        _write_spans(
            tmp_path / "worker-w0-gen1",
            [
                _span(
                    "engine.request",
                    pid=200,
                    span_id=5,
                    ts=1.0005,
                    trace_id=tid,
                    parent="100:1",
                )
            ],
        )
        files = collect_span_files([str(tmp_path)])
        assert len(files) == 2 and router in files
        out = str(tmp_path / "stitched.json")
        result = stitch_run([str(tmp_path)], out)
        assert result["spans"] == 2 and result["flows"] == 1
        document = json.load(open(out))
        events = document["traceEvents"]
        # One s/f flow pair, named by the trace id, crossing pids.
        start = next(e for e in events if e.get("ph") == "s")
        finish = next(e for e in events if e.get("ph") == "f")
        assert start["name"] == finish["name"] == tid
        assert start["pid"] == 100 and finish["pid"] == 200
        assert finish["bp"] == "e"
        # Process rows are labelled by their export directory.
        labels = {
            e["pid"]: e["args"]["name"] for e in events if e.get("ph") == "M"
        }
        assert labels == {100: "router", 200: "worker-w0-gen1"}

    def test_unresolvable_parent_is_tolerated(self, tmp_path):
        # The parent process was SIGKILLed before exporting: no flow,
        # no crash.
        _write_spans(
            tmp_path / "worker",
            [_span("engine.request", 300, 1, 2.0, "bb" * 8, parent="999:1")],
        )
        document = stitched_chrome_trace(
            __import__("repro.obs.stitch", fromlist=["load_span_sources"]).load_span_sources(
                collect_span_files([str(tmp_path)])
            )
        )
        assert document["otherData"] == {"flows": 0, "spans": 1}

    def test_missing_input_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_span_files([str(tmp_path / "nope")])
        with pytest.raises(FileNotFoundError):
            stitch_run([str(tmp_path)], str(tmp_path / "out.json"))


# -- the telemetry op ----------------------------------------------------


class TestTelemetryOp:
    def test_is_known_and_idempotent(self):
        assert "telemetry" in protocol.KNOWN_OPS
        assert "telemetry" in protocol.IDEMPOTENT_OPS

    def test_engine_snapshot_and_gauges(self, obs_on):
        async def scenario():
            engine = ServeEngine()
            await engine.start()
            try:
                opened = await engine.handle(1, req("open", 1, coder="window8", width=16))
                await engine.handle(
                    1,
                    req("encode", 2, session=opened["session"], values=[1, 2, 3]),
                )
                return await engine.handle(1, req("telemetry", 3))
            finally:
                await engine.stop(0.5)

        response = run(scenario())
        assert response["ok"] and response["enabled"]
        counters = response["metrics"]["counters"]
        assert counters.get("serve.requests{op=encode}") == 1
        gauges = response["gauges"]
        assert gauges["sessions"] == 1
        assert gauges["queue_limit"] == 64 and gauges["admitting"]
        assert response["spans"]["dropped"] == 0

    def test_bad_span_limit_is_rejected(self, obs_on):
        async def scenario():
            engine = ServeEngine()
            await engine.start()
            try:
                return await engine.handle(1, req("telemetry", 1, span_limit="all"))
            finally:
                await engine.stop(0.5)

        response = run(scenario())
        assert response["error"]["code"] == protocol.ERR_BAD_REQUEST

    def test_disabled_obs_answers_empty_not_error(self, obs_off):
        async def scenario():
            engine = ServeEngine()
            await engine.start()
            try:
                return await engine.handle(1, req("telemetry", 1))
            finally:
                await engine.stop(0.5)

        response = run(scenario())
        assert response["ok"] and not response["enabled"]
        assert response["metrics"] == {"counters": {}, "gauges": {}, "hists": {}}
        assert response["spans"] == {"total": 0, "dropped": 0, "recent": []}
        # The load gauges are engine fields, live either way.
        assert response["gauges"]["queue_depth"] == 0

    def test_health_reports_load_gauges(self, obs_on):
        async def scenario():
            engine = ServeEngine(queue_limit=9, batch_limit=3)
            await engine.start()
            try:
                return await engine.handle(1, req("health", 1))
            finally:
                await engine.stop(0.5)

        response = run(scenario())
        assert response["ok"]
        for key in (
            "queue_depth",
            "sessions",
            "outstanding",
            "batch_occupancy",
            "last_batch_size",
            "admitting",
        ):
            assert key in response
        assert response["queue_limit"] == 9 and response["batch_limit"] == 3


class TestClusterTelemetry:
    def test_fans_out_and_merges(self, obs_on):
        async def scenario():
            async with TraceCluster(workers=2, port=0) as cluster:
                client = await TraceClient.connect("127.0.0.1", cluster.port)
                try:
                    stream = await client.open_stream("window8", width=16)
                    await stream.feed([1, 2, 3, 4])
                    return await client.request("telemetry")
                finally:
                    await client.close()

        response = run(scenario())
        assert response["ok"] and response["enabled"]
        workers = response["workers"]
        assert sorted(workers) == ["w0", "w1"]
        for entry in workers.values():
            assert entry["alive"] and entry["breaker"] == "closed"
            assert entry["telemetry"]["enabled"]
            assert "queue_depth" in entry["telemetry"]["gauges"]
        merged = response["metrics"]["counters"]
        # Worker-side serving counters and router-side counters land in
        # the one merged snapshot.
        assert merged.get("serve.requests{op=encode}", 0) >= 1
        assert any(key.startswith("cluster.ops_forwarded") for key in merged)
        assert response["gauges"]["workers_live"] == 2

    def test_trace_spans_cross_all_three_hops(self, obs_on):
        async def scenario():
            async with TraceCluster(workers=2, port=0) as cluster:
                client = await TraceClient.connect("127.0.0.1", cluster.port)
                try:
                    stream = await client.open_stream("window8", width=16)
                    await stream.feed([1, 2, 3, 4])
                    return await client.request("telemetry", span_limit=64)
                finally:
                    await client.close()

        response = run(scenario())
        # The router's own spans: client.request was opened by *our*
        # TraceClient (this process), router.request by the router (also
        # this process); engine.request lives in the workers' tracers.
        own = {r.name for r in obs.get_tracer().records()}
        assert "client.request" in own and "router.request" in own
        router_records = [
            r
            for r in obs.get_tracer().records()
            if r.name == "router.request" and r.trace_id
        ]
        assert router_records, "router spans must carry a trace id"
        worker_spans = [
            span
            for entry in response["workers"].values()
            for span in entry["telemetry"]["spans"]["recent"]
            if span["name"] == "engine.request"
        ]
        assert worker_spans, "workers must record engine.request hop spans"
        # Every engine span parents onto a router span ref (same trace).
        router_refs = {
            f"{r.pid}:{r.span_id}": r.trace_id for r in router_records
        }
        linked = [s for s in worker_spans if s["parent"] in router_refs]
        assert linked, "engine spans must parent onto router span refs"
        assert all(
            s["trace_id"] == router_refs[s["parent"]] for s in linked
        )

    def test_disabled_obs_serving_is_byte_identical(self, obs_off, monkeypatch):
        # The router runs in this process (obs_off fixture); the worker
        # subprocesses inherit the environment, so dark them too.
        monkeypatch.setenv("REPRO_OBS", "0")
        trace = locality_trace(64, width=16, seed=3)
        values = [int(v) for v in trace.values]

        async def scenario():
            async with TraceCluster(workers=2, port=0) as cluster:
                client = await TraceClient.connect("127.0.0.1", cluster.port)
                try:
                    stream = await client.open_stream("window8", width=16)
                    states = []
                    for lo in range(0, len(values), 16):
                        states.extend(await stream.feed(values[lo : lo + 16]))
                        # Interleave telemetry probes with the stream:
                        # read-only means they must not perturb serving.
                        telemetry = await client.request("telemetry")
                        assert telemetry["ok"] and not telemetry["enabled"]
                        assert telemetry["metrics"] == {}
                    return states
                finally:
                    await client.close()

        states = run(scenario())
        coder = parse_coder_spec("window8", 16)
        expected = coder.encode_trace(trace)
        assert np.array_equal(
            np.asarray(states, dtype=np.uint64), expected.values
        )


# -- repro top -----------------------------------------------------------


class TestTop:
    def test_summary_schema_from_cli_json(self, obs_on, capsys):
        started: "queue.Queue[int]" = queue.Queue()
        stop = threading.Event()

        def serve():
            async def main():
                server = TraceServer(port=0)
                await server.start()
                started.put(server.port)
                while not stop.is_set():
                    await asyncio.sleep(0.02)
                await server.stop(1.0)

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        port = started.get(timeout=10)
        try:
            code = cli.main(
                ["top", "--once", "--json", "--port", str(port), "-q"]
            )
        finally:
            stop.set()
            thread.join(timeout=10)
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) == {
            "enabled",
            "gauges",
            "ops",
            "workers",
            "spans_dropped",
        }
        assert isinstance(document["ops"], list)
        assert isinstance(document["workers"], list)
        for key in ("uptime_s", "queue_depth", "sessions", "admitting"):
            assert key in document["gauges"]

    def test_summarize_red_rows(self):
        hist = {
            "count": 2,
            "sum": 0.3,
            "min": 0.1,
            "max": 0.2,
            "buckets": [0] * 32,
        }
        hist["buckets"][17] = 2  # ~0.1-0.25s bucket of the log2 ladder
        response = {
            "ok": True,
            "enabled": True,
            "metrics": {
                "counters": {
                    "serve.requests{op=encode}": 10,
                    "serve.request_errors{code=busy, op=encode}": 1,
                },
                "gauges": {},
                "hists": {"serve.request_s{op=encode}": hist},
            },
            "gauges": {"uptime_s": 5.0},
            "workers": {
                "w0": {
                    "alive": True,
                    "generation": 2,
                    "breaker": "closed",
                    "flight_dump": "/tmp/f.jsonl",
                    "telemetry": {
                        "enabled": True,
                        "gauges": {"queue_depth": 3, "sessions": 1},
                        "spans": {"total": 5, "dropped": 4, "recent": []},
                    },
                }
            },
        }
        summary = summarize_telemetry(response)
        (row,) = summary["ops"]
        assert row["op"] == "encode"
        assert row["requests"] == 10 and row["errors"] == 1
        assert row["error_pct"] == 10.0
        assert row["rate_rps"] == 2.0  # lifetime mean: 10 / 5s
        assert 100.0 <= row["p50_ms"] <= 200.0
        (worker,) = summary["workers"]
        assert worker["queue_depth"] == 3 and worker["spans_dropped"] == 4
        assert summary["spans_dropped"] == 4
        rendered = render_top(summary)
        assert "encode" in rendered and "spans dropped" in rendered

    def test_rate_from_consecutive_samples(self):
        previous = {"ops": [{"op": "encode", "requests": 10}]}
        response = {
            "ok": True,
            "enabled": True,
            "metrics": {
                "counters": {"serve.requests{op=encode}": 30},
                "gauges": {},
                "hists": {},
            },
            "gauges": {},
            "workers": {},
        }
        summary = summarize_telemetry(response, previous=previous, interval_s=2.0)
        assert summary["ops"][0]["rate_rps"] == 10.0


# -- flight recorder -----------------------------------------------------


class TestFlightRecorder:
    def test_ring_bounds_and_journal_is_eager(self, tmp_path):
        path = str(tmp_path / FLIGHT_FILENAME)
        recorder = FlightRecorder(capacity=4, path=path)
        for index in range(10):
            recorder.record("engine.tick", index=index)
        # Ring keeps the tail; the journal keeps everything, already on
        # disk without close() (eager line-buffered writes).
        assert len(recorder) == 4
        journal = read_flight_journal(path)
        assert [r["event"] for r in journal[:1]] == ["flight.start"]
        assert sum(1 for r in journal if r["event"] == "engine.tick") == 10
        dump_path = recorder.dump(reason="test")
        recorder.close()
        document = json.load(open(dump_path))
        assert document["reason"] == "test"
        assert document["recorded"] == 11 and document["retained"] == 4
        assert [e["index"] for e in document["events"]] == [6, 7, 8, 9]

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / FLIGHT_FILENAME)
        recorder = FlightRecorder(capacity=4, path=path)
        recorder.record("engine.shed", op="encode")
        recorder.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 99, "event": "engine.tr')  # kill -9 mid-write
        events = [r["event"] for r in read_flight_journal(path)]
        assert events == ["flight.start", "engine.shed"]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"seq": 1, "event": "ok"}\n')
        with pytest.raises(ValueError, match="flight.jsonl:1"):
            read_flight_journal(path)

    def test_configure_gated_on_enabled(self, tmp_path, obs_off):
        path = str(tmp_path / FLIGHT_FILENAME)
        assert obs.configure_flight(path) is None
        obs.flight_record("engine.shed")  # silently dropped
        assert not os.path.exists(path)

    def test_facade_round_trip(self, tmp_path, obs_on):
        path = str(tmp_path / FLIGHT_FILENAME)
        try:
            recorder = obs.configure_flight(path, capacity=8)
            assert recorder is not None and obs.flight() is recorder
            obs.flight_record("engine.drain_begin", outstanding=2)
            dump = obs.flight_dump(reason="drain")
            assert dump and os.path.exists(dump)
            events = [r["event"] for r in read_flight_journal(path)]
            assert events == ["flight.start", "engine.drain_begin"]
        finally:
            obs.configure_flight()  # clear the process-global recorder

    def test_engine_drain_journals_lifecycle(self, tmp_path, obs_on):
        path = str(tmp_path / FLIGHT_FILENAME)

        async def scenario():
            try:
                obs.configure_flight(path)
                engine = ServeEngine()
                await engine.start()
                await engine.handle(1, req("open", 1, coder="window8", width=16))
                await engine.stop(0.5)
            finally:
                obs.configure_flight()

        run(scenario())
        events = [r["event"] for r in read_flight_journal(path)]
        assert "engine.session_open" in events
        assert "engine.drain_begin" in events and "engine.drain_end" in events
        # stop() also dumped the ring for the post-mortem.
        assert os.path.exists(str(tmp_path / "flight-dump.json"))


# -- the SIGKILL post-mortem (real subprocesses) -------------------------


@pytest.mark.chaos
class TestFlightPostMortem:
    def test_sigkilled_worker_leaves_a_readable_journal(self, tmp_path):
        from repro.serve.retry import RestartBackoff
        from repro.serve.supervisor import WorkerSpec, WorkerSupervisor

        async def scenario():
            supervisor = WorkerSupervisor(
                1,
                spec=WorkerSpec(
                    drain_timeout_s=2.0, obs_dir=str(tmp_path / "workers")
                ),
                heartbeat_interval_s=0.1,
                liveness_deadline_s=0.5,
                backoff_factory=lambda index: RestartBackoff(
                    base_s=0.05, max_s=0.2, seed=index, flap_threshold=50
                ),
            )
            await supervisor.start()
            try:
                handle = supervisor.handle("w0")
                gen1_dir = handle.obs_dir
                # Drive one request so the journal has serving context.
                client = await TraceClient.connect("127.0.0.1", handle.port)
                stream = await client.open_stream("window8", width=16)
                await stream.feed([1, 2, 3])
                await client.close()
                supervisor.kill("w0", sig=signal.SIGKILL)
                deadline = asyncio.get_running_loop().time() + 20.0
                while asyncio.get_running_loop().time() < deadline:
                    if handle.generation >= 2 and handle.state == "up":
                        break
                    await asyncio.sleep(0.02)
                journal = os.path.join(gen1_dir, FLIGHT_FILENAME)
                dump = supervisor.flight_dump("w0")
                return journal, dump
            finally:
                await supervisor.stop(2.0)

        journal, dump = run(scenario())
        # The SIGKILLed generation never ran its drain path, but the
        # eager journal survived; the supervisor's accessor found one.
        assert os.path.isfile(journal)
        events = [r["event"] for r in read_flight_journal(journal)]
        assert events and events[0] == "flight.start"
        assert "engine.session_open" in events
        assert "engine.drain_begin" not in events  # kill -9: no goodbye
        assert dump is not None
