"""Unit tests for the trace-serving wire protocol (pure data plane)."""

import json

import pytest

from repro.serve import protocol
from repro.serve.protocol import ProtocolError


class TestFraming:
    def test_encode_frame_is_one_ascii_json_line(self):
        frame = protocol.encode_frame(protocol.request("hello", 1))
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1
        frame.decode("ascii")  # must not raise
        assert json.loads(frame) == {"v": 2, "id": 1, "op": "hello"}

    def test_round_trip(self):
        message = protocol.request("encode", 42, session=3, values=[1, 2, 3])
        assert protocol.decode_frame(protocol.encode_frame(message)) == message

    def test_decode_rejects_oversized_frames(self):
        blob = b"x" * (protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_frame(blob)
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_frame(b"not json at all\n")
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_frame(b"[1, 2, 3]\n")
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_decode_rejects_undecodable_bytes(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"\xff\xfe{}\n")


class TestConstructors:
    def test_ok_response_shape(self):
        message = protocol.ok_response(7, states=[1])
        assert message == {"v": 2, "id": 7, "ok": True, "states": [1]}

    def test_error_response_shape(self):
        message = protocol.error_response(9, protocol.ERR_BUSY, "queue full")
        assert message["ok"] is False
        assert message["id"] == 9
        assert message["error"] == {"code": "busy", "message": "queue full"}

    def test_error_response_refuses_unregistered_codes(self):
        with pytest.raises(AssertionError):
            protocol.error_response(1, "not-a-code", "nope")

    def test_error_codes_are_a_closed_registered_set(self):
        assert len(set(protocol.ERROR_CODES)) == len(protocol.ERROR_CODES)
        for code in (
            protocol.ERR_BAD_REQUEST,
            protocol.ERR_BUSY,
            protocol.ERR_DESYNC,
            protocol.ERR_INTERNAL,
            protocol.ERR_NO_SESSION,
            protocol.ERR_RESUME_MISMATCH,
            protocol.ERR_SHUTDOWN,
            protocol.ERR_STALE_CHECKPOINT,
            protocol.ERR_TIMEOUT,
            protocol.ERR_UNKNOWN_OP,
            protocol.ERR_UNSUPPORTED_VERSION,
        ):
            assert code in protocol.ERROR_CODES

    def test_idempotent_ops_are_known_ops(self):
        assert protocol.IDEMPOTENT_OPS <= frozenset(protocol.KNOWN_OPS)
        # The session mutators must never be blind-retryable: resending
        # a chunk would double-advance the server-side FSM.
        for op in ("open", "encode", "close", "resume", "checkpoint"):
            assert op in protocol.KNOWN_OPS
            assert op not in protocol.IDEMPOTENT_OPS


class TestStateDigest:
    def test_digest_is_stable_under_key_order(self):
        a = {"spec": "window8", "width": 16, "nested": {"x": 1, "y": 2}}
        b = {"nested": {"y": 2, "x": 1}, "width": 16, "spec": "window8"}
        assert protocol.state_digest(a) == protocol.state_digest(b)

    def test_digest_ignores_its_own_field(self):
        state = {"spec": "window8", "width": 16}
        digest = protocol.state_digest(state)
        sealed = dict(state, digest=digest)
        assert protocol.state_digest(sealed) == digest

    def test_digest_detects_tampering(self):
        state = {"spec": "window8", "width": 16}
        digest = protocol.state_digest(state)
        assert protocol.state_digest(dict(state, width=32)) != digest


class TestValidateRequest:
    def test_accepts_well_formed_requests(self):
        for op in protocol.KNOWN_OPS:
            assert protocol.validate_request(protocol.request(op, 5)) == (op, 5)

    def test_version_is_checked_before_everything_else(self):
        # Even a frame with no id and a junk op must fail on version.
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"op": "launch-missiles"})
        assert excinfo.value.code == protocol.ERR_UNSUPPORTED_VERSION

    def test_rejects_future_versions(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 3, "id": 1, "op": "hello"})
        assert excinfo.value.code == protocol.ERR_UNSUPPORTED_VERSION

    def test_rejects_stale_v1(self):
        # The v2 bump (resume + exported checkpoints) is incompatible:
        # a v1 client must learn about it on its first request.
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 1, "id": 1, "op": "hello"})
        assert excinfo.value.code == protocol.ERR_UNSUPPORTED_VERSION

    @pytest.mark.parametrize("bad_id", [None, "7", 1.5, True])
    def test_rejects_non_int_request_ids(self, bad_id):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 2, "id": bad_id, "op": "hello"})
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_rejects_missing_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 2, "id": 1})
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_request({"v": 2, "id": 1, "op": "transmogrify"})
        assert excinfo.value.code == protocol.ERR_UNKNOWN_OP


class TestIntListField:
    def test_extracts_valid_lists(self):
        message = {"values": [0, 1, 2**63]}
        assert protocol.int_list_field(message, "values") == [0, 1, 2**63]

    @pytest.mark.parametrize(
        "bad", [None, "123", 7, [1, -2], [1, 1.5], [True], [1, None]]
    )
    def test_rejects_non_int_payloads(self, bad):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.int_list_field({"values": bad}, "values")
        assert excinfo.value.code == protocol.ERR_BAD_REQUEST


class TestProtocolError:
    def test_is_a_value_error_with_code(self):
        exc = ProtocolError(protocol.ERR_BUSY, "try later")
        assert isinstance(exc, ValueError)
        assert exc.code == "busy"
        assert "try later" in str(exc)
