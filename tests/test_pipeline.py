"""Unit tests for the pipeline: semantics, timing and bus generation."""

import pytest

from repro.cpu import (
    DirectMappedCache,
    Machine,
    Pipeline,
    PipelineConfig,
    assemble,
)


def run(source, setup=None, config=None):
    machine = Machine(source=source, config=config or PipelineConfig())
    if setup:
        setup(machine.memory)
    pipeline = Pipeline(machine.program, machine.memory, machine.config)
    stats = pipeline.run()
    return pipeline, stats


class TestArithmetic:
    def test_add_sub(self):
        pipeline, _ = run("li r1, 7\nli r2, 5\nadd r3, r1, r2\nsub r4, r1, r2\nhalt")
        assert pipeline.registers[3] == 12
        assert pipeline.registers[4] == 2

    def test_wraparound(self):
        pipeline, _ = run("li r1, -1\nli r2, 2\nadd r3, r1, r2\nhalt")
        assert pipeline.registers[3] == 1

    def test_mul_signed(self):
        pipeline, _ = run("li r1, -3\nli r2, 4\nmul r3, r1, r2\nhalt")
        assert pipeline.registers[3] == (-12) & 0xFFFFFFFF

    def test_mulh(self):
        pipeline, _ = run("li r1, 0x10000\nli r2, 0x10000\nmulh r3, r1, r2\nhalt")
        assert pipeline.registers[3] == 1

    def test_div_truncates_toward_zero(self):
        pipeline, _ = run("li r1, -7\nli r2, 2\ndiv r3, r1, r2\nrem r4, r1, r2\nhalt")
        assert pipeline.registers[3] == (-3) & 0xFFFFFFFF
        assert pipeline.registers[4] == (-1) & 0xFFFFFFFF

    def test_div_by_zero(self):
        pipeline, _ = run("li r1, 9\ndiv r3, r1, r0\nrem r4, r1, r0\nhalt")
        assert pipeline.registers[3] == 0xFFFFFFFF
        assert pipeline.registers[4] == 9

    def test_shifts(self):
        pipeline, _ = run(
            "li r1, 0x80000000\nsrli r2, r1, 4\nsrai r3, r1, 4\nslli r4, r1, 1\nhalt"
        )
        assert pipeline.registers[2] == 0x08000000
        assert pipeline.registers[3] == 0xF8000000
        assert pipeline.registers[4] == 0

    def test_comparisons(self):
        pipeline, _ = run(
            "li r1, -1\nli r2, 1\nslt r3, r1, r2\nsltu r4, r1, r2\nhalt"
        )
        assert pipeline.registers[3] == 1  # signed: -1 < 1
        assert pipeline.registers[4] == 0  # unsigned: 0xFFFFFFFF > 1

    def test_r0_stays_zero(self):
        pipeline, _ = run("addi r0, r0, 5\nadd r1, r0, r0\nhalt")
        assert pipeline.registers[0] == 0
        assert pipeline.registers[1] == 0

    def test_logic_ops(self):
        pipeline, _ = run(
            "li r1, 0xF0\nli r2, 0x0F\nor r3, r1, r2\nand r4, r1, r2\nxor r5, r1, r2\nhalt"
        )
        assert pipeline.registers[3] == 0xFF
        assert pipeline.registers[4] == 0x00
        assert pipeline.registers[5] == 0xFF


class TestMemoryOps:
    def test_load_store_word(self):
        pipeline, _ = run("li r1, 0x1000\nli r2, 1234\nsw r2, 0(r1)\nlw r3, 4(r1)\nlw r4, 0(r1)\nhalt")
        assert pipeline.registers[3] == 0
        assert pipeline.registers[4] == 1234

    def test_signed_byte_load(self):
        def setup(mem):
            mem.store_byte(0x1000, 0x80)

        pipeline, _ = run("li r1, 0x1000\nlb r2, 0(r1)\nlbu r3, 0(r1)\nhalt", setup)
        assert pipeline.registers[2] == 0xFFFFFF80
        assert pipeline.registers[3] == 0x80

    def test_halfword_ops(self):
        pipeline, _ = run(
            "li r1, 0x1000\nli r2, 0x8001\nsh r2, 0(r1)\nlh r3, 0(r1)\nlhu r4, 0(r1)\nhalt"
        )
        assert pipeline.registers[3] == 0xFFFF8001
        assert pipeline.registers[4] == 0x8001


class TestControlFlow:
    def test_loop_executes_n_times(self):
        pipeline, _ = run(
            """
            li r1, 10
            li r2, 0
            loop: addi r2, r2, 1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            """
        )
        assert pipeline.registers[2] == 10

    def test_call_return(self):
        pipeline, _ = run(
            """
            li r1, 5
            call double
            halt
            double: add r1, r1, r1
            ret
            """
        )
        assert pipeline.registers[1] == 10

    def test_branch_variants(self):
        pipeline, _ = run(
            """
            li r1, -1
            li r2, 1
            blt r1, r2, a
            li r10, 99
            a: bltu r1, r2, b
            li r11, 1
            b: halt
            """
        )
        assert pipeline.registers[10] == 0  # signed branch taken
        assert pipeline.registers[11] == 1  # unsigned not taken


class TestTiming:
    def test_taken_branch_pays_penalty(self):
        flat, _ = run("nop\nnop\nnop\nhalt")
        branchy, _ = run("j a\na: nop\nnop\nhalt")
        assert branchy.stats.cycles > flat.stats.cycles

    def test_mul_latency(self):
        cheap, _ = run("li r1, 2\nadd r2, r1, r1\nhalt")
        costly, _ = run("li r1, 2\nmul r2, r1, r1\nhalt")
        assert costly.stats.cycles == cheap.stats.cycles + PipelineConfig().mul_latency

    def test_cache_miss_stalls(self):
        hit_cfg = PipelineConfig(memory_latency=50)
        src = "li r1, 0x1000\nlw r2, 0(r1)\nlw r3, 0(r1)\nhalt"
        pipeline, stats = run(src, config=hit_cfg)
        # one miss (first load), one hit (second)
        assert stats.load_misses == 1
        assert stats.cycles > 50

    def test_max_cycles_caps_run(self):
        config = PipelineConfig(max_cycles=100)
        _, stats = run("loop: j loop", config=config)
        assert not stats.halted
        assert stats.cycles <= 100 + 10

    def test_ipc_and_missrate_properties(self):
        _, stats = run("li r1, 1\nhalt")
        assert 0 < stats.ipc <= 1
        assert stats.load_miss_rate == 0.0


class TestBusGeneration:
    def test_register_bus_sees_operand_values(self):
        pipeline, stats = run("li r1, 42\nadd r2, r1, r1\nhalt")
        trace = pipeline.register_bus.render(stats.cycles)
        assert 42 in list(trace)

    def test_r0_reads_not_driven(self):
        pipeline, stats = run("li r5, 7\nadd r2, r0, r0\nhalt")
        # add reads r0 only; the port must never see an event for it.
        assert pipeline.register_bus.num_events == 0 or all(
            v == 7 for c, v in pipeline.register_bus._events
        )

    def test_memory_bus_carries_store_values(self):
        pipeline, stats = run("li r1, 0x1000\nli r2, 777\nsw r2, 0(r1)\nhalt")
        trace = pipeline.memory_bus.render(stats.cycles)
        assert 777 in list(trace)

    def test_miss_bursts_full_block(self):
        def setup(mem):
            mem.store_words(0x1000, [11, 22, 33, 44])

        pipeline, stats = run("li r1, 0x1000\nlw r2, 0(r1)\nhalt", setup)
        values = set(pipeline.memory_bus.render(stats.cycles))
        assert {11, 22, 33, 44} <= values


class TestCache:
    def test_direct_mapping_conflicts(self):
        cache = DirectMappedCache(1024, 16)
        cache.fill(0)
        assert cache.lookup(0)
        assert cache.lookup(12)  # same block
        cache.fill(1024)  # same index, different tag
        assert not cache.lookup(0)

    def test_block_base(self):
        cache = DirectMappedCache(1024, 16)
        assert cache.block_base(0x1234) == 0x1230

    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            DirectMappedCache(1000, 12)  # block not power of two
        with pytest.raises(ValueError):
            DirectMappedCache(1000, 16)  # size not multiple


class TestMachineFacade:
    def test_requires_exactly_one_program_source(self):
        with pytest.raises(ValueError):
            Machine()
        with pytest.raises(ValueError):
            Machine(source="halt", program=assemble("halt"))

    def test_named_machine_labels_traces(self):
        machine = Machine(source="halt", name="demo")
        result = machine.run()
        assert result.register_trace.name == "demo/register"
        assert result.memory_trace.name == "demo/memory"

    def test_traces_cover_all_cycles(self):
        result = Machine(source="li r1, 3\nadd r2, r1, r1\nhalt").run()
        assert len(result.register_trace) == result.stats.cycles
        assert len(result.memory_trace) == result.stats.cycles
