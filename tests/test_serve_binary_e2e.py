"""End-to-end tests for binary bulk framing on the serving stack.

Four angles on the same invariant — framing is transport, never
semantics:

* every coder family streamed over real TCP returns bit-identical
  states under binary and newline-JSON framing (and the binary path
  returns ndarrays, the JSON path plain lists);
* chaos: a corrupted binary frame fails the pending request with
  :class:`FrameCorruptionError` immediately (never a hang), split
  writes reassemble transparently, and binary payloads containing
  ``0x0A`` survive the proxy's frame pump untouched;
* the micro-batcher's columnar path answers exactly what the
  ``batch_limit=1`` sequential path answers, including the
  deterministic ``serve.*`` cost counters;
* a hypothesis property: random chunking x session mix x framing
  drive :class:`ServeEngine` to identical outputs *and* identical
  deterministic cost metrics.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.coding import CODER_FAMILIES, parse_coder_spec
from repro.faults.transport import FrameDecision, PartialWrite, ScriptedTransport
from repro.serve import ServeEngine, TraceClient, TraceServer, protocol
from repro.serve.chaos import ChaosProxy
from repro.serve.client import FrameCorruptionError
from repro.traces import BusTrace
from repro.workloads import locality_trace

WIDTH = 16

#: The deterministic cost counters the satellite property pins; timing
#: and batch-shape metrics (``serve.coalesced``, ``serve.batch_*``,
#: latency histograms) legitimately differ between schedules.
COST_COUNTERS = ("serve.requests", "serve.encoded_cycles", "serve.decoded_cycles")


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def flat(chunks):
    return [int(s) for chunk in chunks for s in chunk]


def split(stream, sizes):
    """Carve ``stream`` into chunks of the given sizes plus the tail."""
    parts, pos = [], 0
    for size in sizes:
        parts.append(stream[pos : pos + size])
        pos += size
        if pos >= len(stream):
            break
    parts.append(stream[pos:])
    return [p for p in parts if len(p)]


def cost_counters(baseline):
    delta = obs.get_registry().diff(baseline)["counters"]
    return {
        k: v for k, v in delta.items() if k.split("|")[0] in COST_COUNTERS
    }


class TestEveryFamilyOverTcp:
    def test_binary_and_json_clients_agree_for_all_families(self):
        async def scenario():
            async with TraceServer(port=0) as server:
                json_client = await TraceClient.connect(server.host, server.port)
                bin_client = await TraceClient.connect(server.host, server.port)
                try:
                    assert await bin_client.negotiate_binary()
                    assert not json_client.binary
                    for index, family in enumerate(CODER_FAMILIES):
                        trace = locality_trace(210, seed=40 + index)
                        values = [int(v) for v in trace.values]
                        oracle = parse_coder_spec(family, 32).encode_trace(trace)

                        chunks = split(values, [70, 70])
                        streams = {}
                        states = {}
                        for name, client in (
                            ("json", json_client),
                            ("binary", bin_client),
                        ):
                            stream = await client.open_stream(family, 32)
                            out = [await stream.feed(c) for c in chunks]
                            streams[name] = stream
                            states[name] = out

                        # Framing mirrors the request: ndarrays on the
                        # negotiated connection, plain lists otherwise.
                        for chunk in states["binary"]:
                            assert isinstance(chunk, np.ndarray)
                            assert chunk.dtype == np.dtype("<u8")
                        for chunk in states["json"]:
                            assert isinstance(chunk, list)

                        want = [int(v) for v in oracle.values]
                        assert flat(states["json"]) == want, family
                        assert flat(states["binary"]) == want, family

                        # And the decode direction round-trips over
                        # both framings too.
                        for name, client in (
                            ("json", json_client),
                            ("binary", bin_client),
                        ):
                            decoder = await client.open_stream(family, 32)
                            back = [
                                await decoder.decode(c) for c in states[name]
                            ]
                            assert flat(back) == values, (family, name)
                            await decoder.close()
                            await streams[name].close()
                finally:
                    await json_client.close()
                    await bin_client.close()

        run(scenario())


class TestBinaryFramesUnderChaos:
    def test_corrupted_binary_response_fails_fast_not_hangs(self):
        # s2c frame 0 is the hello (JSON), frame 1 the open response
        # (JSON), frame 2 the first encode response — binary, because
        # the request was.  Bytes 14-15 sit in the CRC-protected JSON
        # header (never 0xFF), so the overwrite is guaranteed to be a
        # detectable change.
        async def scenario():
            async with TraceServer(port=0) as server:
                async with ChaosProxy(
                    server.host,
                    server.port,
                    server_faults=lambda i: ScriptedTransport(
                        {2: FrameDecision(corrupt_at=(14, 15))}
                    ),
                ) as proxy:
                    client = await TraceClient.connect(proxy.host, proxy.port)
                    try:
                        assert await client.negotiate_binary()
                        stream = await client.open_stream("transition", WIDTH)
                        with pytest.raises(FrameCorruptionError):
                            await asyncio.wait_for(stream.feed([1, 2, 3]), 10)
                        # The connection is condemned, not wedged.
                        with pytest.raises(ConnectionError):
                            await client.request("hello")
                    finally:
                        await client.close()
                    return proxy.stats

        stats = run(scenario())
        assert stats.corrupted == 1

    def test_split_writes_and_newline_payload_bytes_survive_the_proxy(self):
        # Every frame in both directions is split across two TCP
        # pushes, and the payload words are stuffed with 0x0A bytes —
        # the two classic ways to shear a naive newline-framed pump.
        values = [0x0A0A0A0A, 10, 0x0A, (10 << 24) | 10]

        async def scenario():
            async with TraceServer(port=0) as server:
                async with ChaosProxy(
                    server.host,
                    server.port,
                    client_faults=lambda i: PartialWrite(rate=1.0, seed=3),
                    server_faults=lambda i: PartialWrite(rate=1.0, seed=4),
                ) as proxy:
                    client = await TraceClient.connect(proxy.host, proxy.port)
                    try:
                        assert await client.negotiate_binary()
                        stream = await client.open_stream("transition", 32)
                        states = await stream.feed(values)
                        await stream.close()
                    finally:
                        await client.close()
                    return states, proxy.stats

        states, stats = run(scenario())
        oracle = parse_coder_spec("transition", 32).encode_trace(
            BusTrace.from_values(values, width=32)
        )
        assert isinstance(states, np.ndarray)
        assert flat([states]) == [int(v) for v in oracle.values]
        assert stats.forwarded == stats.frames > 0
        assert stats.corrupted == stats.cuts == 0


class TestBatchedEqualsSequential:
    def test_columnar_micro_batch_matches_batch_limit_one(self):
        streams, chunks, words = 6, 5, 48

        async def drive(batch_limit):
            traces = [
                [int(v) for v in locality_trace(chunks * words, seed=70 + i).values]
                for i in range(streams)
            ]
            baseline = obs.get_registry().snapshot()
            engine = ServeEngine(batch_limit=batch_limit, queue_limit=256)
            await engine.start()
            try:
                sessions = []
                for i in range(streams):
                    opened = await engine.handle(
                        i, protocol.request("open", 1, coder="transition", width=32)
                    )
                    sessions.append(opened["session"])
                outputs = [[] for _ in range(streams)]

                async def one(i):
                    for start in range(0, chunks * words, words):
                        payload = np.asarray(
                            traces[i][start : start + words], dtype=np.uint64
                        )
                        response = await engine.handle(
                            i,
                            protocol.request(
                                "encode", 2, session=sessions[i], values=payload
                            ),
                        )
                        assert response["ok"]
                        outputs[i].append(response["states"])

                await asyncio.gather(*(one(i) for i in range(streams)))
            finally:
                await engine.stop(0.5)
            return [flat(out) for out in outputs], cost_counters(baseline)

        sequential, seq_costs = run(drive(1))
        batched, batch_costs = run(drive(16))
        assert batched == sequential
        assert batch_costs == seq_costs
        # And both match the library oracle.
        for i, out in enumerate(sequential):
            trace = locality_trace(chunks * words, seed=70 + i)
            oracle = parse_coder_spec("transition", 32).encode_trace(trace)
            assert out == [int(v) for v in oracle.values]


class TestFramingIsInvisibleProperty:
    """Satellite invariant: framing never changes answers or costs."""

    specs = st.lists(st.sampled_from(CODER_FAMILIES), min_size=1, max_size=3)
    values = st.lists(st.integers(0, 0xFFFF), min_size=0, max_size=60)
    chunkings = st.lists(st.integers(1, 17), min_size=0, max_size=8)

    @given(specs=specs, values=values, sizes=chunkings)
    @settings(max_examples=10, deadline=None)
    def test_binary_and_json_engines_agree_bit_and_cost_identically(
        self, specs, values, sizes
    ):
        async def drive(binary):
            baseline = obs.get_registry().snapshot()
            engine = ServeEngine(batch_limit=8, queue_limit=256)
            await engine.start()
            encoded = []
            decoded = []
            try:
                for index, spec in enumerate(specs):
                    opened = await engine.handle(
                        index,
                        protocol.request("open", 1, coder=spec, width=WIDTH),
                    )
                    session = opened["session"]
                    states = []
                    for chunk in split(values, sizes):
                        payload = (
                            np.asarray(chunk, dtype=np.uint64)
                            if binary
                            else [int(v) for v in chunk]
                        )
                        response = await engine.handle(
                            index,
                            protocol.request(
                                "encode", 2, session=session, values=payload
                            ),
                        )
                        assert response["ok"], response
                        # Type mirroring: ndarray in, ndarray out.
                        if binary:
                            assert isinstance(response["states"], np.ndarray)
                        states.append(response["states"])
                    encoded.append(flat(states))

                    decoder = await engine.handle(
                        index,
                        protocol.request("open", 3, coder=spec, width=WIDTH),
                    )
                    back = []
                    for chunk in split(encoded[-1], sizes):
                        payload = (
                            np.asarray(chunk, dtype=np.uint64)
                            if binary
                            else [int(v) for v in chunk]
                        )
                        response = await engine.handle(
                            index,
                            protocol.request(
                                "decode",
                                4,
                                session=decoder["session"],
                                states=payload,
                            ),
                        )
                        assert response["ok"], response
                        back.append(response["values"])
                    decoded.append(flat(back))
            finally:
                await engine.stop(0.5)
            return encoded, decoded, cost_counters(baseline)

        json_enc, json_dec, json_costs = run(drive(False))
        bin_enc, bin_dec, bin_costs = run(drive(True))
        assert bin_enc == json_enc
        assert bin_dec == json_dec
        assert bin_costs == json_costs
        # Decoding what we encoded recovers the input for every session.
        want = [int(v) for v in values]
        for back in json_dec:
            assert back == want
