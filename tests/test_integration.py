"""Integration tests: the full pipeline from program text to joules."""

import numpy as np
import pytest

from repro import (
    BusEnergyModel,
    CrossoverAnalysis,
    HardwareWindowTranscoder,
    Machine,
    PipelineConfig,
    TECH_013,
    WindowTranscoder,
    normalized_energy_removed,
)
from repro.workloads import register_trace

SUM_LOOP = """
        li   r1, 0x10000
        li   r4, 0x10100
        li   r3, 0
loop:   lw   r2, 0(r1)
        add  r3, r3, r2
        addi r1, r1, 4
        bne  r1, r4, loop
        li   r10, 0x20000
        sw   r3, 0(r10)
        halt
"""


class TestProgramToEnergy:
    def test_full_stack(self):
        machine = Machine(source=SUM_LOOP, name="sum")
        machine.memory.store_words(0x10000, range(64))
        result = machine.run()
        assert machine.memory.load_word(0x20000) == sum(range(64))

        trace = result.register_trace
        coder = WindowTranscoder(8, 32)
        coded = coder.encode_trace(trace)
        assert np.array_equal(coder.decode_trace(coded).values, trace.values)

        model = BusEnergyModel(TECH_013, 10.0)
        assert model.trace_energy(trace) > 0
        assert model.trace_energy(coded) != model.trace_energy(trace)

    def test_savings_are_stable_across_runs(self):
        def measure():
            machine = Machine(source=SUM_LOOP)
            machine.memory.store_words(0x10000, range(64))
            trace = machine.run().register_trace
            return normalized_energy_removed(
                trace, WindowTranscoder(8, 32).encode_trace(trace)
            )

        assert measure() == pytest.approx(measure())


class TestSuiteToCrossover:
    def test_crossover_pipeline(self):
        trace = register_trace("ijpeg", 5000)
        analysis = CrossoverAnalysis(trace, TECH_013, 8)
        ratio_short = analysis.ratio(1.0)
        ratio_long = analysis.ratio(40.0)
        assert ratio_short > ratio_long
        # ijpeg compresses well; at 40 mm the transcoder must win.
        assert ratio_long < 1.0

    def test_hw_energy_consistent_with_analysis(self):
        trace = register_trace("ijpeg", 5000)
        hw = HardwareWindowTranscoder(TECH_013, 8, 32)
        per_cycle = hw.trace_energy_per_cycle(trace)
        analysis = CrossoverAnalysis(trace, TECH_013, 8)
        assert analysis.transcoder_energy == pytest.approx(
            per_cycle * 1.4 * len(trace), rel=0.01
        )


class TestPipelineCacheInteraction:
    def test_small_cache_more_memory_traffic(self):
        def mem_events(cache_bytes):
            machine = Machine(
                source=SUM_LOOP,
                config=PipelineConfig(cache_size_bytes=cache_bytes),
            )
            machine.memory.store_words(0x10000, range(64))
            result = machine.run()
            return result.stats.load_misses

        assert mem_events(256) >= mem_events(4096)
