"""The ``repro run`` orchestration CLI and the ``run-soak`` gate.

``run`` is two commands in one: a workload name keeps its historical
kernel-statistics meaning, a matrix name drives the resumable ledger
layer.  The dispatch, the resume UX, the one-line error contract and
the ``--strict`` exit code are all pinned here; the full kill -9
acceptance run lives in the chaos-marked soak test.
"""

import json
import os

import pytest

from repro.cli import build_parser, main
from repro.runs import LEDGER_FILENAME

GEN = "gen:mixed,seed=9,population=2,cycles=256,width=16"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0, captured.err
    return captured.out


def run_cli_error(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 1
    return captured.err


class TestRunMatrixCommand:
    def test_savings_matrix_end_to_end(self, capsys, tmp_path):
        out = run_cli(
            capsys,
            "run",
            "savings",
            "--source", GEN,
            "--coders", "last,window8",
            "--runs-dir", str(tmp_path),
            "--run-id", "r",
        )
        assert "savings matrix | 4 cells" in out
        assert "run r: complete | 4/4 cells" in out
        assert os.path.exists(str(tmp_path / "r" / LEDGER_FILENAME))
        assert os.path.exists(str(tmp_path / "r" / "summary.json"))

    def test_resume_by_id_skips_completed_cells(self, capsys, tmp_path):
        run_cli(
            capsys,
            "run", "savings",
            "--source", GEN,
            "--coders", "last",
            "--runs-dir", str(tmp_path),
            "--run-id", "r",
        )
        out = run_cli(
            capsys, "run", "--resume", "r", "--runs-dir", str(tmp_path)
        )
        assert "(2 skipped" in out
        assert "complete" in out

    def test_rerun_without_resume_is_one_line_error(self, capsys, tmp_path):
        args = [
            "run", "savings",
            "--source", GEN,
            "--coders", "last",
            "--runs-dir", str(tmp_path),
            "--run-id", "r",
        ]
        run_cli(capsys, *args)
        err = run_cli_error(capsys, *args)
        assert err.startswith("repro: error:")
        assert "--resume r" in err

    def test_resume_of_unknown_run_is_one_line_error(self, capsys, tmp_path):
        err = run_cli_error(
            capsys, "run", "--resume", "ghost", "--runs-dir", str(tmp_path)
        )
        assert err.startswith("repro: error:")
        assert "nothing to resume" in err

    def test_bare_run_command_is_one_line_error(self, capsys):
        err = run_cli_error(capsys, "run")
        assert err.startswith("repro: error:")
        assert "workload name or a matrix" in err

    def test_strict_turns_degraded_into_nonzero_exit(self, capsys, tmp_path):
        code = main(
            [
                "run", "savings",
                "--source", GEN,
                "--coders", "last",
                "--runs-dir", str(tmp_path),
                "--run-id", "r",
                "--chaos", "fail@0",
                "--strict",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED:deterministic-failure" in out
        assert "degraded" in out

    def test_degraded_without_strict_exits_zero(self, capsys, tmp_path):
        out = run_cli(
            capsys,
            "run", "savings",
            "--source", GEN,
            "--coders", "last",
            "--runs-dir", str(tmp_path),
            "--run-id", "r",
            "--chaos", "fail@0",
        )
        assert "degraded" in out

    def test_bad_source_spec_is_one_line_error(self, capsys, tmp_path):
        err = run_cli_error(
            capsys,
            "run", "savings",
            "--source", "teleport:nowhere",
            "--runs-dir", str(tmp_path),
        )
        assert err.startswith("repro: error:")
        assert "Traceback" not in err

    def test_faults_matrix_over_gen_source(self, capsys, tmp_path):
        out = run_cli(
            capsys,
            "run", "faults",
            "--source", GEN,
            "--coders", "window8",
            "--ber", "1e-4",
            "--policies", "reset-both",
            "--streams", "1",
            "--runs-dir", str(tmp_path),
            "--run-id", "f",
        )
        assert "faults matrix | 1 cells" in out
        assert "net savings %" in out

    def test_summary_json_carries_config_digest(self, capsys, tmp_path):
        run_cli(
            capsys,
            "run", "savings",
            "--source", GEN,
            "--coders", "last",
            "--runs-dir", str(tmp_path),
            "--run-id", "r",
        )
        with open(str(tmp_path / "r" / "summary.json"), encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["status"] == "complete"
        assert len(document["config_digest"]) == 64
        assert document["counts"] == {"total": 2, "done": 2, "failed": 0}


class TestLegacyRunCommand:
    def test_workload_run_still_prints_stats(self, capsys):
        out = run_cli(capsys, "run", "gcc", "--cycles", "4000")
        assert "instructions" in out and "IPC" in out

    def test_unknown_target_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "spice"])


class TestParserWiring:
    def test_matrix_names_are_valid_targets(self):
        for name in ("savings", "crossover", "table3", "faults"):
            args = build_parser().parse_args(["run", name])
            assert args.target == name

    def test_resume_flag_shapes(self):
        args = build_parser().parse_args(["run", "--resume", "abc"])
        assert args.target is None and args.resume == "abc"
        args = build_parser().parse_args(["run", "savings", "--resume"])
        assert args.target == "savings" and args.resume == ""
        args = build_parser().parse_args(["run", "savings"])
        assert args.resume is None

    def test_run_soak_parser(self):
        args = build_parser().parse_args(["run-soak", "--quick", "--seed", "3"])
        assert args.command == "run-soak"
        assert args.quick and args.seed == 3


@pytest.mark.chaos
class TestRunSoak:
    def test_quick_soak_passes(self, tmp_path):
        """The full acceptance gate: SIGKILL mid-matrix, corrupt an
        artifact, resume, byte-identical aggregates."""
        from repro.runs.soak import run_soak

        report = run_soak(directory=str(tmp_path / "soak"), quick=True)
        assert report.ok, report.failures
        names = [c.name for c in report.checks]
        assert "victim run SIGKILLed mid-matrix" in names
        assert "summary.json byte-identical to uninterrupted run" in names
