"""Unit tests for the consistent-hash ring behind cluster placement.

The properties pinned here are exactly the ones the router builds on:
deterministic placement, minimal movement on membership change,
reasonable spread, and the ``lookup_excluding`` walk that makes a
failed-over session come *home* when its worker rejoins.
"""

import pytest

from repro.serve.ring import HashRing


def ring_of(*members, replicas=64):
    ring = HashRing(replicas=replicas)
    for member in members:
        ring.add(member)
    return ring


class TestMembership:
    def test_rejects_bad_replicas(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_add_and_remove_are_idempotent(self):
        ring = ring_of("w0", "w1")
        ring.add("w0")
        assert len(ring) == 2
        ring.remove("w1")
        ring.remove("w1")
        assert ring.members == ["w0"]

    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        assert ring.lookup("s1") is None
        assert ring.lookup_excluding("s1", set()) is None


class TestPlacement:
    def test_placement_is_deterministic(self):
        a = ring_of("w0", "w1", "w2")
        b = ring_of("w2", "w0", "w1")  # insertion order must not matter
        for key in map(str, range(200)):
            assert a.lookup(key) == b.lookup(key)

    def test_spread_is_roughly_even(self):
        ring = ring_of("w0", "w1", "w2", "w3")
        counts = {m: 0 for m in ring.members}
        for key in map(str, range(2000)):
            counts[ring.lookup(key)] += 1
        # 64 virtual nodes keep every arc within a loose 2x band of the
        # fair share (500) — enough that no worker idles or drowns.
        assert min(counts.values()) > 250
        assert max(counts.values()) < 1000

    def test_removal_moves_only_the_dead_members_keys(self):
        ring = ring_of("w0", "w1", "w2", "w3")
        before = {key: ring.lookup(key) for key in map(str, range(500))}
        ring.remove("w2")
        for key, owner in before.items():
            if owner == "w2":
                assert ring.lookup(key) != "w2"
            else:
                assert ring.lookup(key) == owner  # everyone else stays put


class TestLookupExcluding:
    def test_exclusion_matches_removal(self):
        """Excluding a member routes exactly like removing it — the
        failover target is the key's next-clockwise live owner."""
        ring = ring_of("w0", "w1", "w2", "w3")
        removed = ring_of("w0", "w1", "w3")
        for key in map(str, range(300)):
            assert ring.lookup_excluding(key, {"w2"}) == removed.lookup(key)

    def test_primary_owner_survives_exclusion_rounds(self):
        """The whole point of exclude-don't-remove: when the dead worker
        comes back, every key's primary owner is what it always was."""
        ring = ring_of("w0", "w1", "w2")
        primaries = {key: ring.lookup(key) for key in map(str, range(300))}
        for key in primaries:
            ring.lookup_excluding(key, {"w1"})  # failover rounds
        for key, owner in primaries.items():
            assert ring.lookup(key) == owner

    def test_all_excluded_returns_none(self):
        ring = ring_of("w0", "w1")
        assert ring.lookup_excluding("s", {"w0", "w1"}) is None
