"""Unit tests for transition/coupling accounting (equations 1-3)."""

import numpy as np
import pytest

from repro.energy import (
    count_activity,
    coupling_counts,
    normalized_energy_removed,
    popcount,
    transition_counts,
    weighted_activity,
)
from repro.traces import BusTrace


class TestPopcount:
    def test_known_values(self):
        values = np.array([0, 1, 3, 0xFF, 2**63], dtype=np.uint64)
        assert list(popcount(values)) == [0, 1, 2, 8, 1]

    def test_all_ones_64bit(self):
        assert popcount(np.array([2**64 - 1], dtype=np.uint64))[0] == 64


class TestTransitionCounts:
    def test_single_wire_toggling(self):
        trace = BusTrace.from_values([1, 0, 1, 0], width=2)
        tau = transition_counts(trace)
        assert tau[0] == 4  # wire 0 flips every cycle (initial 0)
        assert tau[1] == 0

    def test_includes_initial_state(self):
        trace = BusTrace.from_values([0], width=1, initial=1)
        assert transition_counts(trace)[0] == 1

    def test_empty_trace(self):
        counts = count_activity(BusTrace.from_values([], width=4))
        assert counts.total_transitions == 0
        assert counts.total_coupling == 0


class TestCouplingCounts:
    def test_lone_toggle_couples_once_per_neighbour(self):
        # Wire 1 toggles, wires 0 and 2 quiet: pair (0,1) and (1,2) each
        # see one coupling event.
        trace = BusTrace.from_values([0b010], width=3, initial=0)
        kappa = coupling_counts(trace)
        assert list(kappa) == [1, 1]

    def test_same_direction_toggles_do_not_couple(self):
        # Wires 0 and 1 rise together: the inter-wire capacitor sees no
        # voltage change.
        trace = BusTrace.from_values([0b11], width=2, initial=0)
        assert coupling_counts(trace)[0] == 0

    def test_opposite_toggles_couple_twice(self):
        # Wire 0 rises while wire 1 falls: double swing across C_I.
        trace = BusTrace.from_values([0b01], width=2, initial=0b10)
        assert coupling_counts(trace)[0] == 2

    def test_width_one_bus_has_no_pairs(self):
        trace = BusTrace.from_values([1, 0, 1], width=1)
        assert coupling_counts(trace).shape == (0,)


class TestWeightedActivity:
    def test_lambda_zero_counts_only_transitions(self, tiny_trace):
        counts = count_activity(tiny_trace)
        assert weighted_activity(tiny_trace, 0.0) == counts.total_transitions

    def test_lambda_one_adds_coupling(self, tiny_trace):
        counts = count_activity(tiny_trace)
        expected = counts.total_transitions + counts.total_coupling
        assert weighted_activity(tiny_trace, 1.0) == expected

    def test_activity_counts_addition(self, tiny_trace):
        counts = count_activity(tiny_trace)
        doubled = counts + counts
        assert doubled.total_transitions == 2 * counts.total_transitions
        assert doubled.cycles == 2 * counts.cycles

    def test_addition_rejects_width_mismatch(self, tiny_trace):
        other = count_activity(BusTrace.from_values([1], width=4))
        with pytest.raises(ValueError):
            count_activity(tiny_trace) + other


class TestNormalizedEnergyRemoved:
    def test_identical_traces_remove_nothing(self, tiny_trace):
        assert normalized_energy_removed(tiny_trace, tiny_trace) == pytest.approx(0.0)

    def test_quiet_coded_bus_removes_everything(self, tiny_trace):
        quiet = BusTrace.from_values([0] * len(tiny_trace), width=8)
        assert normalized_energy_removed(tiny_trace, quiet) == pytest.approx(100.0)

    def test_noisier_coded_bus_is_negative(self):
        base = BusTrace.from_values([0, 0, 0, 0], width=8)
        noisy = BusTrace.from_values([0xFF, 0x00, 0xFF, 0x00], width=8)
        assert normalized_energy_removed(base, noisy) == 0.0  # base energy 0
        base2 = BusTrace.from_values([1, 0, 1, 0], width=8)
        assert normalized_energy_removed(base2, noisy) < 0

    def test_kappa_bounded_by_neighbour_taus(self, gcc_register):
        # |delta_n - delta_{n+1}| <= |delta_n| + |delta_{n+1}| cycle-wise.
        counts = count_activity(gcc_register)
        for n in range(gcc_register.width - 1):
            assert counts.kappa[n] <= counts.tau[n] + counts.tau[n + 1]
