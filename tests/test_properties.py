"""Property-based tests (hypothesis) for the core invariants.

The paper's correctness contract is that encoder and decoder FSMs stay
synchronised for *any* input stream; these tests throw arbitrary
streams at every scheme and check the contract plus the structural
invariants of the dictionaries and the accounting algebra.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.coding import (
    AdaptiveCodebookTranscoder,
    BusInvertTranscoder,
    ContextTranscoder,
    InversionTranscoder,
    LastValueTranscoder,
    SpatialTranscoder,
    StrideTranscoder,
    TRANSITION_BASED,
    TransitionCoder,
    VariableLengthTranscoder,
    WindowTranscoder,
    WorkZoneTranscoder,
    codeword_table,
    hamming_weight,
)
from repro.energy import count_activity, weighted_activity
from repro.hardware import JohnsonCounter, MAX_COUNT
from repro.traces import BusTrace

# Value streams: biased toward repeats and small working sets so the
# dictionary paths (hits, evictions, promotions) actually exercise.
values16 = st.lists(
    st.one_of(
        st.integers(0, 0xFFFF),
        st.sampled_from([0, 1, 0xAAAA, 0x00FF, 0x1234]),
    ),
    min_size=0,
    max_size=120,
)


def make_trace(values, width=16):
    return BusTrace.from_values(values, width=width)


class TestRoundTrips:
    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_window(self, values):
        coder = WindowTranscoder(5, 16)
        trace = make_trace(values)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_context_value_based(self, values):
        coder = ContextTranscoder(6, 3, divide_period=17, width=16)
        trace = make_trace(values)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(values16)
    @settings(max_examples=40, deadline=None)
    def test_context_transition_based(self, values):
        coder = ContextTranscoder(6, 3, TRANSITION_BASED, divide_period=23, width=16)
        trace = make_trace(values)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_stride(self, values):
        coder = StrideTranscoder(4, 16)
        trace = make_trace(values)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_last_value(self, values):
        coder = LastValueTranscoder(16)
        trace = make_trace(values)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_inversion(self, values):
        coder = InversionTranscoder(16, 2)
        trace = make_trace(values)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_transition_coder(self, values):
        coder = TransitionCoder(16)
        trace = make_trace(values)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(st.lists(st.integers(0, 15), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_spatial(self, values):
        coder = SpatialTranscoder(4)
        trace = make_trace(values, width=4)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_bus_invert(self, values):
        coder = BusInvertTranscoder(16, 2)
        trace = make_trace(values)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_workzone(self, values):
        coder = WorkZoneTranscoder(16, zones=3, offset_bits=4, granularity=1)
        trace = make_trace(values)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_adaptive_codebook(self, values):
        coder = AdaptiveCodebookTranscoder(16, 4)
        trace = make_trace(values)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)

    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_variable_length(self, values):
        coder = VariableLengthTranscoder(16, 8, 8)
        trace = make_trace(values)
        report = coder.encode_trace(trace)
        assert np.array_equal(coder.decode_flits(report).values, trace.values)


class TestEncoderDeterminism:
    @given(values16)
    @settings(max_examples=30, deadline=None)
    def test_encoding_is_pure(self, values):
        trace = make_trace(values)
        coder = ContextTranscoder(5, 3, divide_period=11, width=16)
        first = coder.encode_trace(trace).values
        second = coder.encode_trace(trace).values
        assert np.array_equal(first, second)


class TestAccountingAlgebra:
    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_kappa_bounded_by_adjacent_taus(self, values):
        counts = count_activity(make_trace(values))
        for n in range(len(counts.kappa)):
            assert counts.kappa[n] <= counts.tau[n] + counts.tau[n + 1]

    @given(values16)
    @settings(max_examples=60, deadline=None)
    def test_tau_bounded_by_cycles(self, values):
        counts = count_activity(make_trace(values))
        assert all(t <= counts.cycles for t in counts.tau)

    @given(values16, st.floats(0, 16))
    @settings(max_examples=40, deadline=None)
    def test_weighted_activity_monotone_in_lambda(self, values, lam):
        trace = make_trace(values)
        assert weighted_activity(trace, lam) >= weighted_activity(trace, 0.0)

    @given(values16)
    @settings(max_examples=40, deadline=None)
    def test_concatenation_additivity(self, values):
        # Activity of a trace equals the sum over a split at any point
        # when the second half carries the boundary state.
        trace = make_trace(values)
        if len(trace) < 2:
            return
        cut = len(trace) // 2
        front, back = trace[:cut], trace[cut:]
        total = count_activity(trace)
        split = count_activity(front) + count_activity(back)
        assert total.total_transitions == split.total_transitions
        assert total.total_coupling == split.total_coupling


class TestContextInvariants:
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_throughout(self, values):
        from repro.coding import ContextPredictor

        pred = ContextPredictor(table_size=4, shift_size=2, divide_period=13)
        for v in values:
            pred.update(v)
            pred.check_invariants()


class TestCodebookProperties:
    @given(st.integers(1, 12), st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_distinct_and_weight_sorted(self, width, count):
        count = min(count, 1 << width)
        table = codeword_table(count, width)
        assert len(set(table)) == len(table)
        weights = [hamming_weight(w) for w in table]
        assert weights == sorted(weights)


class TestJohnsonProperties:
    @given(st.integers(0, MAX_COUNT - 1), st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_increment_semantics(self, start, steps):
        counter = JohnsonCounter(start)
        for _ in range(steps):
            before = counter.value
            flips = counter.increment()
            if before == MAX_COUNT - 1:
                assert counter.value == before and flips == 0
            else:
                assert counter.value == before + 1 and flips >= 1

    @given(st.integers(0, MAX_COUNT - 1))
    @settings(max_examples=60, deadline=None)
    def test_halve_semantics(self, start):
        counter = JohnsonCounter(start)
        counter.halve()
        assert counter.value == start // 2
