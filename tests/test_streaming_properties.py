"""Hypothesis properties for the chunked streaming codec API.

For *every* registered coder family: a streaming encode→decode through
an arbitrary random chunking equals the one-shot path bit-for-bit, and
an FSM checkpoint taken at an arbitrary mid-stream point replays
identically after a restore.  These are the properties that make chunk
boundaries (and therefore the serving layer's per-request chunks)
invisible to the paper's FSM semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding import CODER_FAMILIES, build_coder
from repro.traces import BusTrace, StreamingDecoder, StreamingEncoder

WIDTH = 16

# Biased toward repeats/small working sets so dictionary paths exercise.
values = st.lists(
    st.one_of(
        st.integers(0, 0xFFFF),
        st.sampled_from([0, 1, 0xAAAA, 0x00FF, 0x1234]),
    ),
    min_size=0,
    max_size=80,
)

# Chunk lengths to carve the stream into (tail handled separately).
chunkings = st.lists(st.integers(1, 17), min_size=0, max_size=12)


def split(stream, sizes):
    """Carve ``stream`` into chunks of the given sizes plus the tail."""
    parts, pos = [], 0
    for size in sizes:
        parts.append(stream[pos : pos + size])
        pos += size
        if pos >= len(stream):
            break
    parts.append(stream[pos:])
    return [p for p in parts if len(p)]


@pytest.mark.parametrize("family", CODER_FAMILIES)
class TestStreamingRoundTrip:
    @given(values=values, sizes=chunkings)
    @settings(max_examples=25, deadline=None)
    def test_chunked_encode_equals_one_shot(self, family, values, sizes):
        trace = BusTrace.from_values(values, width=WIDTH)
        oneshot = build_coder(family, 4, WIDTH).encode_trace(trace).values
        enc = StreamingEncoder(build_coder(family, 4, WIDTH))
        parts = [enc.feed(c) for c in split(trace.values, sizes)]
        streamed = np.concatenate(parts) if parts else np.empty(0, dtype=np.uint64)
        assert np.array_equal(streamed, oneshot)

    @given(values=values, enc_sizes=chunkings, dec_sizes=chunkings)
    @settings(max_examples=25, deadline=None)
    def test_chunked_decode_round_trips(self, family, values, enc_sizes, dec_sizes):
        trace = BusTrace.from_values(values, width=WIDTH)
        enc = StreamingEncoder(build_coder(family, 4, WIDTH))
        states = [enc.feed(c) for c in split(trace.values, enc_sizes)]
        wire = np.concatenate(states) if states else np.empty(0, dtype=np.uint64)
        dec = StreamingDecoder(build_coder(family, 4, WIDTH))
        decoded = [dec.feed(c) for c in split(wire, dec_sizes)]
        out = np.concatenate(decoded) if decoded else np.empty(0, dtype=np.uint64)
        assert np.array_equal(out, trace.values)

    @given(values=values, cut=st.integers(0, 80), sizes=chunkings)
    @settings(max_examples=25, deadline=None)
    def test_checkpoint_restore_mid_stream(self, family, values, cut, sizes):
        """Save at an arbitrary point, diverge, restore, replay: identical."""
        trace = BusTrace.from_values(values, width=WIDTH)
        cut = min(cut, len(trace))
        enc = StreamingEncoder(build_coder(family, 4, WIDTH))
        enc.feed(trace.values[:cut])
        ckpt = enc.checkpoint()
        tail = split(trace.values[cut:], sizes)
        first = [enc.feed(c) for c in tail]
        enc.restore(ckpt)
        assert enc.cycles == cut
        again = [enc.feed(c) for c in tail]
        for a, b in zip(first, again):
            assert np.array_equal(a, b)
        # And the replayed stream still matches the one-shot encoding.
        oneshot = build_coder(family, 4, WIDTH).encode_trace(trace).values
        whole = [np.asarray(oneshot[:cut])] + [np.asarray(a) for a in again]
        streamed = np.concatenate(whole) if whole else np.empty(0, dtype=np.uint64)
        assert np.array_equal(streamed, oneshot)

    @given(values=values, cut=st.integers(0, 80))
    @settings(max_examples=15, deadline=None)
    def test_decoder_checkpoint_restore(self, family, values, cut):
        trace = BusTrace.from_values(values, width=WIDTH)
        wire = build_coder(family, 4, WIDTH).encode_trace(trace).values
        cut = min(cut, len(wire))
        dec = StreamingDecoder(build_coder(family, 4, WIDTH))
        dec.feed(wire[:cut])
        ckpt = dec.checkpoint()
        first = dec.feed(wire[cut:])
        dec.restore(ckpt)
        assert np.array_equal(first, dec.feed(wire[cut:]))

    @given(values=values, cut=st.integers(0, 80), sizes=chunkings)
    @settings(max_examples=25, deadline=None)
    def test_wire_checkpoint_resume_equals_one_shot(self, family, values, cut, sizes):
        """The serving layer's resume guarantee, as a pure-FSM property.

        Encode up to an arbitrary disconnect point, export the
        checkpoint through the JSON wire codec (the exact blob a
        ``ResilientTraceClient`` holds across a dropped connection),
        resume a *fresh* encoder from it, and finish the trace under an
        arbitrary re-chunking: the combined wire stream must equal the
        uninterrupted one-shot encode bit-for-bit — and therefore
        cost-for-cost, the transition counts the paper's energy model
        integrates.
        """
        import json

        from repro.energy import count_activity
        from repro.traces.streaming import (
            checkpoint_from_wire,
            checkpoint_to_wire,
        )

        trace = BusTrace.from_values(values, width=WIDTH)
        cut = min(cut, len(trace))
        oneshot = build_coder(family, 4, WIDTH).encode_trace(trace)

        enc = StreamingEncoder(build_coder(family, 4, WIDTH))
        head = enc.feed(trace.values[:cut])
        # The blob crosses a real JSON boundary, like the wire does.
        blob = json.loads(json.dumps(checkpoint_to_wire(enc.checkpoint())))

        resumed = StreamingEncoder(build_coder(family, 4, WIDTH))
        resumed.restore(checkpoint_from_wire(blob))
        assert resumed.cycles == cut
        parts = [np.asarray(head)] + [
            np.asarray(resumed.feed(c)) for c in split(trace.values[cut:], sizes)
        ]
        streamed = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.uint64)
        )
        assert np.array_equal(streamed, oneshot.values)
        if len(streamed):
            spliced = BusTrace(streamed, oneshot.width)
            assert (
                count_activity(spliced).total_transitions
                == count_activity(oneshot).total_transitions
            )
