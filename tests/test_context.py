"""Unit tests for the context-based transcoder (Figures 12-14, 20-25)."""

import numpy as np
import pytest

from repro.coding import (
    COUNTER_MAX,
    ContextPredictor,
    ContextTranscoder,
    TRANSITION_BASED,
    VALUE_BASED,
)
from repro.energy import normalized_energy_removed
from repro.traces import BusTrace
from repro.workloads import locality_trace


def feed(pred, values):
    for v in values:
        pred.update(v)


class TestValueBasedPredictor:
    def test_frequent_value_promoted_to_table(self):
        pred = ContextPredictor(table_size=4, shift_size=2, divide_period=10**9)
        # 9 repeats inside the window, then push it out with new values.
        feed(pred, [5, 1, 5, 2, 5, 3, 5, 4, 5, 6, 7, 8])
        assert any(
            e is not None and e[0] == 5 for e in pred.table_contents
        )

    def test_table_sorted_by_count(self):
        pred = ContextPredictor(table_size=8, shift_size=2, divide_period=10**9)
        values = [1, 2] * 3 + [1, 3] * 6 + [9, 10, 11, 12, 13, 14]
        feed(pred, values)
        pred.check_invariants()
        counts = [e[1] for e in pred.table_contents if e is not None]
        assert counts == sorted(counts, reverse=True)

    def test_one_time_values_never_enter_table(self):
        pred = ContextPredictor(table_size=4, shift_size=2, divide_period=10**9)
        feed(pred, range(100, 120))  # all unique
        assert all(e is None for e in pred.table_contents)

    def test_invariant_one_no_duplicate_tags(self):
        pred = ContextPredictor(table_size=6, shift_size=3, divide_period=64)
        rng = np.random.default_rng(0)
        feed(pred, (int(v) for v in rng.integers(0, 12, 3000)))
        pred.check_invariants()

    def test_counter_saturates(self):
        pred = ContextPredictor(table_size=2, shift_size=2, divide_period=10**9)
        # Value 5 recurs between fresh values: promoted to the table,
        # then hit more times than the Johnson counters can count.
        stream = [v for i in range(COUNTER_MAX + 200) for v in (5, 100 + i)]
        feed(pred, stream)
        pred.check_invariants()
        top = pred.table_contents[0]
        assert top is not None and top[0] == 5 and top[1] <= COUNTER_MAX

    def test_counter_division_halves_counts(self):
        pred = ContextPredictor(table_size=2, shift_size=2, divide_period=10**9)
        feed(pred, [1, 2] * 10)
        before = [e[1] for e in pred.table_contents if e is not None]
        pred._divide_counters()
        after = [e[1] for e in pred.table_contents if e is not None]
        assert after == [c // 2 for c in before]

    def test_match_priority_last_table_shift(self):
        pred = ContextPredictor(table_size=4, shift_size=4, divide_period=10**9)
        feed(pred, [5, 1, 5, 2, 5, 3, 5, 4, 5, 6, 7, 8, 9])
        # 5 is in the table, 9 was just seen (in SR and is LAST).
        assert pred.match(9) == 0
        index_5 = pred.match(5)
        assert index_5 is not None and 1 <= index_5 <= 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ContextPredictor(table_size=0)
        with pytest.raises(ValueError):
            ContextPredictor(shift_size=0)
        with pytest.raises(ValueError):
            ContextPredictor(flavor="bogus")
        with pytest.raises(ValueError):
            ContextPredictor(divide_period=0)


class TestTransitionBasedPredictor:
    def test_pair_tags(self):
        pred = ContextPredictor(
            table_size=4, shift_size=4, flavor=TRANSITION_BASED, divide_period=10**9
        )
        feed(pred, [1, 2, 1, 2, 1, 2])
        # After seeing 1 -> 2 repeatedly, with last == 1 the pair (1, 2)
        # should predict 2.
        assert pred.last == 2
        pred.update(1)
        assert pred.match(2) is not None

    def test_pair_requires_matching_prefix(self):
        pred = ContextPredictor(
            table_size=4, shift_size=4, flavor=TRANSITION_BASED, divide_period=10**9
        )
        feed(pred, [1, 2, 3])  # pairs (x,1),(1,2),(2,3); last == 3
        # Pair (1, 2) exists but last is 3, so 2 must not match via it.
        assert pred.match(2) is None


class TestContextTranscoder:
    @pytest.mark.parametrize("flavor", [VALUE_BASED, TRANSITION_BASED])
    def test_roundtrip(self, flavor, local_trace):
        coder = ContextTranscoder(12, 4, flavor, divide_period=256)
        assert np.array_equal(coder.roundtrip(local_trace).values, local_trace.values)

    def test_roundtrip_register_bus(self, gcc_register):
        coder = ContextTranscoder(28, 8)
        assert np.array_equal(
            coder.roundtrip(gcc_register).values, gcc_register.values
        )

    def test_value_based_beats_transition_based(self, gcc_register):
        # Figures 20-23: far more arcs than states, so the transition
        # flavour hits less for equal hardware.
        value = normalized_energy_removed(
            gcc_register, ContextTranscoder(16, 8, VALUE_BASED).encode_trace(gcc_register)
        )
        transition = normalized_energy_removed(
            gcc_register,
            ContextTranscoder(16, 8, TRANSITION_BASED).encode_trace(gcc_register),
        )
        assert value > transition

    def test_saves_on_hot_value_traffic(self):
        trace = locality_trace(
            4000,
            repeat_fraction=0.15,
            reuse_fraction=0.55,
            stride_fraction=0.1,
            working_set=16,
            seed=9,
        )
        saved = normalized_energy_removed(
            trace, ContextTranscoder(16, 8).encode_trace(trace)
        )
        assert saved > 25.0

    def test_divide_period_keeps_adapting_to_phases(self):
        # Phase 1 hammers one value set, phase 2 another; a short divide
        # period lets phase-2 values displace stale phase-1 counts.
        phase1 = [1, 2, 3, 4] * 500
        phase2 = [100, 200, 300, 400] * 500
        trace = BusTrace.from_values(phase1 + phase2, width=32)
        adaptive = normalized_energy_removed(
            trace, ContextTranscoder(4, 4, divide_period=256).encode_trace(trace)
        )
        stale = normalized_energy_removed(
            trace, ContextTranscoder(4, 4, divide_period=10**9).encode_trace(trace)
        )
        assert adaptive >= stale
