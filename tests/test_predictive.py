"""Unit tests for the prediction transcoding framework (Figure 2)."""

import numpy as np
import pytest

from repro.coding import (
    CTRL_CODE,
    CTRL_RAW,
    CTRL_RAW_INVERTED,
    LastValuePredictor,
    LastValueTranscoder,
    PredictiveTranscoder,
    WindowTranscoder,
)
from repro.energy import count_activity
from repro.traces import BusTrace


class TestControlEncoding:
    def test_gray_coded_raw_modes(self):
        # RAW <-> RAW_INVERTED must differ in a single bit.
        assert bin(CTRL_RAW ^ CTRL_RAW_INVERTED).count("1") == 1

    def test_code_mode_is_zero(self):
        assert CTRL_CODE == 0


class TestLastValueTranscoder:
    def test_roundtrip(self, local_trace):
        coder = LastValueTranscoder(32)
        assert np.array_equal(coder.roundtrip(local_trace).values, local_trace.values)

    def test_output_width_adds_two_control_wires(self):
        assert LastValueTranscoder(32).output_width == 34

    def test_repeats_are_completely_silent(self):
        trace = BusTrace.from_values([0xAB, 0xAB, 0xAB, 0xAB], width=8)
        phys = LastValueTranscoder(8).encode_trace(trace)
        counts = count_activity(phys)
        # Only the first (raw) word costs anything.
        first_only = count_activity(phys.head(1))
        assert counts.total_transitions == first_only.total_transitions

    def test_repeat_after_raw_does_not_touch_control(self):
        # The silent-LAST rule: a repeat leaves data AND control wires
        # exactly as they were.
        trace = BusTrace.from_values([0x5A, 0x5A], width=8)
        phys = LastValueTranscoder(8).encode_trace(trace)
        assert phys[0] == phys[1]

    def test_inverted_raw_when_cheaper(self):
        coder = LastValueTranscoder(8)
        coder.reset()
        coder.encode_value(0x00)
        # 0xFE differs from current data state (0x00) in 7 bits; its
        # complement 0x01 differs in 1 -> the encoder must invert.
        state = coder.encode_value(0xFE)
        _, ctrl = coder._unpack(state)
        assert ctrl == CTRL_RAW_INVERTED

    def test_decoder_rejects_invalid_control(self):
        coder = LastValueTranscoder(8)
        coder.reset()
        with pytest.raises(ValueError):
            # Control 0b10 is not a valid Gray encoding.
            coder.decode_state(coder._pack(0x55, 0b10))

    def test_edge_control_layout_roundtrips(self, local_trace):
        import numpy as np
        from repro.coding import WindowPredictor

        coder = PredictiveTranscoder(
            WindowPredictor(8, 32), 32, edge_control=True
        )
        assert np.array_equal(coder.roundtrip(local_trace).values, local_trace.values)

    def test_non_silent_last_roundtrips(self, local_trace):
        import numpy as np
        from repro.coding import WindowPredictor

        coder = PredictiveTranscoder(
            WindowPredictor(8, 32), 32, silent_last=False
        )
        assert np.array_equal(coder.roundtrip(local_trace).values, local_trace.values)

    def test_raw_value_equal_to_bus_state_is_disambiguated(self):
        # Force the pathological case: a raw miss whose value equals the
        # current physical data state must not look like a silent LAST.
        coder = LastValueTranscoder(8)
        trace = BusTrace.from_values([0x0F, 0xF0, 0x0F, 0x55], width=8)
        assert list(coder.roundtrip(trace)) == [0x0F, 0xF0, 0x0F, 0x55]


class TestPredictorContract:
    def test_last_value_predictor_slots(self):
        pred = LastValuePredictor()
        pred.update(42)
        assert pred.match(42) == 0
        assert pred.match(43) is None
        assert pred.lookup(0) == 42
        with pytest.raises(IndexError):
            pred.lookup(1)

    def test_transcoder_requires_nonempty_predictor(self):
        class Empty(LastValuePredictor):
            num_codes = 0

        with pytest.raises(ValueError):
            PredictiveTranscoder(Empty(), 8)

    def test_width_mismatch_rejected(self, local_trace):
        coder = WindowTranscoder(8, 16)
        with pytest.raises(ValueError):
            coder.encode_trace(local_trace)  # 32-bit trace, 16-bit coder

    def test_decode_width_mismatch_rejected(self, local_trace):
        coder = WindowTranscoder(8, 32)
        with pytest.raises(ValueError):
            coder.decode_trace(local_trace)  # width 32 != 34

    def test_encode_trace_resets_state(self, local_trace):
        coder = WindowTranscoder(8, 32)
        first = coder.encode_trace(local_trace)
        second = coder.encode_trace(local_trace)
        assert np.array_equal(first.values, second.values)

    def test_out_of_sync_codeword_raises(self):
        coder = WindowTranscoder(8, 8)
        coder.reset()
        with pytest.raises(ValueError):
            # A weight-3 codeword (0b111) in CODE mode was never assigned.
            coder.decode_state(0b111 << 1)
