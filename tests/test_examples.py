"""Smoke tests for the runnable examples.

The quickstart executes end-to-end (it is fast); the longer studies are
imported and their mains verified callable, plus a reduced-size version
of each core computation is exercised so a broken API surfaces here
rather than when a user runs the script.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys):
        load("quickstart").main()
        out = capsys.readouterr().out
        assert "round-trip" in out
        assert "normalized energy removed" in out

    def test_register_bus_study_importable(self):
        module = load("register_bus_study")
        assert callable(module.main)
        # Reduced-size version of its core computation.
        from repro import WindowTranscoder, register_trace, savings_for

        trace = register_trace("gcc", 4000)
        assert isinstance(savings_for(trace, WindowTranscoder(8, 32)), float)

    def test_technology_scaling_importable(self):
        module = load("technology_scaling")
        assert callable(module.main)

    def test_custom_coder_predictor_is_sound(self):
        module = load("custom_coder")
        import numpy as np

        from repro.coding import PredictiveTranscoder
        from repro.workloads import locality_trace

        coder = PredictiveTranscoder(module.XorDeltaPredictor(8, 32), 32)
        trace = locality_trace(1500, seed=21)
        assert np.array_equal(coder.roundtrip(trace).values, trace.values)
