"""Router tests against in-process workers — no subprocesses.

The :class:`ClusterRouter` takes worker membership by method call, so
everything the cluster does over real ports — sharded placement,
session-id virtualisation, crash failover with verified replay,
planned migration, rebalance — is testable here with plain
:class:`TraceServer` instances standing in for supervised workers.
The process-level half (spawn/SIGKILL/restart) lives in the
``chaos``-marked supervisor and cluster-soak tests.
"""

import asyncio

import numpy as np
import pytest

from repro.coding import parse_coder_spec
from repro.serve import TraceClient, TraceServer, protocol
from repro.serve.cluster import ClusterRouter
from repro.traces import BusTrace
from repro.workloads import locality_trace


def run(coro):
    return asyncio.run(coro)


async def start_worker(host="127.0.0.1"):
    server = TraceServer(host=host, port=0, queue_limit=64, batch_limit=16)
    await server.start()
    return server


class _Rig:
    """A router + N in-process workers, torn down in reverse order."""

    def __init__(self, workers=2, **router_kwargs):
        self.worker_count = workers
        self.router_kwargs = router_kwargs
        self.servers = {}
        self.router = None

    async def __aenter__(self):
        self.router = ClusterRouter(port=0, **self.router_kwargs)
        for index in range(self.worker_count):
            worker_id = f"w{index}"
            server = await start_worker()
            self.servers[worker_id] = server
            self.router.add_worker(worker_id, "127.0.0.1", server.port)
        await self.router.start()
        return self

    async def __aexit__(self, *exc_info):
        await self.router.stop()
        for server in self.servers.values():
            await server.stop(drain_timeout_s=1.0)

    async def crash(self, worker_id):
        """Kill a worker the way the supervisor reports it: the process
        is gone (connections die) and ``worker_down`` is pushed."""
        await self.servers.pop(worker_id).stop(drain_timeout_s=0.0)
        self.router.worker_down(worker_id)

    async def restart(self, worker_id, generation=2):
        """The supervisor respawned ``worker_id`` on a fresh port."""
        server = await start_worker()
        self.servers[worker_id] = server
        self.router.add_worker(worker_id, "127.0.0.1", server.port, generation)
        return server

    def host_of(self, cluster_session):
        session = self.router.sessions.get(cluster_session)
        return session.worker_id if session is not None else None


def expected_states(spec, width, values):
    coder = parse_coder_spec(spec, width)
    trace = BusTrace(np.asarray(values, dtype=np.uint64), width, "expected")
    return [int(s) for s in coder.encode_trace(trace).values]


class TestLocalOps:
    def test_hello_identifies_the_cluster(self):
        async def scenario():
            async with _Rig(workers=2) as rig:
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    return await client.hello()

        hello = run(scenario())
        assert hello["server"] == "repro.serve.cluster"
        assert hello["protocol"] == protocol.PROTOCOL_VERSION
        assert hello["workers"] == 2

    def test_health_counts_live_workers(self):
        async def scenario():
            async with _Rig(workers=2) as rig:
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    before = await client.request("health")
                    await rig.crash("w0")
                    after = await client.request("health")
                    return before, after

        before, after = run(scenario())
        assert (before["workers_live"], before["workers_total"]) == (2, 2)
        assert (after["workers_live"], after["workers_total"]) == (1, 2)

    def test_envelope_errors_do_not_reach_workers(self):
        async def scenario():
            async with _Rig(workers=1) as rig:
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    bad = await client.request("nonsense")
                    no_session = await client.request("encode", session=99, values=[1])
                    return bad, no_session

        bad, no_session = run(scenario())
        assert bad["error"]["code"] == protocol.ERR_UNKNOWN_OP
        assert no_session["error"]["code"] == protocol.ERR_NO_SESSION


class TestRoutedStreaming:
    def test_streamed_encode_matches_the_library(self):
        async def scenario():
            async with _Rig(workers=3) as rig:
                trace = locality_trace(240, width=16, seed=11)
                values = [int(v) for v in trace.values]
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    stream = await client.open_stream("window8", width=16)
                    states = []
                    for start in range(0, len(values), 40):
                        states.extend(await stream.feed(values[start : start + 40]))
                    await stream.close()
                    return states, values

        states, values = run(scenario())
        assert states == expected_states("window8", 16, values)

    def test_sessions_shard_across_workers(self):
        async def scenario():
            async with _Rig(workers=3) as rig:
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    streams = [
                        await client.open_stream("last", width=8) for _ in range(24)
                    ]
                    hosts = {rig.host_of(s.session_id) for s in streams}
                    for stream in streams:
                        await stream.close()
                    return hosts

        hosts = run(scenario())
        assert len(hosts) >= 2  # consistent hashing actually spreads

    def test_cluster_session_ids_are_virtual(self):
        """Clients see cluster ids; two sessions on different workers
        must not collide even when the workers allocate the same local
        session id (they both start at 1)."""

        async def scenario():
            async with _Rig(workers=3) as rig:
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    streams = [
                        await client.open_stream("invert", width=8) for _ in range(6)
                    ]
                    ids = [s.session_id for s in streams]
                    # Every stream must be independently addressable.
                    outs = [await s.feed([1, 2, 3]) for s in streams]
                    for stream in streams:
                        await stream.close()
                    return ids, outs

        ids, outs = run(scenario())
        assert len(set(ids)) == len(ids)
        assert all(out == outs[0] for out in outs)  # same coder, same chunk

    def test_stateless_ops_round_robin(self):
        async def scenario():
            async with _Rig(workers=2) as rig:
                trace = locality_trace(100, width=8, seed=3)
                values = [int(v) for v in trace.values]
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    responses = [
                        await client.request(
                            "encode_trace", coder="invert", width=8, values=values
                        )
                        for _ in range(4)
                    ]
                    return responses, values

        responses, values = run(scenario())
        expected = expected_states("invert", 8, values)
        for response in responses:
            assert response["ok"] and response["states"] == expected


class TestFailover:
    def test_crash_failover_is_bit_exact(self):
        async def scenario():
            async with _Rig(workers=2, checkpoint_every=2) as rig:
                trace = locality_trace(200, width=16, seed=23)
                values = [int(v) for v in trace.values]
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    stream = await client.open_stream("fcm", width=16)
                    states = []
                    for start in range(0, 120, 40):
                        states.extend(await stream.feed(values[start : start + 40]))
                    victim = rig.host_of(stream.session_id)
                    await rig.crash(victim)
                    # The very next op fails over: resume on the ring
                    # neighbour from the router's sealed checkpoint,
                    # verified tail replay, then the op applies once.
                    for start in range(120, 200, 40):
                        states.extend(await stream.feed(values[start : start + 40]))
                    survivor = rig.host_of(stream.session_id)
                    failovers = rig.router.sessions[stream.session_id].failovers
                    await stream.close()
                    return states, values, victim, survivor, failovers

        states, values, victim, survivor, failovers = run(scenario())
        assert states == expected_states("fcm", 16, values)
        assert survivor != victim
        assert failovers == 1

    def test_failover_without_any_checkpoint_replays_from_open(self):
        """A session whose tail never crossed ``checkpoint_every`` has
        no exported blob: failover must rebuild by fresh open + full
        verified replay of the acknowledged tail."""

        async def scenario():
            async with _Rig(workers=2, checkpoint_every=1000) as rig:
                trace = locality_trace(120, width=16, seed=31)
                values = [int(v) for v in trace.values]
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    stream = await client.open_stream("stride4", width=16)
                    states = list(await stream.feed(values[:60]))
                    await rig.crash(rig.host_of(stream.session_id))
                    states.extend(await stream.feed(values[60:]))
                    await stream.close()
                    return states, values

        states, values = run(scenario())
        assert states == expected_states("stride4", 16, values)

    def test_unreported_crash_still_fails_over(self):
        """Even before the supervisor notices (no ``worker_down`` yet),
        transport errors + the per-worker breaker converge the op onto
        a live worker."""

        async def scenario():
            async with _Rig(workers=2, checkpoint_every=2) as rig:
                trace = locality_trace(120, width=16, seed=37)
                values = [int(v) for v in trace.values]
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    stream = await client.open_stream("window8", width=16)
                    states = list(await stream.feed(values[:60]))
                    victim = rig.host_of(stream.session_id)
                    # Stop the server but do NOT tell the router.
                    await rig.servers.pop(victim).stop(drain_timeout_s=0.0)
                    states.extend(await stream.feed(values[60:]))
                    await stream.close()
                    rig.router.worker_down(victim)  # tidy teardown
                    return states, values

        states, values = run(scenario())
        assert states == expected_states("window8", 16, values)

    def test_open_avoids_dead_workers(self):
        async def scenario():
            async with _Rig(workers=2) as rig:
                await rig.crash("w0")
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    streams = [
                        await client.open_stream("last", width=8) for _ in range(6)
                    ]
                    hosts = {rig.host_of(s.session_id) for s in streams}
                    for stream in streams:
                        await stream.close()
                    return hosts

        assert run(scenario()) == {"w1"}

    def test_no_live_workers_answers_busy(self):
        async def scenario():
            async with _Rig(workers=1) as rig:
                await rig.crash("w0")
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    return await client.request("open", coder="last", width=8)

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.ERR_BUSY


class TestPlannedMigration:
    def test_rebalance_brings_sessions_home(self):
        async def scenario():
            async with _Rig(workers=2, checkpoint_every=2) as rig:
                trace = locality_trace(200, width=16, seed=41)
                values = [int(v) for v in trace.values]
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    stream = await client.open_stream("transition", width=16)
                    states = list(await stream.feed(values[:80]))
                    home = rig.host_of(stream.session_id)
                    await rig.crash(home)
                    states.extend(await stream.feed(values[80:120]))  # failover
                    away = rig.host_of(stream.session_id)
                    await rig.restart(home)
                    moved = await rig.router.rebalance()
                    back = rig.host_of(stream.session_id)
                    states.extend(await stream.feed(values[120:]))
                    migrations = rig.router.sessions[stream.session_id].migrations
                    await stream.close()
                    return states, values, home, away, back, moved, migrations

        states, values, home, away, back, moved, migrations = run(scenario())
        assert states == expected_states("transition", 16, values)
        assert away != home
        assert back == home  # exclude-don't-remove made the home stable
        assert moved == 1
        assert migrations == 1

    def test_rebalance_moves_nothing_when_everyone_is_home(self):
        async def scenario():
            async with _Rig(workers=2) as rig:
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    streams = [
                        await client.open_stream("last", width=8) for _ in range(4)
                    ]
                    moved = await rig.router.rebalance()
                    for stream in streams:
                        await stream.close()
                    return moved

        assert run(scenario()) == 0


class TestClientResume:
    def test_client_resume_through_the_router(self):
        """A client's exported checkpoint resumes against the cluster
        exactly as against a single server — and arms the router's own
        failover buffer from the first cycle."""

        async def scenario():
            async with _Rig(workers=2, checkpoint_every=2) as rig:
                trace = locality_trace(160, width=16, seed=43)
                values = [int(v) for v in trace.values]
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    stream = await client.open_stream("fcm", width=16)
                    states = list(await stream.feed(values[:80]))
                    _checkpoint_id, state = await stream.checkpoint(export=True)
                # Connection gone; resume on a fresh one.
                async with await TraceClient.connect("127.0.0.1", rig.router.port) as client:
                    resumed = await client.resume_stream(state, coder="fcm", width=16)
                    states.extend(await resumed.feed(values[80:]))
                    await resumed.close()
                return states, values

        states, values = run(scenario())
        assert states == expected_states("fcm", 16, values)
