"""Unit tests for trace persistence."""

import os

import numpy as np

from repro.traces import BusTrace, load_trace, load_traces, save_trace, save_traces


class TestSingleTrace:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = BusTrace.from_values([1, 2, 3], width=12, name="a/b", initial=5)
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.values, trace.values)
        assert loaded.width == 12
        assert loaded.name == "a/b"
        assert loaded.initial == 5

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = BusTrace.from_values([], width=8)
        path = str(tmp_path / "empty.npz")
        save_trace(trace, path)
        assert len(load_trace(path)) == 0


class TestDirectories:
    def test_save_traces_sanitises_names(self, tmp_path):
        traces = [
            BusTrace.from_values([1], width=8, name="gcc/register"),
            BusTrace.from_values([2], width=8),  # unnamed
        ]
        paths = save_traces(traces, str(tmp_path))
        assert sorted(os.path.basename(p) for p in paths) == [
            "gcc_register.npz",
            "trace_1.npz",
        ]

    def test_load_traces_keys_by_name(self, tmp_path):
        traces = [
            BusTrace.from_values([1, 2], width=8, name="one"),
            BusTrace.from_values([3], width=8, name="two"),
        ]
        save_traces(traces, str(tmp_path))
        loaded = load_traces(str(tmp_path))
        assert set(loaded) == {"one", "two"}
        assert len(loaded["one"]) == 2

    def test_load_ignores_other_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        save_traces([BusTrace.from_values([1], width=8, name="x")], str(tmp_path))
        assert set(load_traces(str(tmp_path))) == {"x"}
