"""Unit tests for trace persistence and its validation."""

import os
import zipfile

import numpy as np
import pytest

from repro.traces import (
    BusTrace,
    TraceFormatError,
    load_trace,
    load_traces,
    save_trace,
    save_traces,
)


class TestSingleTrace:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = BusTrace.from_values([1, 2, 3], width=12, name="a/b", initial=5)
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.values, trace.values)
        assert loaded.width == 12
        assert loaded.name == "a/b"
        assert loaded.initial == 5

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = BusTrace.from_values([], width=8)
        path = str(tmp_path / "empty.npz")
        save_trace(trace, path)
        assert len(load_trace(path)) == 0


class TestDirectories:
    def test_save_traces_sanitises_names(self, tmp_path):
        traces = [
            BusTrace.from_values([1], width=8, name="gcc/register"),
            BusTrace.from_values([2], width=8),  # unnamed
        ]
        paths = save_traces(traces, str(tmp_path))
        assert sorted(os.path.basename(p) for p in paths) == [
            "gcc_register.npz",
            "trace_1.npz",
        ]

    def test_load_traces_keys_by_name(self, tmp_path):
        traces = [
            BusTrace.from_values([1, 2], width=8, name="one"),
            BusTrace.from_values([3], width=8, name="two"),
        ]
        save_traces(traces, str(tmp_path))
        loaded = load_traces(str(tmp_path))
        assert set(loaded) == {"one", "two"}
        assert len(loaded["one"]) == 2

    def test_load_ignores_other_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        save_traces([BusTrace.from_values([1], width=8, name="x")], str(tmp_path))
        assert set(load_traces(str(tmp_path))) == {"x"}


class TestValidation:
    """A corrupt file raises TraceFormatError naming the path (not a
    zipfile/NumPy traceback), while a missing file keeps raising the
    standard FileNotFoundError."""

    def _good(self, tmp_path, name="t.npz"):
        trace = BusTrace.from_values([1, 2, 3], width=12, name="w", initial=5)
        path = str(tmp_path / name)
        save_trace(trace, path)
        return trace, path

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(str(tmp_path / "absent.npz"))

    def test_garbage_bytes_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(str(path))
        assert excinfo.value.path == str(path)
        assert str(path) in str(excinfo.value)

    def test_truncated_archive_rejected(self, tmp_path):
        _, path = self._good(tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_tampered_roundtrip_rejected(self, tmp_path):
        """Round-trip through a tampered archive: drop a member."""
        trace, path = self._good(tmp_path)
        assert np.array_equal(load_trace(path).values, trace.values)  # sane
        tampered = str(tmp_path / "tampered.npz")
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(tampered, "w") as dst:
            for member in src.namelist():
                if member != "width.npy":
                    dst.writestr(member, src.read(member))
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(tampered)
        assert "width" in excinfo.value.reason

    def test_width_too_narrow_for_values_rejected(self, tmp_path):
        path = str(tmp_path / "narrow.npz")
        np.savez_compressed(
            path,
            values=np.array([255], dtype=np.uint64),
            width=np.int64(4),
            initial=np.uint64(0),
            name=np.str_("n"),
        )
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        assert "width" in str(excinfo.value)

    def test_bad_width_rejected(self, tmp_path):
        for width in (0, 65):
            path = str(tmp_path / f"w{width}.npz")
            np.savez_compressed(
                path,
                values=np.array([], dtype=np.uint64),
                width=np.int64(width),
                initial=np.uint64(0),
                name=np.str_("n"),
            )
            with pytest.raises(TraceFormatError):
                load_trace(path)

    def test_non_1d_values_rejected(self, tmp_path):
        path = str(tmp_path / "2d.npz")
        np.savez_compressed(
            path,
            values=np.zeros((2, 2), dtype=np.uint64),
            width=np.int64(8),
            initial=np.uint64(0),
            name=np.str_("n"),
        )
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        assert "1-D" in excinfo.value.reason

    def test_non_integer_values_rejected(self, tmp_path):
        path = str(tmp_path / "float.npz")
        np.savez_compressed(
            path,
            values=np.array([1.5], dtype=np.float64),
            width=np.int64(8),
            initial=np.uint64(0),
            name=np.str_("n"),
        )
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_bad_file_in_directory_is_named(self, tmp_path):
        save_traces([BusTrace.from_values([1], width=8, name="ok")], str(tmp_path))
        bad = tmp_path / "evil.npz"
        bad.write_bytes(b"\x00" * 32)
        with pytest.raises(TraceFormatError) as excinfo:
            load_traces(str(tmp_path))
        assert excinfo.value.path == str(bad)

    def test_error_is_a_value_error(self, tmp_path):
        """Callers that catch ValueError keep working."""
        path = tmp_path / "junk.npz"
        path.write_bytes(b"nope")
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestContentDigest:
    """The digest seal: bit-flips that still parse must not load."""

    def test_digest_is_stable_and_content_sensitive(self):
        from repro.traces import trace_digest

        trace = BusTrace.from_values([1, 2, 3], width=12, name="d")
        assert trace_digest(trace) == trace_digest(
            BusTrace.from_values([1, 2, 3], width=12, name="d")
        )
        assert trace_digest(trace) != trace_digest(
            BusTrace.from_values([1, 2, 4], width=12, name="d")
        )
        assert trace_digest(trace) != trace_digest(
            BusTrace.from_values([1, 2, 3], width=13, name="d")
        )
        assert trace_digest(trace) != trace_digest(
            BusTrace.from_values([1, 2, 3], width=12, name="e")
        )

    def test_new_archives_carry_the_seal(self, tmp_path):
        path = str(tmp_path / "sealed.npz")
        save_trace(BusTrace.from_values([7, 8], width=8, name="s"), path)
        with np.load(path) as data:
            assert "sha256" in data.files
            assert len(str(data["sha256"])) == 64

    def test_plausible_value_tamper_is_rejected(self, tmp_path):
        """Rewrite the values member with different-but-valid data while
        keeping the recorded digest: structural checks pass, the digest
        comparison must not."""
        path = str(tmp_path / "t.npz")
        save_trace(BusTrace.from_values([1, 2, 3], width=12, name="t"), path)
        with np.load(path) as data:
            members = {key: data[key] for key in data.files}
        members["values"] = np.array([1, 2, 4], dtype=np.uint64)  # the flip
        np.savez_compressed(path, **members)
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(path)
        assert "content digest mismatch" in excinfo.value.reason

    def test_legacy_archive_without_seal_still_loads(self, tmp_path):
        path = str(tmp_path / "legacy.npz")
        trace = BusTrace.from_values([5, 6], width=8, name="old")
        np.savez_compressed(
            path,
            values=trace.values,
            width=np.int64(trace.width),
            initial=np.uint64(trace.initial),
            name=np.str_(trace.name),
        )
        loaded = load_trace(path)
        assert np.array_equal(loaded.values, trace.values)
