"""Unit tests for the two-pass assembler."""

import pytest

from repro.cpu import AssemblyError, assemble


class TestBasicSyntax:
    def test_empty_source(self):
        assert assemble("") == []

    def test_comments_ignored(self):
        program = assemble("# a comment\n  add r1, r2, r3 ; trailing\n")
        assert len(program) == 1
        assert program[0].op == "add"

    def test_memory_operand(self):
        program = assemble("lw r1, 8(r2)")
        instr = program[0]
        assert (instr.rd, instr.rs1, instr.imm) == (1, 2, 8)

    def test_negative_displacement(self):
        assert assemble("lw r1, -4(r2)")[0].imm == -4

    def test_store_operand_order(self):
        instr = assemble("sw r5, 12(r6)")[0]
        assert (instr.rs1, instr.rs2, instr.imm) == (6, 5, 12)

    def test_hex_immediates(self):
        assert assemble("addi r1, r0, 0x10")[0].imm == 16


class TestLabels:
    def test_branch_resolves_to_index(self):
        program = assemble(
            """
            nop
            target: nop
            beq r1, r2, target
            """
        )
        assert program[2].imm == 1

    def test_forward_reference(self):
        program = assemble("j end\nnop\nend: halt")
        assert program[0].imm == 2

    def test_label_on_same_line(self):
        program = assemble("loop: addi r1, r1, 1\n j loop")
        assert program[1].imm == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("x: nop\nx: nop")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("j nowhere")

    def test_numeric_branch_target(self):
        assert assemble("jal r0, 5")[0].imm == 5


class TestPseudoInstructions:
    def test_li_small_becomes_addi(self):
        program = assemble("li r1, 100")
        assert len(program) == 1
        assert program[0].op == "addi"

    def test_li_negative_small(self):
        program = assemble("li r1, -5")
        assert program[0].op == "addi"
        assert program[0].imm == -5

    def test_li_large_becomes_lui_ori(self):
        program = assemble("li r1, 0x12345678")
        assert [i.op for i in program] == ["lui", "ori"]
        assert program[0].imm == 0x1234
        assert program[1].imm == 0x5678

    def test_li_high_only_skips_ori(self):
        program = assemble("li r1, 0x10000")
        assert [i.op for i in program] == ["lui"]

    def test_mv(self):
        instr = assemble("mv r3, r4")[0]
        assert (instr.op, instr.rd, instr.rs1, instr.imm) == ("addi", 3, 4, 0)

    def test_call_and_ret(self):
        program = assemble("call fn\nhalt\nfn: ret")
        assert program[0].op == "jal" and program[0].rd == 31
        assert program[2].op == "jalr" and program[2].rs1 == 31

    def test_not_and_neg(self):
        assert assemble("not r1, r2")[0].op == "xori"
        assert assemble("neg r1, r2")[0].op == "sub"


class TestErrors:
    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2, r99")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("lw r1, r2")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("bogus r1, r2, r3")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nadd r1, r2\n")
