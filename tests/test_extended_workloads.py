"""Tests for the SPEC2000-flavoured extended workload set."""

import numpy as np
import pytest

from repro.coding import WindowTranscoder
from repro.workloads import EXTENDED_WORKLOADS, WORKLOADS, register_trace, run_workload

FAST = 5000


class TestRegistry:
    def test_five_extended_kernels(self):
        assert set(EXTENDED_WORKLOADS) == {"gzip", "vpr", "mcf", "art", "equake"}

    def test_disjoint_from_paper_suite(self):
        assert not set(EXTENDED_WORKLOADS) & set(WORKLOADS)

    def test_categories(self):
        assert EXTENDED_WORKLOADS["gzip"].category == "int"
        assert EXTENDED_WORKLOADS["art"].category == "fp"


@pytest.mark.parametrize("name", sorted(EXTENDED_WORKLOADS))
class TestEveryExtendedKernel:
    def test_runs_and_produces_traffic(self, name):
        result = run_workload(name, FAST)
        assert result.stats.instructions > 400
        assert result.stats.loads > 100
        assert not result.stats.halted  # loops outlive the budget

    def test_register_trace_viable_for_coding(self, name):
        trace = register_trace(name, FAST)
        coder = WindowTranscoder(8, 32)
        coded = coder.encode_trace(trace)
        assert np.array_equal(coder.decode_trace(coded).values, trace.values)

    def test_deterministic(self, name):
        run_workload.cache_clear()
        first = register_trace(name, FAST).values.copy()
        run_workload.cache_clear()
        assert np.array_equal(first, register_trace(name, FAST).values)


class TestCharacter:
    def test_gzip_has_byte_locality(self):
        trace = register_trace("gzip", FAST)
        # Small alphabet byte values recur heavily.
        from repro.traces import window_unique_fraction

        assert window_unique_fraction(trace, 16) < 0.6

    def test_mcf_is_pointer_heavy(self):
        result = run_workload("mcf", FAST)
        # Indirect loads (pointer chasing through potentials).
        assert result.stats.loads > result.stats.instructions / 3
