"""Bounded-memory guarantees of corpus ingestion and replay.

The acceptance property scaled down to CI size: ingesting a raw binary
and streaming a shard back through the memory-mapped chunked reader
must have Python-heap peaks bounded by the *chunk size*, not the trace
length — so multi-GB corpora are a matter of disk, not RAM.  Measured
two ways: ``tracemalloc`` (allocation proxy — numpy registers its data
allocations with it) for absolute bounds, and a small-vs-large scaling
comparison that fails if either path ever starts materializing whole
files.
"""

import os
import tracemalloc

import numpy as np
import pytest

from repro.corpus import CorpusReader, CorpusWriter, import_binary
from repro.corpus.store import IMPORT_CHUNK_BYTES


def write_raw(path, mbytes, seed=0):
    """A raw uint64 file of ``mbytes`` MiB, written chunk-wise."""
    rng = np.random.default_rng(seed)
    words = mbytes * (1 << 20) // 8
    with open(path, "wb") as handle:
        remaining = words
        while remaining:
            block = min(remaining, 1 << 17)
            handle.write(
                rng.integers(0, 1 << 32, size=block, dtype=np.uint64)
                .astype("<u8")
                .tobytes()
            )
            remaining -= block
    return words


def peak_of(fn):
    """Python-heap peak (bytes) attributable to running ``fn``."""
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        base, _ = tracemalloc.get_traced_memory()
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak - base


def ingest(tmp_path, mbytes, tag):
    raw = str(tmp_path / f"{tag}.u64")
    write_raw(raw, mbytes, seed=mbytes)
    directory = str(tmp_path / f"corpus-{tag}")

    def run():
        with CorpusWriter(directory) as writer:
            import_binary(writer, raw, 32, name=tag)

    return peak_of(run), directory, tag


class TestIngestBounded:
    def test_ingest_peak_is_chunk_sized_not_file_sized(self, tmp_path):
        mbytes = 24
        peak, _dir, _tag = ingest(tmp_path, mbytes, "big")
        # One read buffer + the masked copy + slack; far below the file.
        assert peak < 6 * IMPORT_CHUNK_BYTES, peak
        assert peak < mbytes * (1 << 20) // 2

    def test_ingest_peak_does_not_scale_with_file_size(self, tmp_path):
        small_peak, _d, _t = ingest(tmp_path, 4, "small")
        large_peak, _d, _t = ingest(tmp_path, 24, "large")
        # 6x the input, ~same peak: the loop really is streaming.
        assert large_peak < 2 * small_peak + (1 << 20)


class TestReplayBounded:
    @pytest.fixture(scope="class")
    def shard(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("replay-mem")
        raw = str(tmp_path / "big.u64")
        words = write_raw(raw, 24, seed=5)
        directory = str(tmp_path / "corpus")
        with CorpusWriter(directory) as writer:
            import_binary(writer, raw, 32, name="big")
        return directory, words

    def test_mmap_chunked_read_peak_is_chunk_sized(self, shard):
        directory, words = shard
        chunk_cycles = 16_384

        def run():
            reader = CorpusReader(directory)
            seen = 0
            for chunk in reader.chunks("big", chunk_cycles=chunk_cycles):
                seen += len(chunk)
            assert seen == words

        peak = peak_of(run)
        # A handful of chunk-sized arrays (the slice copy, the digest
        # buffer), never the 24 MiB shard.
        assert peak < 12 * chunk_cycles * 8, peak
        assert peak < words * 8 // 4

    def test_smaller_chunks_mean_smaller_peak(self, shard):
        directory, _words = shard

        def run_with(chunk_cycles):
            def run():
                reader = CorpusReader(directory)
                for _chunk in reader.chunks("big", chunk_cycles=chunk_cycles):
                    pass

            return peak_of(run)

        big_chunks = run_with(1 << 18)
        small_chunks = run_with(1 << 12)
        assert small_chunks < big_chunks

    def test_materializing_read_really_is_bigger(self, shard):
        # The contrast case: `trace()` holds the whole stream, so its
        # peak scales with the shard — proving the chunked path's bound
        # is meaningful, not an artifact of the measurement.
        from repro.traces import TraceCache

        directory, words = shard
        cache_dir = os.path.join(directory, "..", "cache")

        def run():
            CorpusReader(directory).trace("big", cache=TraceCache(cache_dir))

        peak = peak_of(run)
        assert peak > words * 8
