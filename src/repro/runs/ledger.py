"""The run ledger: a crash-proof journal of one experiment run.

A run directory (``runs/<run-id>/``) is owned by its **ledger** —
``ledger.jsonl``, a line-buffered append-only journal with the same
SIGKILL-survival contract as :mod:`repro.obs.flight`: every event is
flushed as one line the moment it happens, so ``kill -9`` forfeits the
process, not the page cache, and everything appended before the kill
survives for ``--resume`` to replay.

Event vocabulary (one JSON object per line, ``event`` + ``ts`` plus
event-specific fields):

``run_open``
    Written once when a run is created: the run id, the matrix name,
    the full :class:`~repro.runs.matrix.RunConfig` as a dict, its
    content digest and the cell count.  ``--resume`` without the matrix
    arguments reconstructs the configuration from this header.
``resumed``
    Appended at the start of every resume: how many recorded cells
    were verified and skipped, how many artifacts were quarantined and
    how many cells are being (re-)executed.
``started``
    One cell attempt began (cell key, matrix index, attempt number).
``done``
    A cell completed: key, index, attempt, the artifact's path
    relative to the run directory and the SHA-256 of the artifact
    file's exact bytes — resume verifies that digest before trusting
    the artifact.
``failed``
    A cell attempt failed: key, error ``kind``/``message``, worker
    ``pid``, ``elapsed_s``, the retry classification (``transient`` /
    ``deterministic``) and ``final`` — False when the executor will
    retry, True when the cell is being given up on.
``quarantined``
    A cell or artifact was quarantined: key, the reason class
    (``artifact-digest-mismatch``, ``artifact-missing``,
    ``artifact-unreadable``, ``deterministic-failure``,
    ``retries-exhausted``, ``circuit-open``) and the quarantine record
    path relative to the run directory.
``run_close``
    The run finished: status (``complete`` / ``degraded``) and the
    done/failed counts.  A ledger without it was interrupted.

Reading tolerates exactly one **torn tail** — an undecodable *last*
line, the expected debris of a kill landing mid-write — and reports any
*interior* corruption as ``path:lineno`` (the journal is append-only;
a bad line in the middle means real damage, not a crash).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "LEDGER_FILENAME",
    "RunLedger",
    "LedgerState",
    "canonical_json",
    "content_digest",
    "file_digest",
    "read_ledger",
    "replay_ledger",
]

#: The journal every run directory is built around.
LEDGER_FILENAME = "ledger.jsonl"


def canonical_json(value: Any) -> str:
    """The canonical (sorted-key, compact) JSON encoding of ``value``.

    Content keys — cell identity, config digests, artifact digests —
    are all computed over this encoding, so they are stable across
    processes, dict orderings and Python versions.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_digest(value: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`\\ (value)."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def file_digest(path: str) -> str:
    """SHA-256 hex digest of a file's exact bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class RunLedger:
    """Append-only, line-buffered writer for one run's journal."""

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # Line-buffered append: one flush per event, SIGKILL-proof.
        self._handle = open(path, "a", encoding="utf-8", buffering=1)

    def append(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the record that was written."""
        record: Dict[str, Any] = {"event": event, "ts": time.time()}
        record.update(fields)
        self._handle.write(json.dumps(record, default=str) + "\n")
        return record

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunLedger({self.path!r})"


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """Parse a ledger, tolerating a torn tail (the kill -9 case).

    An undecodable *last* line is dropped silently — that is exactly
    the crash the journal exists to survive.  Undecodable interior
    lines raise ``ValueError`` naming ``path:lineno``: an append-only
    journal with damage in the middle was tampered with or the disk is
    failing, and resuming over it would silently lose cells.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:  # torn tail: expected after kill -9
                break
            raise ValueError(f"{path}:{index + 1}: not valid JSON") from None
    return records


@dataclass
class LedgerState:
    """The replayed view of a ledger: what each cell's latest state is."""

    header: Optional[Dict[str, Any]] = None  #: the ``run_open`` event
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    failed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    attempts: Dict[str, int] = field(default_factory=dict)
    quarantines: List[Dict[str, Any]] = field(default_factory=list)
    resumes: int = 0
    closed: Optional[Dict[str, Any]] = None  #: the last ``run_close``


def replay_ledger(events: List[Dict[str, Any]]) -> LedgerState:
    """Fold a ledger's events into per-cell latest state.

    A later ``done`` supersedes an earlier final ``failed`` (the resume
    path re-executing a quarantined cell), and vice versa a cell that
    was ``done`` but whose artifact was later ``quarantined`` and
    re-failed ends up failed.  Non-final ``failed`` events only bump
    the attempt bookkeeping.
    """
    state = LedgerState()
    for event in events:
        kind = event.get("event")
        key = event.get("key", "")
        if kind == "run_open":
            if state.header is None:
                state.header = event
        elif kind == "resumed":
            state.resumes += 1
        elif kind == "started":
            attempt = int(event.get("attempt", 1))
            state.attempts[key] = max(state.attempts.get(key, 0), attempt)
        elif kind == "done":
            state.done[key] = event
            state.failed.pop(key, None)
        elif kind == "failed":
            if event.get("final"):
                state.failed[key] = event
                state.done.pop(key, None)
        elif kind == "quarantined":
            state.quarantines.append(event)
        elif kind == "run_close":
            state.closed = event
    return state
