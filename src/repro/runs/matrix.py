"""Cell identity and matrix construction for resumable runs.

A run is a *matrix* of independent cells.  Each cell is identified by a
**content key**: SHA-256 over the canonical JSON of everything that
determines its value — the coder spec, the workload *source digest*
(not the source path, so moving a corpus does not orphan its results),
the technology, the fault profile (BER + recovery policy), the coupling
ratio and the seed.  Two runs that compute the same cell therefore
agree on its key, and a resumed run recognises its own completed work
no matter how it was interrupted.

Execution knobs that cannot change a cell's *value* — ``--jobs``,
watchdog timeouts, retry budgets, chaos scripts, ``--kill-at`` — are
deliberately **excluded** from both the cell key and the config digest:
an interrupted-and-resumed run and an uninterrupted one must agree
byte-for-byte on their aggregate outputs, whatever execution drama
happened along the way.

Four matrix kinds cover the paper's artifacts, each accepting any
workload-source spec (``suite:``, ``corpus:``, ``gen:``) as its
workload axis:

* ``savings`` — streams x coders, normalised energy removed (%);
* ``crossover`` — streams x window sizes x technologies, break-even
  wire length (mm);
* ``table3`` — the crossover matrix plus median aggregates per
  (technology, entries, benchmark class);
* ``faults`` — streams x coders x recovery policies x BERs, net
  savings and recovery statistics on a faulty bus.
"""

from __future__ import annotations

import math
import re
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis.crossover import CrossoverAnalysis
from ..analysis.experiments import savings_for
from ..analysis.faults_experiments import _seed_for
from ..coding.specs import parse_coder_spec
from ..corpus.workload import WorkloadSource, parse_workload_source
from ..energy.accounting import normalized_energy_removed
from ..faults.models import BitFlips, FaultyChannel
from ..faults.policies import resolve_policy
from ..faults.resilient import ResilientTranscoder
from ..wires.technology import technology_by_name
from .ledger import content_digest

__all__ = [
    "MATRICES",
    "CellSpec",
    "RunConfig",
    "build_cells",
    "cell_key",
    "config_digest",
    "default_run_id",
    "make_cell_fn",
]

#: The matrix kinds `repro run` understands.
MATRICES = ("savings", "crossover", "table3", "faults")

_WINDOW_SPEC = re.compile(r"^window(\d+)?$")


@dataclass(frozen=True)
class CellSpec:
    """One cell's complete, content-addressed identity.

    ``source``/``stream`` locate the workload (the source spec string
    re-resolves inside whatever worker runs the cell); ``source_digest``
    is what actually identifies the *traffic*, so the key survives a
    corpus directory being moved and changes when its bytes change.
    """

    kind: str  #: matrix kind (``savings``/``crossover``/``table3``/``faults``)
    workload: str  #: display name of the stream
    source: str  #: workload-source spec the stream resolves through
    stream: int  #: index into the source's population
    source_digest: str  #: content digest of the stream's traffic
    coder: str  #: coder spec, e.g. ``window8``
    technology: str = ""  #: technology node (crossover/table3 cells)
    ber: float = 0.0  #: injected bit-error rate (faults cells)
    policy: str = ""  #: recovery policy name (faults cells)
    lam: float = 1.0  #: coupling ratio for the energy accounting
    seed: int = 0  #: fault-injection seed (faults cells)


def cell_key(spec: CellSpec) -> str:
    """The cell's stable content key (SHA-256 hex)."""
    return content_digest(asdict(spec))


@dataclass(frozen=True)
class RunConfig:
    """Everything that determines a matrix's cell values.

    Recorded verbatim in the ledger's ``run_open`` header, so
    ``repro run --resume <id>`` can rebuild the matrix without the
    caller repeating the arguments — and so a resume with *different*
    arguments is refused instead of silently mixing two experiments.
    """

    matrix: str
    sources: Tuple[str, ...]  #: workload-source specs (suite:/corpus:/gen:)
    coders: Tuple[str, ...]
    technologies: Tuple[str, ...] = ()
    bers: Tuple[float, ...] = ()
    policies: Tuple[str, ...] = ()
    lam: float = 1.0
    seed: int = 0
    streams: int = 0  #: per-source stream cap (0 = the whole population)

    def __post_init__(self):
        if self.matrix not in MATRICES:
            raise ValueError(
                f"unknown matrix {self.matrix!r}; choose from {', '.join(MATRICES)}"
            )
        if not self.sources:
            raise ValueError("a run needs at least one workload source")
        if not self.coders:
            raise ValueError("a run needs at least one coder spec")
        if self.matrix in ("crossover", "table3"):
            if not self.technologies:
                raise ValueError(f"{self.matrix} runs need --technologies")
            for coder in self.coders:
                if not _WINDOW_SPEC.match(coder):
                    raise ValueError(
                        f"{self.matrix} runs sweep the window transcoder's "
                        f"dictionary size; coder {coder!r} is not windowN"
                    )
        if self.matrix == "faults":
            if not self.bers:
                raise ValueError("faults runs need at least one --ber value")
            if not self.policies:
                raise ValueError("faults runs need at least one --policies name")
            for ber in self.bers:
                if not 0.0 <= ber < 1.0:
                    raise ValueError(f"--ber values must be in [0, 1), got {ber:g}")
        if self.streams < 0:
            raise ValueError(f"--streams must be >= 0, got {self.streams}")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunConfig":
        """Rebuild a config from a ledger header's ``config`` field."""
        return cls(
            matrix=str(data["matrix"]),
            sources=tuple(data["sources"]),
            coders=tuple(data["coders"]),
            technologies=tuple(data.get("technologies", ())),
            bers=tuple(float(b) for b in data.get("bers", ())),
            policies=tuple(data.get("policies", ())),
            lam=float(data.get("lam", 1.0)),
            seed=int(data.get("seed", 0)),
            streams=int(data.get("streams", 0)),
        )


def config_digest(config: RunConfig) -> str:
    """Content digest of the run configuration."""
    return content_digest(asdict(config))


def default_run_id(config: RunConfig) -> str:
    """The derived run id: matrix name + config digest prefix."""
    return f"{config.matrix}-{config_digest(config)[:12]}"


# -- stream enumeration -----------------------------------------------


def _stream_digest(source: WorkloadSource, spec: str, index: int) -> str:
    """A content digest for one stream of a source.

    * ``corpus`` — the shard's manifest digest (the corpus format
      already seals every shard's masked value bytes);
    * ``gen`` — the generator's description + the stream index (the
      generator contract makes ``(seed, index)`` byte-stable);
    * ``suite`` — the workload's program hash + bus + cycles (the
      simulator is deterministic in those).
    """
    if source.kind == "corpus":
        workload = source.for_stream(index)
        reader = getattr(workload, "_reader", None)
        if reader is not None:
            return reader.meta(workload.name).sha256
        return content_digest(["corpus", spec, workload.name])
    if source.kind == "gen":
        return content_digest(["gen", source.generator.describe(), index])
    workload = source.for_stream(index)
    from ..workloads.suite import program_hash

    base = workload.name.partition("/")[0]
    return content_digest(
        ["suite", base, workload.name, workload.cycles, program_hash(base)]
    )


def _enumerate_streams(
    config: RunConfig,
) -> List[Tuple[str, int, str, str]]:
    """All (source spec, stream index, name, digest) tuples of a run."""
    streams: List[Tuple[str, int, str, str]] = []
    for spec in config.sources:
        source = parse_workload_source(spec)
        count = source.size
        if config.streams:
            count = min(count, config.streams)
        for index in range(count):
            workload = source.for_stream(index)
            streams.append(
                (spec, index, workload.name, _stream_digest(source, spec, index))
            )
    return streams


def _window_entries(coder: str) -> int:
    match = _WINDOW_SPEC.match(coder)
    if not match:
        raise ValueError(f"coder {coder!r} is not a windowN spec")
    return int(match.group(1) or 8)


def build_cells(config: RunConfig) -> List[CellSpec]:
    """The run's full cell list, in canonical matrix order."""
    streams = _enumerate_streams(config)
    cells: List[CellSpec] = []
    if config.matrix == "savings":
        for spec, index, name, digest in streams:
            for coder in config.coders:
                parse_coder_spec(coder)  # fail fast on bad specs
                cells.append(
                    CellSpec(
                        kind="savings",
                        workload=name,
                        source=spec,
                        stream=index,
                        source_digest=digest,
                        coder=coder,
                        lam=config.lam,
                    )
                )
    elif config.matrix in ("crossover", "table3"):
        for spec, index, name, digest in streams:
            for coder in config.coders:
                _window_entries(coder)
                for tech in config.technologies:
                    technology_by_name(tech)  # fail fast on bad names
                    cells.append(
                        CellSpec(
                            kind=config.matrix,
                            workload=name,
                            source=spec,
                            stream=index,
                            source_digest=digest,
                            coder=coder,
                            technology=tech,
                            lam=config.lam,
                        )
                    )
    elif config.matrix == "faults":
        for spec, index, name, digest in streams:
            for coder in config.coders:
                parse_coder_spec(coder)
                for policy in config.policies:
                    resolve_policy(policy)
                    for ber in config.bers:
                        cells.append(
                            CellSpec(
                                kind="faults",
                                workload=name,
                                source=spec,
                                stream=index,
                                source_digest=digest,
                                coder=coder,
                                ber=float(ber),
                                policy=policy,
                                lam=config.lam,
                                seed=config.seed,
                            )
                        )
    keys = [cell_key(cell) for cell in cells]
    if len(set(keys)) != len(keys):
        raise ValueError(
            "matrix contains duplicate cells (same source stream listed twice?)"
        )
    return cells


# -- cell execution ---------------------------------------------------


def make_cell_fn() -> Callable[[CellSpec], Dict[str, Any]]:
    """A per-process cell executor with memoised source resolution.

    Fork workers inherit the (empty) memo and populate it lazily, so a
    worker running many cells of the same corpus opens its manifest
    once.  The returned values are small, JSON-ready dicts — floats and
    ``None`` only, no NaN (so canonical JSON round-trips exactly).
    """
    sources: Dict[str, WorkloadSource] = {}

    def _trace(spec: CellSpec):
        source = sources.get(spec.source)
        if source is None:
            source = parse_workload_source(spec.source)
            sources[spec.source] = source
        return source.for_stream(spec.stream).trace()

    def execute(spec: CellSpec) -> Dict[str, Any]:
        trace = _trace(spec)
        if spec.kind == "savings":
            coder = parse_coder_spec(spec.coder, trace.width)
            return {"savings_pct": float(savings_for(trace, coder, spec.lam))}
        if spec.kind in ("crossover", "table3"):
            tech = technology_by_name(spec.technology)
            analysis = CrossoverAnalysis(trace, tech, _window_entries(spec.coder))
            crossover = analysis.crossover_length()
            return {
                "crossover_mm": None if crossover is None else float(crossover),
                "ratio_5mm": float(analysis.ratio(5.0)),
            }
        if spec.kind == "faults":
            policy = resolve_policy(spec.policy)
            coder = ResilientTranscoder(
                parse_coder_spec(spec.coder, trace.width), policy
            )
            channel = FaultyChannel(
                BitFlips(
                    spec.ber,
                    seed=_seed_for(spec.workload, spec.policy, spec.ber, spec.seed),
                )
            )
            run = coder.run(trace, channel)
            recovery = run.mean_cycles_to_recovery
            return {
                "savings_pct": float(
                    normalized_energy_removed(trace, run.physical, spec.lam)
                ),
                "correct_fraction": float(run.correct_fraction),
                "injected_cycles": int(run.injected_cycles),
                "detections": len(run.detections),
                "recoveries": len(run.recoveries),
                "mean_cycles_to_recovery": (
                    None if math.isnan(recovery) else float(recovery)
                ),
            }
        raise ValueError(f"unknown cell kind {spec.kind!r}")

    return execute


def coder_family(coder: str) -> str:
    """The coder spec's family name (``window8`` -> ``window``) —
    the circuit-breaker grouping for poisoned spec families."""
    match = re.match(r"^([a-z]+)", coder)
    return match.group(1) if match else coder


__all__.append("coder_family")
