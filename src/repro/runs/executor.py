"""The crash-resumable cell executor.

Wraps :func:`repro.analysis.parallel.parallel_map_cells` with the
fault-isolation discipline the serving stack already uses:

* every cell attempt is journalled in the run's ledger *before* it
  runs and its artifact is digest-sealed *after* — a SIGKILL at any
  instant loses at most the in-flight batch;
* watchdog expiries and transport-ish failures (``timeout``,
  ``OSError``, ``ConnectionError``, ...) are **transient**: retried
  under a :class:`~repro.serve.retry.RetryPolicy` with decorrelated
  jitter, up to the attempt budget;
* everything else is **deterministic**: re-running it would burn the
  pool for the same exception, so the cell is quarantined after one
  attempt with a record naming the error;
* a per-(kind, coder-family) :class:`~repro.serve.retry.CircuitBreaker`
  stops a poisoned spec family: once it opens, that family's remaining
  cells fail fast with class ``circuit-open`` instead of executing;
* **resume** replays the ledger, verifies every recorded artifact's
  bytes against its journalled digest (corrupt or missing -> quarantine
  + re-run; never a crash, never silent reuse) and re-executes only
  what is incomplete;
* **degraded-mode completion**: the summary table is always emitted,
  with ``FAILED:<class>`` holes for the cells that stayed failed;
  ``--strict`` turns those holes into a nonzero exit.

Determinism contract: the aggregate outputs (``summary.json`` /
``summary.txt``) are a pure function of the :class:`RunConfig` and the
cell values — no timestamps, pids, run ids or attempt counts — so an
interrupted-then-resumed run is byte-identical to an uninterrupted one
(provided the same cells ultimately succeed; the ``repro run-soak``
gate in CI proves exactly that under SIGKILL).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..analysis.parallel import parallel_map_cells
from ..analysis.reporting import format_table
from ..serve.retry import CircuitBreaker, CircuitOpenError, RetryPolicy
from ..workloads.programs import FP_WORKLOADS, INT_WORKLOADS
from .ledger import (
    LEDGER_FILENAME,
    LedgerState,
    RunLedger,
    canonical_json,
    file_digest,
    read_ledger,
    replay_ledger,
)
from .matrix import (
    CellSpec,
    RunConfig,
    build_cells,
    cell_key,
    coder_family,
    config_digest,
    default_run_id,
    make_cell_fn,
)

__all__ = [
    "ExecutorOptions",
    "RunDirectory",
    "RunResult",
    "TRANSIENT_KINDS",
    "run_matrix",
]

#: Error kinds the retry logic treats as transient.  ``timeout`` is the
#: structured watchdog kind from :mod:`repro.analysis.parallel`; the
#: rest are the environment-failure classes of the serve taxonomy —
#: same discipline, applied to sweep cells.
TRANSIENT_KINDS = frozenset(
    {
        "timeout",
        "TimeoutError",
        "OSError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionRefusedError",
        "BrokenPipeError",
        "EOFError",
        "MemoryError",
    }
)

#: Median stand-in for benchmarks that never break even (matches
#: :func:`repro.analysis.crossover.median_crossover`'s never_value).
_NEVER_MM = 100.0


@dataclass(frozen=True)
class ExecutorOptions:
    """Execution knobs — none of them participate in cell identity."""

    jobs: int = 1
    timeout_s: Optional[float] = None  #: per-cell watchdog
    retries: int = 3  #: max attempts per transient-failing cell
    breaker_threshold: int = 4  #: consecutive failures to open a family
    batch: int = 0  #: cells per pool batch (0 = auto)
    kill_at: Optional[int] = None  #: SIGKILL self after N done events (soak)
    chaos: Tuple[str, ...] = ()  #: scripted chaos (``wedge@I=S``/``fail@I``/``flaky@I``)
    strict: bool = False  #: nonzero exit when any cell stays failed
    sleep: Callable[[float], None] = time.sleep  #: injectable for tests


@dataclass
class RunResult:
    """What a (possibly degraded) completed run hands back."""

    run_id: str
    config: RunConfig
    cells: List[CellSpec]
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)  #: key -> class
    skipped: int = 0  #: cells satisfied from the ledger on resume
    quarantined: int = 0
    retried: int = 0
    summary_json: str = ""
    summary_text: str = ""

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def status(self) -> str:
        return "complete" if self.ok else "degraded"

    def exit_code(self, strict: bool) -> int:
        return 1 if (strict and self.failed) else 0


class RunDirectory:
    """Layout of one ``runs/<run-id>/`` directory."""

    def __init__(self, root: str, run_id: str):
        if not run_id or "/" in run_id or run_id.startswith("."):
            raise ValueError(f"invalid run id {run_id!r}")
        self.root = root
        self.run_id = run_id
        self.path = os.path.join(root, run_id)
        self.ledger_path = os.path.join(self.path, LEDGER_FILENAME)
        self.cells_dir = os.path.join(self.path, "cells")
        self.quarantine_dir = os.path.join(self.path, "quarantine")
        self.summary_json_path = os.path.join(self.path, "summary.json")
        self.summary_text_path = os.path.join(self.path, "summary.txt")

    def exists(self) -> bool:
        return os.path.exists(self.ledger_path)

    def artifact_rel(self, key: str) -> str:
        return os.path.join("cells", f"{key}.json")

    def artifact_path(self, key: str) -> str:
        return os.path.join(self.cells_dir, f"{key}.json")

    def write_artifact(self, key: str, value: Dict[str, Any]) -> str:
        """Atomically write a cell artifact; returns its byte digest.

        The file's exact bytes are the canonical JSON of the value plus
        one newline — the digest journalled in the ``done`` event is
        over those bytes, so resume verification is a pure byte check.
        """
        os.makedirs(self.cells_dir, exist_ok=True)
        payload = canonical_json(value) + "\n"
        path = self.artifact_path(key)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return file_digest(path)

    def verify_artifact(
        self, key: str, expected_digest: str
    ) -> Tuple[Optional[Dict[str, Any]], str]:
        """Check a journalled artifact: ``(value, "")`` or ``(None, reason)``.

        Reasons are the quarantine classes ``artifact-missing``,
        ``artifact-digest-mismatch`` and ``artifact-unreadable``.
        """
        path = self.artifact_path(key)
        if not os.path.exists(path):
            return None, "artifact-missing"
        if file_digest(path) != expected_digest:
            return None, "artifact-digest-mismatch"
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle), ""
        except (OSError, ValueError):
            return None, "artifact-unreadable"

    def quarantine(
        self, key: str, reason: str, detail: Dict[str, Any]
    ) -> str:
        """Write a quarantine record (and impound the artifact, if any).

        Returns the record's path relative to the run directory.  A
        corrupt artifact is *moved* into quarantine as evidence rather
        than deleted, so a post-mortem can diff it against the re-run.
        """
        os.makedirs(self.quarantine_dir, exist_ok=True)
        artifact = self.artifact_path(key)
        impounded = ""
        if os.path.exists(artifact):
            impounded = os.path.join(self.quarantine_dir, f"{key}.artifact")
            os.replace(artifact, impounded)
        record = {
            "key": key,
            "reason": reason,
            "impounded": os.path.relpath(impounded, self.path) if impounded else "",
        }
        record.update(detail)
        rel = os.path.join("quarantine", f"{key}.json")
        with open(os.path.join(self.path, rel), "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return rel


# -- chaos scripting --------------------------------------------------


def parse_chaos(directives: Tuple[str, ...]) -> Dict[int, Tuple[str, float]]:
    """Parse ``wedge@I=S`` / ``fail@I`` / ``flaky@I`` directives.

    Maps matrix index -> (mode, parameter).  ``wedge`` sleeps S seconds
    on attempt 1 (tripping the watchdog -> transient retry), ``flaky``
    raises ``OSError`` on attempt 1 (transient, no watchdog needed),
    ``fail`` raises ``ValueError`` on every attempt (deterministic ->
    quarantine).  Used by the tests and the ``run-soak`` gate; never
    part of cell identity.
    """
    table: Dict[int, Tuple[str, float]] = {}
    for directive in directives:
        mode, _at, rest = directive.partition("@")
        if mode not in ("wedge", "fail", "flaky") or not rest:
            raise ValueError(
                f"bad chaos directive {directive!r}; "
                f"expected wedge@INDEX=SECONDS, fail@INDEX or flaky@INDEX"
            )
        index_text, _eq, param = rest.partition("=")
        try:
            index = int(index_text)
        except ValueError:
            raise ValueError(
                f"bad chaos index in {directive!r}: {index_text!r}"
            ) from None
        seconds = 0.0
        if mode == "wedge":
            if not param:
                raise ValueError(f"wedge needs seconds: {directive!r}")
            seconds = float(param)
        table[index] = (mode, seconds)
    return table


def _apply_chaos(mode: str, seconds: float, attempt: int) -> None:
    if mode == "wedge" and attempt == 1:
        time.sleep(seconds)
    elif mode == "flaky" and attempt == 1:
        raise OSError("chaos: scripted transient failure (attempt 1)")
    elif mode == "fail":
        raise ValueError("chaos: scripted deterministic failure")


# -- summaries --------------------------------------------------------


def _cell_row(
    spec: CellSpec,
    value: Optional[Dict[str, Any]],
    failure: Optional[str],
) -> Tuple:
    hole = f"FAILED:{failure}" if failure else ""
    if spec.kind == "savings":
        metric = hole or round(value["savings_pct"], 4)
        return (spec.workload, spec.coder, metric)
    if spec.kind in ("crossover", "table3"):
        if hole:
            metric = hole
        else:
            mm = value["crossover_mm"]
            metric = "never" if mm is None else round(mm, 2)
        return (spec.workload, spec.coder, spec.technology, metric)
    return (
        spec.workload,
        spec.coder,
        spec.policy,
        f"{spec.ber:g}",
        hole or round(value["savings_pct"], 4),
        hole or round(100.0 * value["correct_fraction"], 3),
    )


_HEADERS = {
    "savings": ["workload", "coder", "savings %"],
    "crossover": ["workload", "entries", "technology", "crossover mm"],
    "table3": ["workload", "entries", "technology", "crossover mm"],
    "faults": ["workload", "coder", "policy", "BER", "net savings %", "correct %"],
}


def _table3_aggregates(
    cells: List[CellSpec],
    results: Dict[str, Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Median crossover per (technology, entries, benchmark class).

    Suite streams are classed SPECint/SPECfp by the workload registry;
    corpus/generator streams only contribute to ALL.  Cells that stayed
    failed are excluded (the per-cell table carries the hole).
    """
    groups: Dict[Tuple[str, str, str], List[float]] = {}
    for spec in cells:
        value = results.get(cell_key(spec))
        if value is None:
            continue
        mm = value["crossover_mm"]
        length = _NEVER_MM if mm is None else float(mm)
        base = spec.workload.partition("/")[0]
        classes = ["ALL"]
        if base in INT_WORKLOADS:
            classes.append("SPECint")
        elif base in FP_WORKLOADS:
            classes.append("SPECfp")
        for cls in classes:
            groups.setdefault((spec.technology, spec.coder, cls), []).append(length)
    aggregates = []
    for (tech, coder, cls), lengths in sorted(groups.items()):
        aggregates.append(
            {
                "technology": tech,
                "entries": coder,
                "suite": cls,
                "median_mm": round(float(np.median(lengths)), 4),
                "cells": len(lengths),
            }
        )
    return aggregates


def _savings_aggregates(
    cells: List[CellSpec], results: Dict[str, Dict[str, Any]]
) -> List[Dict[str, Any]]:
    groups: Dict[str, List[float]] = {}
    for spec in cells:
        value = results.get(cell_key(spec))
        if value is not None:
            groups.setdefault(spec.coder, []).append(value["savings_pct"])
    return [
        {
            "coder": coder,
            "mean_savings_pct": round(float(np.mean(vals)), 4),
            "cells": len(vals),
        }
        for coder, vals in sorted(groups.items())
    ]


def _faults_aggregates(
    cells: List[CellSpec], results: Dict[str, Dict[str, Any]]
) -> List[Dict[str, Any]]:
    groups: Dict[Tuple[str, float], List[float]] = {}
    for spec in cells:
        value = results.get(cell_key(spec))
        if value is not None:
            groups.setdefault((spec.policy, spec.ber), []).append(
                value["savings_pct"]
            )
    return [
        {
            "policy": policy,
            "ber": ber,
            "mean_savings_pct": round(float(np.mean(vals)), 4),
            "cells": len(vals),
        }
        for (policy, ber), vals in sorted(groups.items())
    ]


def build_summary(
    config: RunConfig,
    cells: List[CellSpec],
    results: Dict[str, Dict[str, Any]],
    failed: Dict[str, str],
) -> Tuple[str, str]:
    """The deterministic aggregate outputs: (json text, table text).

    Pure function of config + cell values + failure classes: no run
    ids, timestamps, attempt counts or pids — the byte-equality
    guarantee resume-exactness is measured against.
    """
    rows = []
    cell_docs = []
    for spec in cells:
        key = cell_key(spec)
        value = results.get(key)
        failure = failed.get(key)
        rows.append(_cell_row(spec, value, failure))
        doc: Dict[str, Any] = {"key": key}
        doc.update(asdict(spec))
        if failure:
            doc["failed"] = failure
        else:
            doc["value"] = value
        cell_docs.append(doc)
    aggregates: Dict[str, Any] = {}
    if config.matrix == "savings":
        aggregates["per_coder"] = _savings_aggregates(cells, results)
    elif config.matrix == "table3":
        aggregates["median_crossover"] = _table3_aggregates(cells, results)
    elif config.matrix == "faults":
        aggregates["per_policy_ber"] = _faults_aggregates(cells, results)
    document = {
        "matrix": config.matrix,
        "config": asdict(config),
        "config_digest": config_digest(config),
        "status": "complete" if not failed else "degraded",
        "cells": cell_docs,
        "aggregates": aggregates,
        "counts": {
            "total": len(cells),
            "done": len(results),
            "failed": len(failed),
        },
    }
    json_text = json.dumps(document, sort_keys=True, indent=2) + "\n"
    title = f"{config.matrix} matrix | {len(cells)} cells"
    if failed:
        title += f" | {len(failed)} FAILED"
    table = format_table(_HEADERS[config.matrix], rows, title=title)
    if config.matrix == "table3":
        agg_rows = [
            (a["technology"], a["entries"], a["suite"], a["median_mm"])
            for a in aggregates["median_crossover"]
        ]
        table += "\n" + format_table(
            ["Technology", "Entries", "Suite", "Median mm"],
            agg_rows,
            title="median crossover lengths",
        )
    return json_text, table + "\n"


# -- the executor -----------------------------------------------------


def _resolve_run_id(
    config: Optional[RunConfig],
    run_id: Optional[str],
    resume_id: Optional[str],
) -> str:
    if resume_id:
        return resume_id
    if run_id:
        return run_id
    if config is None:
        raise ValueError("--resume without a run id needs the matrix arguments")
    return default_run_id(config)


def run_matrix(
    config: Optional[RunConfig],
    runs_root: str,
    run_id: Optional[str] = None,
    resume: Optional[str] = None,
    options: ExecutorOptions = ExecutorOptions(),
) -> RunResult:
    """Execute (or resume) one matrix run under ``runs_root``.

    Parameters
    ----------
    config:
        The run configuration, or None when resuming purely by id (the
        configuration is then reconstructed from the ledger header).
    run_id:
        Explicit run id; defaults to :func:`default_run_id`.
    resume:
        When not None, resume mode: the value is the run id to resume
        (or ``""`` to resume the id derived from ``config``/``run_id``).
        A run directory that already has a ledger refuses to start
        fresh — pass resume (or a new id) explicitly.
    """
    resume_id = None
    if resume is not None:
        resume_id = resume or _resolve_run_id(config, run_id, None)
    rid = _resolve_run_id(config, run_id, resume_id)
    rundir = RunDirectory(runs_root, rid)

    state = LedgerState()
    if resume_id is not None:
        if not rundir.exists():
            raise ValueError(
                f"nothing to resume: no ledger at {rundir.ledger_path}"
            )
        events = read_ledger(rundir.ledger_path)
        state = replay_ledger(events)
        if state.header is None:
            raise ValueError(
                f"{rundir.ledger_path}: ledger has no run_open header "
                f"(torn before the first event); start a fresh run id"
            )
        recorded = RunConfig.from_dict(state.header["config"])
        if config is None:
            config = recorded
        elif config_digest(config) != config_digest(recorded):
            raise ValueError(
                f"--resume {rid}: configuration mismatch (ledger has "
                f"{config_digest(recorded)[:12]}, arguments give "
                f"{config_digest(config)[:12]}); resume without matrix "
                f"arguments or start a fresh run id"
            )
    elif rundir.exists():
        raise ValueError(
            f"run {rid!r} already has a ledger at {rundir.ledger_path}; "
            f"pass --resume {rid} to continue it or --run-id for a fresh run"
        )
    assert config is not None

    cells = build_cells(config)
    keys = [cell_key(spec) for spec in cells]
    by_key = dict(zip(keys, cells))
    chaos = parse_chaos(options.chaos)
    retry_policy = RetryPolicy(
        attempts=max(1, options.retries),
        base_backoff_s=0.02,
        max_backoff_s=0.25,
        seed=config.seed,
    )

    result = RunResult(run_id=rid, config=config, cells=cells)
    obs.inc("runs.cells_total", len(cells))

    ledger = RunLedger(rundir.ledger_path)
    try:
        # -- resume: verify recorded artifacts ------------------------
        pending: List[Tuple[int, str]] = []  # (matrix index, key)
        if resume_id is not None:
            with obs.span("runs.resume_verify", cells=len(state.done)):
                for index, key in enumerate(keys):
                    done = state.done.get(key)
                    if done is None:
                        pending.append((index, key))
                        continue
                    value, reason = rundir.verify_artifact(
                        key, str(done.get("sha256", ""))
                    )
                    if value is not None:
                        result.results[key] = value
                        result.skipped += 1
                        obs.inc("runs.cells_skipped")
                        continue
                    record = rundir.quarantine(
                        key,
                        reason,
                        {"artifact": str(done.get("artifact", ""))},
                    )
                    ledger.append(
                        "quarantined", key=key, reason=reason, record=record
                    )
                    result.quarantined += 1
                    obs.inc("runs.cells_quarantined")
                    pending.append((index, key))
            ledger.append(
                "resumed",
                skipped=result.skipped,
                quarantined=result.quarantined,
                pending=len(pending),
            )
        else:
            ledger.append(
                "run_open",
                run_id=rid,
                matrix=config.matrix,
                config=asdict(config),
                config_digest=config_digest(config),
                cells=len(cells),
            )
            pending = list(enumerate(keys))

        # -- execute --------------------------------------------------
        cell_fn = make_cell_fn()

        def _wrapped(payload: Tuple[int, int, CellSpec]) -> Dict[str, Any]:
            index, attempt, spec = payload
            directive = chaos.get(index)
            if directive is not None:
                _apply_chaos(directive[0], directive[1], attempt)
            with obs.span("runs.cell", index=index, attempt=attempt):
                return cell_fn(spec)

        breakers: Dict[str, CircuitBreaker] = {}
        retry_states: Dict[str, Any] = {}
        attempts: Dict[str, int] = {}
        batch_size = options.batch or max(2 * max(1, options.jobs), 4)
        done_events = 0
        queue: List[Tuple[int, str]] = list(pending)
        while queue:
            batch, queue = queue[:batch_size], queue[batch_size:]
            payloads: List[Tuple[int, int, CellSpec]] = []
            for index, key in batch:
                spec = by_key[key]
                family = f"{spec.kind}:{coder_family(spec.coder)}"
                breaker = breakers.setdefault(
                    family, CircuitBreaker(options.breaker_threshold, 30.0)
                )
                try:
                    breaker.before_attempt()
                except CircuitOpenError as exc:
                    record = rundir.quarantine(
                        key, "circuit-open", {"family": family, "error": str(exc)}
                    )
                    ledger.append(
                        "quarantined", key=key, reason="circuit-open", record=record
                    )
                    ledger.append(
                        "failed",
                        key=key,
                        index=index,
                        kind="CircuitOpenError",
                        message=str(exc),
                        klass="circuit-open",
                        final=True,
                    )
                    result.failed[key] = "circuit-open"
                    result.quarantined += 1
                    obs.inc("runs.cells_failed")
                    obs.inc("runs.cells_quarantined")
                    continue
                attempt = attempts.get(key, 0) + 1
                attempts[key] = attempt
                if key not in retry_states:
                    retry_states[key] = retry_policy.start(key=index)
                retry_states[key].begin_attempt()
                ledger.append("started", key=key, index=index, attempt=attempt)
                payloads.append((index, attempt, spec))

            if not payloads:
                continue
            outcomes = parallel_map_cells(
                _wrapped, payloads, jobs=options.jobs, timeout_s=options.timeout_s
            )
            for outcome in outcomes:
                index, attempt, spec = outcome.cell
                key = keys[index]
                family = f"{spec.kind}:{coder_family(spec.coder)}"
                if outcome.ok:
                    digest = rundir.write_artifact(key, outcome.value)
                    ledger.append(
                        "done",
                        key=key,
                        index=index,
                        attempt=attempt,
                        artifact=rundir.artifact_rel(key),
                        sha256=digest,
                    )
                    result.results[key] = outcome.value
                    result.failed.pop(key, None)
                    breakers[family].record_success()
                    obs.inc("runs.cells_done")
                    done_events += 1
                    if options.kill_at is not None and done_events >= options.kill_at:
                        # The soak's scripted crash: a real SIGKILL, not
                        # an exception — nothing below this line runs.
                        os.kill(os.getpid(), signal.SIGKILL)
                    continue
                error = outcome.error
                breakers[family].record_failure()
                obs.inc("runs.cell_errors", kind=error.kind)
                if error.kind == "timeout":
                    obs.inc("runs.timeouts")
                transient = error.kind in TRANSIENT_KINDS
                retry_state = retry_states[key]
                if transient and retry_state.more_attempts():
                    ledger.append(
                        "failed",
                        key=key,
                        index=index,
                        attempt=attempt,
                        kind=error.kind,
                        message=error.message,
                        klass="transient",
                        pid=error.pid,
                        elapsed_s=round(error.elapsed_s, 4),
                        final=False,
                    )
                    options.sleep(retry_state.next_backoff())
                    queue.append((index, key))
                    result.retried += 1
                    obs.inc("runs.retries")
                    continue
                klass = "retries-exhausted" if transient else "deterministic-failure"
                record = rundir.quarantine(
                    key,
                    klass,
                    {
                        "kind": error.kind,
                        "message": error.message,
                        "detail": error.detail,
                        "attempts": attempt,
                    },
                )
                ledger.append(
                    "quarantined", key=key, reason=klass, record=record
                )
                ledger.append(
                    "failed",
                    key=key,
                    index=index,
                    attempt=attempt,
                    kind=error.kind,
                    message=error.message,
                    klass=klass,
                    pid=error.pid,
                    elapsed_s=round(error.elapsed_s, 4),
                    final=True,
                )
                result.failed[key] = klass
                result.quarantined += 1
                obs.inc("runs.cells_failed")
                obs.inc("runs.cells_quarantined")

        # -- summarise ------------------------------------------------
        json_text, table_text = build_summary(
            config, cells, result.results, result.failed
        )
        with open(rundir.summary_json_path, "w", encoding="utf-8") as handle:
            handle.write(json_text)
        with open(rundir.summary_text_path, "w", encoding="utf-8") as handle:
            handle.write(table_text)
        result.summary_json = json_text
        result.summary_text = table_text
        ledger.append(
            "run_close",
            status=result.status,
            done=len(result.results),
            failed=len(result.failed),
        )
    finally:
        ledger.close()
    return result
