"""The kill-the-runner soak: SIGKILL + resume = byte-identical outputs.

``repro run-soak`` is the acceptance gate for the whole resumable-run
contract, mirroring the chaos-soak/cluster-soak pattern: every step is
seeded, every verdict is a deterministic function of the seed, and a
red run is a real bug, not runner noise.

The script:

1. **Reference run** — a seeded ``savings`` matrix over a generated
   workload population, executed uninterrupted (with a scripted
   ``wedge`` chaos cell so the watchdog-timeout -> transient-retry path
   is exercised even here).
2. **Victim run** — the *same* matrix with ``--kill-at N``: the runner
   SIGKILLs itself right after journalling its Nth ``done`` event,
   mid-matrix.  The exit status must be the kill, and the ledger must
   hold completed cells but no ``run_close``.
3. **Corruption** — one of the victim's journalled artifacts is
   rewritten so it still *parses* but no longer matches its recorded
   digest (the tamper class structural validation cannot catch).
4. **Resume** — ``repro run --resume`` replays the ledger, must
   quarantine the corrupt artifact (and re-execute that cell), skip
   every intact completed cell without re-simulation (proved via the
   ``runs.cells_skipped`` counter in the exported telemetry) and
   finish the rest.
5. **Verdict** — the victim's ``summary.json``/``summary.txt`` must be
   **byte-identical** to the reference run's, the combined ledger must
   show a ``timeout`` retry that later completed and the
   quarantine-then-recompute sequence, and no cell may have been
   silently reused or silently dropped.

Runs are executed as real subprocesses (``python -m repro run ...``) so
the SIGKILL is a genuine process death, not an in-process simulation.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ledger import LEDGER_FILENAME, read_ledger

__all__ = ["SoakCheck", "SoakReport", "run_soak"]


@dataclass(frozen=True)
class SoakCheck:
    """One verified invariant: name, verdict, evidence."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class SoakReport:
    """Everything the CLI needs to render a verdict table."""

    checks: List[SoakCheck] = field(default_factory=list)
    directory: str = ""  #: where the ledgers/artifacts were left
    kill_at: int = 0
    cells: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[str]:
        return [f"{c.name}: {c.detail}" for c in self.checks if not c.ok]

    def add(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append(SoakCheck(name, ok, detail))


def _repro_env() -> Dict[str, str]:
    """The subprocess environment, with this repro importable."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    return env


def _run_cli(args: List[str], env: Dict[str, str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def _read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _find_retry_then_done(events: List[dict]) -> Optional[str]:
    """A cell key that had a non-final timeout failure and later a done."""
    timed_out = {
        e["key"]
        for e in events
        if e.get("event") == "failed"
        and e.get("kind") == "timeout"
        and not e.get("final")
    }
    done_after = {e["key"] for e in events if e.get("event") == "done"}
    survivors = timed_out & done_after
    return next(iter(sorted(survivors)), None)


def _find_quarantine_then_done(events: List[dict], reason: str) -> Optional[str]:
    """A cell key quarantined for ``reason`` and completed afterwards."""
    quarantined_at: Dict[str, int] = {}
    for i, e in enumerate(events):
        if e.get("event") == "quarantined" and e.get("reason") == reason:
            quarantined_at.setdefault(e["key"], i)
    for i, e in enumerate(events):
        if e.get("event") == "done":
            at = quarantined_at.get(e["key"])
            if at is not None and i > at:
                return e["key"]
    return None


def run_soak(
    directory: Optional[str] = None,
    quick: bool = True,
    seed: int = 7,
    jobs: int = 2,
) -> SoakReport:
    """Run the kill-the-runner soak; returns the verdict report.

    ``directory`` keeps the run artifacts (ledgers, quarantine records)
    for upload; None uses a temporary directory that is deleted unless
    a check fails.
    """
    import time as _time

    t0 = _time.monotonic()
    report = SoakReport()
    cleanup = directory is None
    root = directory or tempfile.mkdtemp(prefix="repro-run-soak-")
    os.makedirs(root, exist_ok=True)
    report.directory = root
    env = _repro_env()

    population = 6 if quick else 12
    cycles = 1024 if quick else 4096
    kill_at = 4 if quick else 8
    source = (
        f"gen:mixed,seed={seed},population={population},"
        f"cycles={cycles},width=16"
    )
    matrix_args = [
        "run",
        "savings",
        "--source",
        source,
        "--coders",
        "last,window8",
        "--runs-dir",
        root,
        "--jobs",
        str(jobs),
        "--cell-timeout",
        "0.5",
        "--chaos",
        "wedge@1=1.5",
        "--batch",
        "2",
    ]
    report.cells = population * 2
    report.kill_at = kill_at

    # 1. reference run: uninterrupted, same chaos script.
    ref = _run_cli(matrix_args + ["--run-id", "ref"], env)
    report.add(
        "reference run completes",
        ref.returncode == 0,
        f"rc={ref.returncode} stderr={ref.stderr[-300:]}" if ref.returncode else "",
    )

    # 2. victim run: SIGKILLed after the kill_at-th done event.
    victim = _run_cli(
        matrix_args + ["--run-id", "soak", "--kill-at", str(kill_at)], env
    )
    killed = victim.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL, 137)
    report.add(
        "victim run SIGKILLed mid-matrix",
        killed,
        "" if killed else f"rc={victim.returncode} stderr={victim.stderr[-300:]}",
    )

    victim_ledger = os.path.join(root, "soak", LEDGER_FILENAME)
    events = read_ledger(victim_ledger) if os.path.exists(victim_ledger) else []
    done_keys = [e["key"] for e in events if e.get("event") == "done"]
    closed = any(e.get("event") == "run_close" for e in events)
    report.add(
        "interrupted ledger holds completed cells, no run_close",
        bool(done_keys) and not closed,
        f"done={len(done_keys)} closed={closed}",
    )

    # 3. corrupt one journalled artifact: still parses, digest differs.
    corrupt_key = ""
    if done_keys:
        corrupt_key = done_keys[0]
        artifact = os.path.join(root, "soak", "cells", f"{corrupt_key}.json")
        try:
            with open(artifact, "r", encoding="utf-8") as handle:
                value = json.load(handle)
            value["savings_pct"] = value.get("savings_pct", 0.0) + 1.0
            with open(artifact, "w", encoding="utf-8") as handle:
                json.dump(value, handle)
            report.add("artifact corrupted (parseable tamper)", True)
        except (OSError, ValueError) as exc:
            report.add("artifact corrupted (parseable tamper)", False, str(exc))
    else:
        report.add("artifact corrupted (parseable tamper)", False, "no done cells")

    # 4. resume, exporting telemetry for the skip-counter check.
    obs_dir = os.path.join(root, "soak-obs")
    resume = _run_cli(
        [
            "run",
            "--resume",
            "soak",
            "--runs-dir",
            root,
            "--jobs",
            str(jobs),
            "--cell-timeout",
            "0.5",
            "--chaos",
            "wedge@1=1.5",
            "--batch",
            "2",
            "--obs-dir",
            obs_dir,
        ],
        env,
    )
    report.add(
        "resume completes",
        resume.returncode == 0,
        f"rc={resume.returncode} stderr={resume.stderr[-300:]}"
        if resume.returncode
        else "",
    )

    # 5. verdicts.
    events = read_ledger(victim_ledger) if os.path.exists(victim_ledger) else []

    for name in ("summary.json", "summary.txt"):
        ref_path = os.path.join(root, "ref", name)
        soak_path = os.path.join(root, "soak", name)
        try:
            identical = _read_bytes(ref_path) == _read_bytes(soak_path)
            report.add(
                f"{name} byte-identical to uninterrupted run",
                identical,
                "" if identical else "outputs differ",
            )
        except OSError as exc:
            report.add(f"{name} byte-identical to uninterrupted run", False, str(exc))

    requarantined = _find_quarantine_then_done(events, "artifact-digest-mismatch")
    report.add(
        "corrupt artifact quarantined and re-executed",
        requarantined is not None and requarantined == corrupt_key,
        f"expected {corrupt_key[:12]}, saw "
        f"{(requarantined or 'none')[:12]}",
    )

    retried = _find_retry_then_done(events)
    report.add(
        "timeout cell retried to completion",
        retried is not None,
        "" if retried else "no timeout-retry-done sequence in the ledger",
    )

    resumed_events = [e for e in events if e.get("event") == "resumed"]
    skipped = max((int(e.get("skipped", 0)) for e in resumed_events), default=0)
    report.add(
        "completed cells skipped on resume (ledger)",
        skipped >= 1,
        f"skipped={skipped}",
    )

    metrics_path = os.path.join(obs_dir, "metrics.jsonl")
    counter = 0.0
    try:
        with open(metrics_path, "r", encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("name") == "runs.cells_skipped":
                    counter += float(record.get("value", 0))
    except (OSError, ValueError):
        pass
    report.add(
        "runs.cells_skipped counter exported",
        counter >= 1,
        f"counter={counter:g}",
    )

    quarantine_dir = os.path.join(root, "soak", "quarantine")
    records = (
        sorted(os.listdir(quarantine_dir)) if os.path.isdir(quarantine_dir) else []
    )
    report.add(
        "quarantine records written",
        any(name.endswith(".json") for name in records),
        f"records={len(records)}",
    )

    report.elapsed_s = _time.monotonic() - t0
    if cleanup and report.ok:
        shutil.rmtree(root, ignore_errors=True)
        report.directory = ""
    return report
