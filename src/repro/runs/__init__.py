"""Crash-resumable, fault-isolated experiment orchestration.

The sweep matrices behind the paper's artifacts are long-running and
embarrassingly parallel; what they lacked was *durability*.  This
package gives every matrix run a journalled identity:

* :mod:`~repro.runs.ledger` — the append-only, SIGKILL-proof
  ``ledger.jsonl`` journal and its torn-tail-tolerant reader;
* :mod:`~repro.runs.matrix` — content-addressed cell identity and the
  ``savings``/``crossover``/``table3``/``faults`` matrix builders over
  any ``suite:``/``corpus:``/``gen:`` workload source;
* :mod:`~repro.runs.executor` — the cell executor: watchdog timeouts,
  typed retry, per-family circuit breaking, quarantine, resume with
  artifact-digest verification, degraded-mode summaries;
* :mod:`~repro.runs.soak` — the ``repro run-soak`` acceptance gate:
  SIGKILL a seeded run mid-matrix, corrupt an artifact, resume, and
  prove the aggregate outputs byte-identical to an uninterrupted run.
"""

from .executor import (
    ExecutorOptions,
    RunDirectory,
    RunResult,
    TRANSIENT_KINDS,
    run_matrix,
)
from .ledger import (
    LEDGER_FILENAME,
    RunLedger,
    canonical_json,
    content_digest,
    file_digest,
    read_ledger,
    replay_ledger,
)
from .matrix import (
    MATRICES,
    CellSpec,
    RunConfig,
    build_cells,
    cell_key,
    config_digest,
    default_run_id,
)

__all__ = [
    "ExecutorOptions",
    "RunDirectory",
    "RunResult",
    "TRANSIENT_KINDS",
    "run_matrix",
    "LEDGER_FILENAME",
    "RunLedger",
    "canonical_json",
    "content_digest",
    "file_digest",
    "read_ledger",
    "replay_ledger",
    "MATRICES",
    "CellSpec",
    "RunConfig",
    "build_cells",
    "cell_key",
    "config_digest",
    "default_run_id",
]
