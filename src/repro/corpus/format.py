"""The versioned on-disk corpus format.

A *corpus* is a directory of trace **shards** plus one JSON **manifest**
(:data:`MANIFEST_NAME`)::

    mycorpus/
        corpus.json            # manifest: format version + shard index
        gcc_register.u64       # raw shard: little-endian uint64 words
        imported_addr.npz      # npz shard: repro.traces.io archive

The manifest carries, per shard: the stream ``name``, the shard
``file`` (always a bare filename inside the corpus directory — path
separators are rejected on load, so a hostile manifest cannot reach
outside it), the storage ``kind`` (``raw`` or ``npz``), the bus
``width``, the ``cycles`` count, the ``initial`` bus state entering the
first value, the ``sha256`` **content digest**, and a free-form
``source`` provenance string (e.g. ``record:gcc/register@60000``).

The content digest is storage-independent: it is the SHA-256 of the
stream's *values* as masked little-endian uint64 bytes, regardless of
whether the shard is stored raw or as ``.npz``.  That is what lets the
reader verify a multi-GB raw shard incrementally while streaming it,
and what keys the :mod:`repro.traces.cache` integration — two shards
with equal digests are the same traffic.

All structural errors raise :class:`CorpusFormatError` (path + one-line
reason, mirroring :class:`repro.traces.io.TraceFormatError`), which the
CLI funnels into the ``repro: error:`` contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List

import numpy as np

__all__ = [
    "CORPUS_FORMAT",
    "MANIFEST_NAME",
    "SHARD_KINDS",
    "CorpusFormatError",
    "ShardMeta",
    "digest_values",
    "load_manifest",
    "save_manifest",
]

#: Bump on any incompatible change to the manifest or shard layout.
CORPUS_FORMAT = 1

#: The manifest filename inside a corpus directory.
MANIFEST_NAME = "corpus.json"

#: Supported shard storage encodings.
SHARD_KINDS = ("raw", "npz")

_REQUIRED_SHARD_KEYS = (
    "name", "file", "kind", "width", "cycles", "initial", "sha256", "source",
)


class CorpusFormatError(ValueError):
    """A corpus directory exists but cannot be decoded as a corpus.

    Carries the offending ``path`` and a one-line ``reason``; the
    string form is suitable for direct CLI display.
    """

    def __init__(self, path: str, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(f"{path}: not a valid corpus ({reason})")


@dataclass(frozen=True)
class ShardMeta:
    """One shard's manifest entry (see the module docstring)."""

    name: str
    file: str
    kind: str
    width: int
    cycles: int
    initial: int
    sha256: str
    source: str = ""


def digest_values(chunks: Any) -> str:
    """SHA-256 content digest over value chunks (masked LE uint64 bytes)."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(np.ascontiguousarray(chunk, dtype="<u8").tobytes())
    return h.hexdigest()


def _check_shard(path: str, record: Any, index: int) -> ShardMeta:
    where = f"shard #{index}"
    if not isinstance(record, dict):
        raise CorpusFormatError(path, f"{where} is not an object")
    missing = [k for k in _REQUIRED_SHARD_KEYS if k not in record]
    if missing:
        raise CorpusFormatError(
            path, f"{where} missing key(s): {', '.join(missing)}"
        )
    extra = sorted(set(record) - set(_REQUIRED_SHARD_KEYS))
    if extra:
        raise CorpusFormatError(
            path, f"{where} has unknown key(s): {', '.join(extra)}"
        )
    name, file, kind = record["name"], record["file"], record["kind"]
    if not isinstance(name, str) or not name:
        raise CorpusFormatError(path, f"{where} has an empty or non-string name")
    if not isinstance(file, str) or not file:
        raise CorpusFormatError(path, f"{where} ({name}) has no shard file")
    if os.path.basename(file) != file or file in (".", ".."):
        raise CorpusFormatError(
            path, f"{where} ({name}) file {file!r} is not a bare filename"
        )
    if kind not in SHARD_KINDS:
        raise CorpusFormatError(
            path,
            f"{where} ({name}) has unsupported kind {kind!r}; "
            f"this library speaks {', '.join(SHARD_KINDS)}",
        )
    width, cycles, initial = record["width"], record["cycles"], record["initial"]
    for key, value in (("width", width), ("cycles", cycles), ("initial", initial)):
        if not isinstance(value, int) or isinstance(value, bool):
            raise CorpusFormatError(
                path, f"{where} ({name}) {key} must be an integer, got {value!r}"
            )
    if not 1 <= width <= 64:
        raise CorpusFormatError(path, f"{where} ({name}) width must be 1..64, got {width}")
    if cycles < 0:
        raise CorpusFormatError(path, f"{where} ({name}) cycles must be >= 0, got {cycles}")
    digest = record["sha256"]
    if (
        not isinstance(digest, str)
        or len(digest) != 64
        or any(c not in "0123456789abcdef" for c in digest)
    ):
        raise CorpusFormatError(
            path, f"{where} ({name}) sha256 must be 64 lowercase hex chars"
        )
    if not isinstance(record["source"], str):
        raise CorpusFormatError(path, f"{where} ({name}) source must be a string")
    return ShardMeta(**record)


def load_manifest(directory: str) -> List[ShardMeta]:
    """Read and validate a corpus manifest; returns its shard entries.

    Raises ``FileNotFoundError`` when the directory holds no manifest
    (it is not a corpus at all) and :class:`CorpusFormatError` for
    every structural problem: wrong format version, malformed JSON,
    missing/unknown/ill-typed shard keys, duplicate stream names, or
    shard filenames that are not bare names.
    """
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        raise FileNotFoundError(f"no corpus manifest at {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CorpusFormatError(path, f"unreadable manifest: {exc}") from exc
    if not isinstance(data, dict):
        raise CorpusFormatError(path, "manifest is not a JSON object")
    if data.get("format") != CORPUS_FORMAT:
        raise CorpusFormatError(
            path,
            f"unsupported corpus format {data.get('format')!r}; "
            f"this library speaks {CORPUS_FORMAT}",
        )
    shards = data.get("shards")
    if not isinstance(shards, list):
        raise CorpusFormatError(path, "manifest has no 'shards' list")
    metas = [_check_shard(path, record, i) for i, record in enumerate(shards)]
    seen: Dict[str, int] = {}
    for meta in metas:
        if meta.name in seen:
            raise CorpusFormatError(path, f"duplicate stream name {meta.name!r}")
        seen[meta.name] = 1
    return metas


def save_manifest(directory: str, shards: List[ShardMeta]) -> str:
    """Atomically write the corpus manifest; returns its path.

    The write goes through a same-directory temp file and
    ``os.replace``, so a reader never observes a half-written manifest
    and a crashed build leaves the previous manifest intact.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, MANIFEST_NAME)
    document = {
        "format": CORPUS_FORMAT,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "shards": [asdict(meta) for meta in shards],
    }
    fd, tmp = tempfile.mkstemp(prefix=".tmp-manifest-", suffix=".json", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path
