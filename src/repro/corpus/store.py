"""Corpus writing and bounded-memory corpus reading.

:class:`CorpusWriter` ingests streams *incrementally* — chunk in, chunk
out to disk with a rolling SHA-256 — so a multi-GB trace is captured
without ever materializing; :class:`CorpusReader` streams shards back
as :class:`~repro.traces.trace.BusTrace` chunks through ``np.memmap``,
verifying the manifest digest *while* streaming, so replaying a corpus
through the chunked codec API (:mod:`repro.traces.streaming`) holds one
chunk in memory at a time regardless of shard size.

The two storage kinds (see :mod:`repro.corpus.format`):

* ``raw`` — bare little-endian uint64 words.  The scalable path: the
  reader memory-maps it and both importers below convert into it.
* ``npz`` — a :mod:`repro.traces.io` archive kept verbatim.  Convenient
  for interchange with ``save_trace`` output, but compressed archives
  cannot be memory-mapped, so reading one materializes the shard; the
  ``.npz`` importer therefore converts to ``raw`` by default.

Every reader/writer failure mode is a :class:`CorpusFormatError` (or
``FileNotFoundError`` for a genuinely absent corpus) with a one-line
reason; unknown stream names raise ``KeyError`` with the available
names, matching the library's lookup conventions.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
from typing import Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from .. import obs
from ..traces.cache import TraceCache, get_default_cache
from ..traces.io import TraceFormatError, load_trace, save_trace
from ..traces.streaming import DEFAULT_CHUNK_CYCLES, iter_chunks
from ..traces.trace import BusTrace
from .format import (
    CorpusFormatError,
    MANIFEST_NAME,
    ShardMeta,
    load_manifest,
    save_manifest,
)

__all__ = [
    "CorpusReader",
    "CorpusWriter",
    "IMPORT_CHUNK_BYTES",
    "import_binary",
    "import_npz",
]

#: Read granularity of the raw-binary importer (bytes). Bounds importer
#: peak memory at ~1 MiB regardless of input file size.
IMPORT_CHUNK_BYTES = 1 << 20

_FILENAME_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _shard_filename(name: str, taken: Iterable[str], suffix: str) -> str:
    """A unique, filesystem-safe shard filename for a stream name."""
    stem = _FILENAME_SAFE.sub("_", name).strip("._") or "shard"
    taken = set(taken)
    candidate = f"{stem}{suffix}"
    counter = 1
    while candidate in taken or candidate == MANIFEST_NAME:
        candidate = f"{stem}-{counter}{suffix}"
        counter += 1
    return candidate


class CorpusWriter:
    """Incremental corpus builder (use as a context manager).

    Opening a directory that already holds a manifest *appends* to it
    (so ``repro corpus record`` can add recorded buses to a corpus
    built earlier); the manifest itself is only written — atomically —
    on :meth:`close`, so a crashed build never leaves a manifest that
    indexes half-written shards.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        try:
            self.shards: List[ShardMeta] = list(load_manifest(directory))
        except FileNotFoundError:
            self.shards = []
        self._names = {meta.name for meta in self.shards}
        self._files = {meta.file for meta in self.shards}
        self._closed = False

    # -- ingestion ----------------------------------------------------

    def add_chunks(
        self,
        name: str,
        chunks: Iterable[Union[BusTrace, np.ndarray]],
        width: int,
        initial: int = 0,
        source: str = "",
    ) -> ShardMeta:
        """Stream one shard to disk from value chunks (bounded memory).

        ``chunks`` may yield :class:`BusTrace` chunks (their values are
        used; the first chunk's ``initial`` overrides the argument) or
        bare arrays.  Values are masked to ``width`` before hitting
        disk, so the shard bytes *are* the content digest's input.
        """
        if self._closed:
            raise CorpusFormatError(self.directory, "writer is closed")
        if not isinstance(name, str) or not name:
            raise ValueError("shard name must be a non-empty string")
        if name in self._names:
            raise ValueError(f"corpus already has a stream named {name!r}")
        if not 1 <= width <= 64:
            raise ValueError(f"width must be 1..64, got {width}")
        mask = np.uint64((1 << width) - 1)
        filename = _shard_filename(name, self._files, ".u64")
        path = os.path.join(self.directory, filename)
        digest = hashlib.sha256()
        cycles = 0
        first = True
        fd, tmp = tempfile.mkstemp(prefix=".tmp-shard-", dir=self.directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                for chunk in chunks:
                    if isinstance(chunk, BusTrace):
                        if first:
                            initial = chunk.initial
                        values = chunk.values
                    else:
                        values = np.asarray(chunk, dtype=np.uint64)
                    first = False
                    data = np.ascontiguousarray(values & mask, dtype="<u8").tobytes()
                    digest.update(data)
                    handle.write(data)
                    cycles += len(values)
                    obs.inc("corpus.ingest_bytes", len(data))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        meta = ShardMeta(
            name=name,
            file=filename,
            kind="raw",
            width=int(width),
            cycles=cycles,
            initial=int(initial) & int(mask),
            sha256=digest.hexdigest(),
            source=source,
        )
        self.shards.append(meta)
        self._names.add(name)
        self._files.add(filename)
        obs.inc("corpus.shards_written")
        return meta

    def add_trace(self, name: str, trace: BusTrace, source: str = "") -> ShardMeta:
        """Add an in-memory trace as one raw shard."""
        return self.add_chunks(
            name, iter_chunks(trace, DEFAULT_CHUNK_CYCLES), trace.width,
            initial=trace.initial, source=source,
        )

    # -- lifecycle ----------------------------------------------------

    def close(self) -> str:
        """Write the manifest (atomic); returns its path."""
        if self._closed:
            return os.path.join(self.directory, MANIFEST_NAME)
        self._closed = True
        return save_manifest(self.directory, self.shards)

    def __enter__(self) -> "CorpusWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        # Only publish the manifest on a clean exit; on error the
        # previous manifest (if any) stays authoritative.
        if exc_type is None:
            self.close()


class CorpusReader:
    """Digest-verified streaming access to a corpus directory.

    Opening validates the manifest and checks every shard file's
    existence and — for raw shards — exact size (``8 * cycles`` bytes),
    so truncation is caught before any stream is consumed.  Content
    digests are verified *while streaming* in :meth:`chunks` (and
    up-front by :meth:`verify`), never by materializing a shard.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self.shards = load_manifest(directory)
        self._by_name: Dict[str, ShardMeta] = {m.name: m for m in self.shards}
        for meta in self.shards:
            path = self._path(meta)
            if not os.path.exists(path):
                raise CorpusFormatError(
                    directory, f"shard file {meta.file!r} ({meta.name}) is missing"
                )
            if meta.kind == "raw":
                size = os.path.getsize(path)
                if size != 8 * meta.cycles:
                    raise CorpusFormatError(
                        directory,
                        f"shard {meta.name!r} is {size} bytes, expected "
                        f"{8 * meta.cycles} for {meta.cycles} cycles",
                    )

    def _path(self, meta: ShardMeta) -> str:
        return os.path.join(self.directory, meta.file)

    # -- lookup -------------------------------------------------------

    def names(self) -> List[str]:
        """Stream names in manifest order."""
        return [meta.name for meta in self.shards]

    def __len__(self) -> int:
        return len(self.shards)

    def meta(self, name: str) -> ShardMeta:
        """The manifest entry for one stream."""
        try:
            return self._by_name[name]
        except KeyError:
            available = ", ".join(sorted(self._by_name)) or "<empty corpus>"
            raise KeyError(
                f"no stream {name!r} in corpus {self.directory}; "
                f"available: {available}"
            ) from None

    # -- streaming reads ----------------------------------------------

    def chunks(
        self,
        name: str,
        chunk_cycles: int = DEFAULT_CHUNK_CYCLES,
        verify: bool = True,
    ) -> Iterator[BusTrace]:
        """One stream as bounded :class:`BusTrace` chunks.

        Raw shards are memory-mapped and sliced (peak Python-heap
        memory is one chunk); each chunk's ``initial`` chains to the
        previous chunk's last value — starting from the manifest's
        ``initial`` — so feeding the chunks through a
        :class:`~repro.traces.streaming.StreamingEncoder` is
        bit-identical to encoding the whole stream one-shot.  With
        ``verify`` (the default) a rolling SHA-256 over the streamed
        bytes is checked against the manifest digest after the final
        chunk; a mismatch raises :class:`CorpusFormatError` — the
        stream is corrupt even though every yielded chunk was
        well-formed.
        """
        if chunk_cycles < 1:
            raise ValueError(f"chunk_cycles must be >= 1, got {chunk_cycles}")
        meta = self.meta(name)
        if meta.kind == "raw":
            values: np.ndarray = np.memmap(self._path(meta), dtype="<u8", mode="r")
            read_kind = "mmap"
        else:
            values = self._load_npz(meta).values
            read_kind = "npz"
        digest = hashlib.sha256() if verify else None
        prev = meta.initial
        for start in range(0, meta.cycles, chunk_cycles):
            stop = min(start + chunk_cycles, meta.cycles)
            chunk = np.ascontiguousarray(values[start:stop], dtype="<u8")
            if digest is not None:
                digest.update(chunk.tobytes())
            obs.inc("corpus.read_cycles", stop - start, kind=read_kind)
            yield BusTrace(chunk, meta.width, meta.name, prev)
            prev = int(chunk[-1]) & ((1 << meta.width) - 1)
        if digest is not None and digest.hexdigest() != meta.sha256:
            raise CorpusFormatError(
                self.directory,
                f"stream {name!r} content digest mismatch "
                f"(expected {meta.sha256[:12]}…, got {digest.hexdigest()[:12]}…)",
            )

    def _load_npz(self, meta: ShardMeta) -> BusTrace:
        try:
            trace = load_trace(self._path(meta))
        except TraceFormatError as exc:
            raise CorpusFormatError(
                self.directory, f"shard {meta.name!r}: {exc.reason}"
            ) from exc
        if trace.width != meta.width or len(trace) != meta.cycles:
            raise CorpusFormatError(
                self.directory,
                f"shard {meta.name!r} archive disagrees with the manifest "
                f"(width {trace.width} vs {meta.width}, "
                f"cycles {len(trace)} vs {meta.cycles})",
            )
        return trace

    def trace(self, name: str, cache: Optional[TraceCache] = None) -> BusTrace:
        """Materialize one stream as a digest-verified :class:`BusTrace`.

        Content-keyed through :mod:`repro.traces.cache`: the cache key
        is the manifest digest, so equal traffic — however it entered
        the corpus — shares one cache entry, and a second materialize
        of a large stream is a cache hit, not a re-read.
        """
        meta = self.meta(name)
        cache = get_default_cache() if cache is None else cache
        key = TraceCache.key("corpus", meta.sha256, meta.width)
        cached = cache.load(key)
        if cached is not None:
            return cached.with_name(meta.name)
        parts = list(self.chunks(name, verify=True))
        if parts:
            trace = BusTrace.concat(*parts)
        else:
            trace = BusTrace(
                np.empty(0, dtype=np.uint64), meta.width, meta.name, meta.initial
            )
        cache.store(key, trace)
        return trace

    # -- integrity ----------------------------------------------------

    def verify(self, name: Optional[str] = None) -> List[str]:
        """Digest-verify one stream (or all); returns the names checked.

        Streams every shard through :meth:`chunks` — bounded memory —
        and raises :class:`CorpusFormatError` on the first mismatch.
        """
        names = [name] if name is not None else self.names()
        with obs.span("corpus.verify", corpus=self.directory, streams=len(names)):
            for stream in names:
                for _chunk in self.chunks(stream, verify=True):
                    pass
        return names


def import_binary(
    writer: CorpusWriter,
    path: str,
    width: int,
    name: Optional[str] = None,
    initial: int = 0,
) -> ShardMeta:
    """Import a raw little-endian uint64 binary file as one shard.

    Streams the file in :data:`IMPORT_CHUNK_BYTES` reads — peak memory
    is one read buffer, never the file — masking values to ``width``.
    The file size must be a multiple of 8 (whole uint64 words).
    """
    if not os.path.exists(path):
        raise FileNotFoundError(f"no such trace file: {path}")
    size = os.path.getsize(path)
    if size % 8:
        raise CorpusFormatError(
            path, f"raw uint64 file size must be a multiple of 8, got {size}"
        )
    name = name or os.path.splitext(os.path.basename(path))[0]

    def reader() -> Iterator[np.ndarray]:
        with open(path, "rb") as handle:
            while True:
                data = handle.read(IMPORT_CHUNK_BYTES)
                if not data:
                    break
                yield np.frombuffer(data, dtype="<u8")

    with obs.span("corpus.ingest", kind="raw", source=path, bytes=size):
        return writer.add_chunks(
            name, reader(), width, initial=initial, source=f"import:{path}"
        )


def import_npz(
    writer: CorpusWriter,
    path: str,
    name: Optional[str] = None,
    convert: bool = True,
) -> ShardMeta:
    """Import a :func:`repro.traces.io.save_trace` archive as one shard.

    By default the archive is converted to a ``raw`` shard (the
    streamable kind); with ``convert=False`` the ``.npz`` file is
    copied in verbatim and registered as an ``npz`` shard — reads of it
    will materialize (compressed archives cannot be memory-mapped).
    """
    trace = load_trace(path)  # validates; raises TraceFormatError
    name = name or trace.name or os.path.splitext(os.path.basename(path))[0]
    with obs.span("corpus.ingest", kind="npz", source=path, cycles=len(trace)):
        if convert:
            return writer.add_trace(name, trace, source=f"import:{path}")
        if writer._closed:
            raise CorpusFormatError(writer.directory, "writer is closed")
        if name in writer._names:
            raise ValueError(f"corpus already has a stream named {name!r}")
        filename = _shard_filename(name, writer._files, ".npz")
        save_trace(trace, os.path.join(writer.directory, filename))
        obs.inc("corpus.ingest_bytes", int(trace.values.nbytes))
        meta = ShardMeta(
            name=name,
            file=filename,
            kind="npz",
            width=trace.width,
            cycles=len(trace),
            initial=trace.initial,
            sha256=_digest_trace(trace),
            source=f"import:{path}",
        )
        writer.shards.append(meta)
        writer._names.add(name)
        writer._files.add(filename)
        obs.inc("corpus.shards_written")
        return meta


def _digest_trace(trace: BusTrace) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(trace.values, dtype="<u8").tobytes()
    ).hexdigest()
