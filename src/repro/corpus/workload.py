"""The unified workload interface: suite, corpus and generator streams.

A :class:`CorpusWorkload` is *one* stream — a name, a bus width, a
cycle count, and two ways to get the traffic: :meth:`~CorpusWorkload.trace`
(materialized) and :meth:`~CorpusWorkload.chunks` (bounded memory, for
the streaming codec path).  A :class:`WorkloadSource` is a *population*
of them, indexed so a load generator or cluster soak can say "give me
stream ``i``" and get deterministic traffic whether it comes from

* a recorded/imported **corpus** directory (``corpus:DIR`` or
  ``corpus:DIR#stream``),
* the parametric **generator** (``gen:mixed,seed=7,population=10000``),
* or the built-in **suite** (``suite:gcc/register@60000``).

One spec grammar — :func:`parse_workload_source` — serves the CLI
(``repro loadgen --corpus``, ``repro cluster-soak --corpus``, ``repro
corpus replay``), so every consumer of workload traffic goes through
the same three-way switch, and errors are one-line ``ValueError``\\ s
per the ``repro: error:`` contract.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..traces.streaming import DEFAULT_CHUNK_CYCLES, iter_chunks
from ..traces.trace import BusTrace
from .generator import ParametricGenerator, parse_generator_spec
from .store import CorpusReader

__all__ = [
    "CorpusWorkload",
    "WorkloadSource",
    "parse_workload_source",
]

_GRAMMAR = (
    "expected corpus:DIR[#stream], gen:[profile][,key=value...] or "
    "suite:NAME[/BUS][@cycles]"
)


class CorpusWorkload:
    """One stream of bus traffic, however it is sourced.

    Subclasses fix :attr:`name`, :attr:`width` and :attr:`cycles` at
    construction and implement :meth:`trace`; the default
    :meth:`chunks` slices the materialized trace, and sources with a
    genuine streaming path (raw corpus shards, the generator) override
    it to keep memory bounded.
    """

    def __init__(self, name: str, width: int, cycles: int):
        self.name = name
        self.width = width
        self.cycles = cycles

    def trace(self) -> BusTrace:
        raise NotImplementedError

    def chunks(
        self, chunk_cycles: int = DEFAULT_CHUNK_CYCLES
    ) -> Iterator[BusTrace]:
        return iter_chunks(self.trace(), chunk_cycles)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.name!r}, width={self.width}, "
            f"cycles={self.cycles})"
        )


class _ShardWorkload(CorpusWorkload):
    """A corpus shard; reads are digest-verified and memory-mapped."""

    def __init__(self, reader: CorpusReader, name: str):
        meta = reader.meta(name)
        super().__init__(name, meta.width, meta.cycles)
        self._reader = reader

    def trace(self) -> BusTrace:
        return self._reader.trace(self.name)

    def chunks(
        self, chunk_cycles: int = DEFAULT_CHUNK_CYCLES
    ) -> Iterator[BusTrace]:
        return self._reader.chunks(self.name, chunk_cycles)


class _GeneratedWorkload(CorpusWorkload):
    """One ``(corpus_seed, index)`` stream of a generator population."""

    def __init__(self, generator: ParametricGenerator, index: int):
        super().__init__(
            generator.stream_name(index), generator.width, generator.cycles
        )
        self._generator = generator
        self._index = index

    def trace(self) -> BusTrace:
        return self._generator.stream(self._index)

    def chunks(
        self, chunk_cycles: int = DEFAULT_CHUNK_CYCLES
    ) -> Iterator[BusTrace]:
        return self._generator.chunks(self._index, chunk_cycles)


class _SuiteWorkload(CorpusWorkload):
    """A built-in suite benchmark's bus trace (cache-memoised)."""

    def __init__(self, workload: str, bus: str, cycles: int):
        from ..workloads.suite import BUS_NAMES

        if bus not in BUS_NAMES:
            raise ValueError(
                f"bus must be one of {sorted(BUS_NAMES)}, got {bus!r}"
            )
        super().__init__(f"{workload}/{bus}", 32, cycles)
        self._workload = workload
        self._bus = bus

    def trace(self) -> BusTrace:
        from ..workloads.suite import _bus_trace

        return _bus_trace(self._workload, self._bus, self.cycles)


class WorkloadSource:
    """An indexed population of :class:`CorpusWorkload` streams.

    ``for_stream(i)`` wraps ``i`` modulo :attr:`size`, so a consumer
    with more clients than the population cycles through it
    deterministically.  :attr:`width` is the population's common bus
    width (a corpus mixing widths refuses to be a source — the serving
    protocol negotiates one width per session population).
    """

    def __init__(self, kind: str, spec: str, streams: List[CorpusWorkload]):
        if not streams:
            raise ValueError(f"workload source {spec!r} holds no streams")
        widths = {w.width for w in streams}
        if len(widths) != 1:
            raise ValueError(
                f"workload source {spec!r} mixes bus widths {sorted(widths)}; "
                f"select one stream with corpus:DIR#stream"
            )
        self.kind = kind
        self.spec = spec
        self.streams = streams
        self.width = streams[0].width

    @property
    def size(self) -> int:
        return len(self.streams)

    def for_stream(self, index: int) -> CorpusWorkload:
        return self.streams[index % self.size]

    def describe(self) -> str:
        return f"{self.spec} ({self.size} streams, width {self.width})"


class _GeneratorSource(WorkloadSource):
    """A generator population — lazy, so 10k streams cost no memory."""

    def __init__(self, spec: str, generator: ParametricGenerator, population: int):
        # Bypass the eager-list constructor: streams are made on demand.
        self.kind = "gen"
        self.spec = spec
        self.generator = generator
        self._population = population
        self.width = generator.width

    @property
    def size(self) -> int:
        return self._population

    @property
    def streams(self) -> List[CorpusWorkload]:  # type: ignore[override]
        raise ValueError(
            f"generator source {self.spec!r} has {self._population} streams; "
            f"iterate via for_stream(index) instead of materializing them"
        )

    def for_stream(self, index: int) -> CorpusWorkload:
        return _GeneratedWorkload(self.generator, index % self._population)

    def describe(self) -> str:
        return (
            f"{self.generator.describe()} "
            f"({self._population} streams, width {self.width})"
        )


def parse_workload_source(spec: str) -> WorkloadSource:
    """Parse a workload-source spec (see the module docstring grammar).

    Raises one-line ``ValueError``\\ s for grammar problems; corpus
    structural problems surface as
    :class:`~repro.corpus.format.CorpusFormatError` /
    ``FileNotFoundError`` from the reader.
    """
    if spec.startswith("corpus:"):
        body = spec[len("corpus:"):]
        directory, _hash, stream = body.partition("#")
        if not directory:
            raise ValueError(f"empty corpus directory in {spec!r}; {_GRAMMAR}")
        reader = CorpusReader(directory)
        names = [stream] if stream else reader.names()
        if stream and stream not in reader.names():
            available = ", ".join(reader.names()) or "<empty corpus>"
            raise ValueError(
                f"no stream {stream!r} in corpus {directory}; available: {available}"
            )
        return WorkloadSource(
            "corpus", spec, [_ShardWorkload(reader, name) for name in names]
        )
    if spec.startswith("gen:"):
        generator, population = parse_generator_spec(spec)
        return _GeneratorSource(spec, generator, population)
    if spec.startswith("suite:"):
        from ..workloads.suite import DEFAULT_CYCLES

        body = spec[len("suite:"):]
        body, _at, cycles_text = body.partition("@")
        workload, _slash, bus = body.partition("/")
        if not workload:
            raise ValueError(f"empty suite workload in {spec!r}; {_GRAMMAR}")
        cycles = DEFAULT_CYCLES
        if cycles_text:
            try:
                cycles = int(cycles_text)
            except ValueError:
                raise ValueError(
                    f"suite cycles must be an integer, got {cycles_text!r}"
                ) from None
            if cycles < 1:
                raise ValueError(f"suite cycles must be >= 1, got {cycles}")
        return WorkloadSource(
            "suite", spec, [_SuiteWorkload(workload, bus or "register", cycles)]
        )
    raise ValueError(f"unrecognized workload spec {spec!r}; {_GRAMMAR}")
