"""Recording live ``repro.cpu`` bus traffic into corpus shards.

The record half of record/replay: run a suite benchmark on the CPU
substrate (:func:`repro.workloads.suite.run_workload` — memoised, so a
recording session after a sweep costs no re-simulation) and capture the
requested bus traces into a corpus, chunk-wise through
:meth:`~repro.corpus.store.CorpusWriter.add_trace`.  The shard's
``source`` field pins the provenance (``record:<workload>/<bus>@<cycles>``)
and the manifest digest pins the content, so the replay half —
:meth:`~repro.corpus.store.CorpusReader.chunks` through the chunked
codec — is provably bit-identical to the live trace it came from
(asserted for every coder family by ``tests/test_corpus_record.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import obs
from ..workloads.suite import BUS_NAMES, DEFAULT_CYCLES, run_workload
from .format import ShardMeta
from .store import CorpusWriter

__all__ = ["record_workload"]


def record_workload(
    writer: CorpusWriter,
    name: str,
    cycles: int = DEFAULT_CYCLES,
    buses: Optional[Sequence[str]] = None,
) -> List[ShardMeta]:
    """Record one benchmark's bus traffic into the corpus.

    Runs ``name`` for ``cycles`` cycles and adds one shard per
    requested bus (default: the register bus; pass ``BUS_NAMES`` for
    all four) named ``<workload>/<bus>``.  Raises ``KeyError`` for an
    unknown workload and ``ValueError`` for an unknown bus — both
    one-liners, per the CLI error contract.
    """
    buses = tuple(buses) if buses is not None else ("register",)
    for bus in buses:
        if bus not in BUS_NAMES:
            raise ValueError(
                f"bus must be one of {sorted(BUS_NAMES)}, got {bus!r}"
            )
    with obs.span("corpus.record", workload=name, cycles=cycles, buses=len(buses)):
        result = run_workload(name, cycles)  # KeyError on unknown workload
        metas = [
            writer.add_trace(
                f"{name}/{bus}",
                getattr(result, f"{bus}_trace"),
                source=f"record:{name}/{bus}@{cycles}",
            )
            for bus in buses
        ]
    obs.inc("corpus.recorded_streams", len(metas))
    return metas
