"""``repro.corpus`` — workload traffic at scale.

The workload-corpus subsystem: everything the library needs to evaluate
bus-encoding schemes on traffic *beyond* the built-in 17-kernel suite.
Three pillars (see each module's docstring for depth):

* **ingestion** (:mod:`~repro.corpus.format`, :mod:`~repro.corpus.store`)
  — a versioned on-disk corpus format (trace shards + digest-carrying
  JSON manifest) with a memory-mapped, digest-verified reader that
  streams multi-GB shards through the chunked codec API without ever
  materializing them, plus raw-uint64 and ``.npz`` importers;
* **generation** (:mod:`~repro.corpus.generator`) — a seeded parametric
  stream generator (value locality, strides, phases, bit entropy,
  burstiness, mixes) that synthesizes millions of
  distinct-but-reproducible streams from ``(corpus_seed,
  stream_index)`` alone;
* **record/replay** (:mod:`~repro.corpus.record`,
  :mod:`~repro.corpus.workload`) — capture live ``repro.cpu`` bus
  traffic into shards, and the :class:`~repro.corpus.workload.CorpusWorkload`
  /`WorkloadSource` interface through which sweeps, benches, the load
  generator and the cluster soak all consume suite, corpus and
  generator streams uniformly (``corpus:``/``gen:``/``suite:`` specs).

CLI surface: ``repro corpus build/import/ls/verify/record/replay``,
``repro workloads --list``, ``repro loadgen --corpus`` and ``repro
cluster-soak --corpus``.  Telemetry: the ``corpus.*`` counters
(``read_cycles``, ``gen_streams``, ``gen_cycles``, ``ingest_bytes``,
``shards_written``, ``recorded_streams``) and the ``corpus.ingest`` /
``corpus.record`` / ``corpus.verify`` spans.
"""

from .format import (
    CORPUS_FORMAT,
    MANIFEST_NAME,
    CorpusFormatError,
    ShardMeta,
    digest_values,
    load_manifest,
    save_manifest,
)
from .generator import (
    GENERATOR_BLOCK,
    GeneratorMix,
    ParametricGenerator,
    PROFILES,
    StreamProfile,
    generate_values,
    parse_generator_spec,
)
from .record import record_workload
from .store import CorpusReader, CorpusWriter, import_binary, import_npz
from .workload import CorpusWorkload, WorkloadSource, parse_workload_source

__all__ = [
    "CORPUS_FORMAT",
    "CorpusFormatError",
    "CorpusReader",
    "CorpusWorkload",
    "CorpusWriter",
    "GENERATOR_BLOCK",
    "GeneratorMix",
    "MANIFEST_NAME",
    "PROFILES",
    "ParametricGenerator",
    "ShardMeta",
    "StreamProfile",
    "WorkloadSource",
    "digest_values",
    "generate_values",
    "import_binary",
    "import_npz",
    "load_manifest",
    "parse_generator_spec",
    "parse_workload_source",
    "record_workload",
    "save_manifest",
]
