"""Seeded parametric stream generator — millions of reproducible workloads.

The related literature's sharpest methodological point is that *which*
bus encoding wins depends on the word-value distribution and temporal
locality of the traffic (memoryless optimal codes win on uniform
traffic, the paper's window transcoder on value-local traffic), so a
17-kernel suite is a narrow lens.  This module widens it: a
:class:`ParametricGenerator` synthesizes arbitrarily many
distinct-but-reproducible bus streams from ``(corpus_seed,
stream_index)`` alone, with dials for exactly the statistics the
paper's predictors key on:

* **value locality** — ``repeat_fraction`` / ``reuse_fraction`` /
  ``working_set`` control how often a word repeats the previous value
  or revisits a recent one (what the window/FCM dictionaries hit);
* **stride behaviour** — ``stride_fraction`` / ``stride`` emit
  arithmetic address-like sequences (what the stride predictor hits);
* **phase behaviour** — ``phase_cycles`` alternates the stream between
  its base dials and a stride-dominant phase, modelling loop-nest
  phase changes;
* **bit entropy** — ``entropy_bits`` confines fresh random words to
  the low-order bits, thinning the transition density the paper's
  Figure 7 measures;
* **burstiness** — ``burst_hold`` / ``burst_len`` inject held-value
  bursts (a quiescent bus between activity spells);
* **mixes** — :class:`GeneratorMix` draws each stream's profile from a
  weighted component set, so one corpus seed yields a heterogeneous
  population.

Determinism contract
--------------------
A stream is a pure function of ``(corpus_seed, stream_index, profile,
cycles, width)``: generation is seeded through
``np.random.SeedSequence((domain, corpus_seed, stream_index))`` and
consumes randomness in fixed-size internal blocks of
:data:`GENERATOR_BLOCK` cycles with a *fixed per-cycle draw budget*, so

* the same inputs produce byte-identical values in any process, any
  worker of a ``--jobs`` pool, and any chunking
  (:meth:`ParametricGenerator.chunks` re-chunks the fixed blocks);
* streams at different indices are statistically independent (distinct
  ``SeedSequence`` spawns), which is what lets a cluster soak draw a
  10k-stream population from one corpus seed and still verify every
  stream bit-exactly against a local re-generation.

The synthetic generators of :mod:`repro.workloads.synthetic` are thin
wrappers over the same block kernel, so the library has exactly one
RNG path for synthetic traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..traces.trace import BusTrace

__all__ = [
    "GENERATOR_BLOCK",
    "GeneratorMix",
    "ParametricGenerator",
    "PROFILES",
    "StreamProfile",
    "generate_values",
    "parse_generator_spec",
]

#: Fixed internal generation granularity (cycles).  Randomness is drawn
#: per block with a constant per-cycle budget, which is what makes any
#: external chunking of a stream bit-identical to any other.
GENERATOR_BLOCK = 4096

#: Seed-domain tag mixed into every stream's ``SeedSequence`` so corpus
#: streams can never collide with other seeded subsystems.
_SEED_DOMAIN = 0xC0B5


@dataclass(frozen=True)
class StreamProfile:
    """The dial settings of one synthetic stream family.

    Per cycle, one behaviour is drawn: *repeat* the previous word,
    *reuse* a recent word (uniform over the last ``working_set``
    distinct values), extend an arithmetic *stride*, or emit a *fresh*
    random word (the remaining probability mass, confined to
    ``entropy_bits`` low-order bits).  ``phase_cycles`` and
    ``burst_hold`` modulate that base mix over time; see the module
    docstring for the dial-to-paper-statistic mapping.
    """

    repeat_fraction: float = 0.25
    reuse_fraction: float = 0.30
    stride_fraction: float = 0.25
    working_set: int = 8
    stride: int = 4
    #: Fresh words are drawn from ``[0, 2**entropy_bits)``; ``None``
    #: means the full bus width.
    entropy_bits: Optional[int] = None
    #: When > 0, cycles ``[k*phase_cycles, (k+1)*phase_cycles)`` for odd
    #: ``k`` use a stride-dominant behaviour mix instead of the base one.
    phase_cycles: int = 0
    #: Per-cycle probability of entering a held-value burst.
    burst_hold: float = 0.0
    #: Mean burst length in cycles (uniform on ``[1, 2*burst_len]``).
    burst_len: int = 16

    def __post_init__(self) -> None:
        for frac_name, frac in (
            ("repeat_fraction", self.repeat_fraction),
            ("reuse_fraction", self.reuse_fraction),
            ("stride_fraction", self.stride_fraction),
            ("burst_hold", self.burst_hold),
        ):
            if not 0.0 <= frac <= 1.0:
                raise ValueError(f"{frac_name} must be in [0, 1], got {frac}")
        if self.repeat_fraction + self.reuse_fraction + self.stride_fraction > 1.0:
            raise ValueError("behaviour fractions must sum to at most 1")
        if self.working_set < 1:
            raise ValueError(f"working_set must be >= 1, got {self.working_set}")
        if self.entropy_bits is not None and not 1 <= self.entropy_bits <= 64:
            raise ValueError(
                f"entropy_bits must be 1..64 or None, got {self.entropy_bits}"
            )
        if self.phase_cycles < 0:
            raise ValueError(f"phase_cycles must be >= 0, got {self.phase_cycles}")
        if self.burst_len < 1:
            raise ValueError(f"burst_len must be >= 1, got {self.burst_len}")


@dataclass(frozen=True)
class GeneratorMix:
    """A weighted population of profiles; each stream draws one.

    The draw costs exactly one RNG sample at stream start, so mixes
    keep the determinism contract: a stream's component — and therefore
    its whole value sequence — is a pure function of ``(corpus_seed,
    stream_index)``.
    """

    components: Tuple[Tuple[str, float, StreamProfile], ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a generator mix needs at least one component")
        for name, weight, _profile in self.components:
            if weight <= 0:
                raise ValueError(
                    f"mix component {name!r} must have weight > 0, got {weight}"
                )

    def pick(self, rng: np.random.Generator) -> Tuple[str, StreamProfile]:
        """Draw one component (consumes exactly one sample)."""
        weights = np.asarray([w for _n, w, _p in self.components], dtype=np.float64)
        edges = np.cumsum(weights / weights.sum())
        draw = rng.random()
        index = int(np.searchsorted(edges, draw, side="right"))
        index = min(index, len(self.components) - 1)
        name, _weight, profile = self.components[index]
        return name, profile


#: Uniform random traffic: every cycle a fresh full-entropy word — the
#: literature's favourite (and, per Figure 15, misleading) workload.
_UNIFORM = StreamProfile(
    repeat_fraction=0.0, reuse_fraction=0.0, stride_fraction=0.0
)

#: Named profiles for the CLI / spec grammar and the docs table.
PROFILES: Dict[str, Union[StreamProfile, GeneratorMix]] = {
    "uniform": _UNIFORM,
    "locality": StreamProfile(),
    "stride": StreamProfile(
        repeat_fraction=0.05, reuse_fraction=0.10, stride_fraction=0.70
    ),
    "bursty": StreamProfile(burst_hold=0.05, burst_len=24),
    "lowentropy": StreamProfile(
        repeat_fraction=0.10, reuse_fraction=0.10, stride_fraction=0.0,
        entropy_bits=8,
    ),
    "phased": StreamProfile(phase_cycles=512),
    "mixed": GeneratorMix(
        (
            ("locality", 3.0, StreamProfile()),
            ("stride", 2.0, StreamProfile(
                repeat_fraction=0.05, reuse_fraction=0.10, stride_fraction=0.70
            )),
            ("uniform", 1.0, _UNIFORM),
            ("bursty", 1.0, StreamProfile(burst_hold=0.05, burst_len=24)),
            ("lowentropy", 1.0, StreamProfile(
                repeat_fraction=0.10, reuse_fraction=0.10, stride_fraction=0.0,
                entropy_bits=8,
            )),
        )
    ),
}

#: Stride-dominant behaviour thresholds used inside odd phases.
_PHASE_REPEAT, _PHASE_REUSE, _PHASE_STRIDE = 0.05, 0.05, 0.85


@dataclass
class _StreamState:
    """Mutable per-stream generation state carried across blocks."""

    current: int = 0
    strider: int = 0
    burst_left: int = 0
    pos: int = 0  #: cycles generated so far (drives phase behaviour)
    recent: List[int] = field(default_factory=lambda: [0])


def _generate_block(
    rng: np.random.Generator,
    state: _StreamState,
    profile: StreamProfile,
    n: int,
    width: int,
) -> np.ndarray:
    """Generate the next ``n`` cycles of a stream (fixed draw budget).

    All randomness is pre-drawn as whole arrays indexed by cycle, so
    the RNG stream position after the block depends only on ``n`` and
    the profile — never on the values themselves.  That invariant is
    what makes chunked generation bit-identical to one-shot generation.
    """
    mask = (1 << width) - 1
    ebits = width if profile.entropy_bits is None else min(profile.entropy_bits, width)
    fresh = rng.integers(0, 1 << ebits, size=n, dtype=np.uint64)
    plain = (
        profile.repeat_fraction == 0.0
        and profile.reuse_fraction == 0.0
        and profile.stride_fraction == 0.0
        and profile.burst_hold == 0.0
        and profile.phase_cycles == 0
    )
    if plain:
        # Pure fresh traffic vectorizes: no per-cycle state to carry
        # beyond the last emitted word.
        state.pos += n
        if n:
            state.current = int(fresh[-1]) & mask
        return fresh & np.uint64(mask)

    draws = rng.random(n)
    reuse_raw = rng.integers(0, 1 << 32, size=n, dtype=np.uint64)
    if profile.burst_hold > 0.0:
        hold = rng.random(n)
        lens = rng.integers(1, 2 * profile.burst_len + 1, size=n)
    else:
        hold = lens = None

    values = np.empty(n, dtype=np.uint64)
    current, strider = state.current, state.strider
    burst_left, recent = state.burst_left, state.recent
    repeat_t = profile.repeat_fraction
    reuse_t = repeat_t + profile.reuse_fraction
    stride_t = reuse_t + profile.stride_fraction
    phase = profile.phase_cycles
    for i in range(n):
        if state.pos + i == 0:
            # Cycle 0 always emits a fresh word: the first word on a
            # bus is data, not the reset value.  Without this, short
            # repeat/hold-heavy streams at different indices can all
            # replicate the initial 0 and collide byte-for-byte.
            current = int(fresh[i]) & mask
        elif burst_left > 0:
            burst_left -= 1
        elif hold is not None and hold[i] < profile.burst_hold:
            burst_left = int(lens[i])
        else:
            if phase and ((state.pos + i) // phase) % 2 == 1:
                r_t, u_t, s_t = _PHASE_REPEAT, _PHASE_REUSE, _PHASE_STRIDE
                u_t += r_t
                s_t += u_t
            else:
                r_t, u_t, s_t = repeat_t, reuse_t, stride_t
            draw = draws[i]
            if draw < r_t:
                pass  # hold current
            elif draw < u_t:
                current = recent[int(reuse_raw[i]) % len(recent)]
            elif draw < s_t:
                strider = (strider + profile.stride) & mask
                current = strider
            else:
                current = int(fresh[i]) & mask
        values[i] = current
        if current not in recent:
            recent.append(current)
            if len(recent) > profile.working_set:
                recent.pop(0)
    state.current, state.strider = current, strider
    state.burst_left = burst_left
    state.pos += n
    return values


def generate_values(
    rng: np.random.Generator,
    profile: StreamProfile,
    length: int,
    width: int,
    state: Optional[_StreamState] = None,
) -> np.ndarray:
    """Generate ``length`` cycles through the block kernel.

    This is the single RNG path shared by
    :func:`repro.workloads.synthetic.random_trace` /
    :func:`~repro.workloads.synthetic.locality_trace` and the corpus
    generator: one ``rng``, consumed in :data:`GENERATOR_BLOCK`-cycle
    blocks with a fixed per-cycle draw budget.
    """
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if not 1 <= width <= 64:
        raise ValueError(f"width must be 1..64, got {width}")
    state = state if state is not None else _StreamState()
    parts = [
        _generate_block(
            rng, state, profile, min(GENERATOR_BLOCK, length - start), width
        )
        for start in range(0, length, GENERATOR_BLOCK)
    ]
    if not parts:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


class ParametricGenerator:
    """Seeded stream population: ``(corpus_seed, index)`` → a bus stream.

    Parameters
    ----------
    profile:
        A :class:`StreamProfile`, a :class:`GeneratorMix`, or a name
        from :data:`PROFILES`.
    seed:
        The corpus seed.  Together with a stream index it fully
        determines a stream (see the module determinism contract).
    cycles / width:
        Default stream length and bus width.
    """

    def __init__(
        self,
        profile: Union[str, StreamProfile, GeneratorMix] = "locality",
        seed: int = 0,
        cycles: int = 4096,
        width: int = 32,
    ):
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]
            except KeyError:
                raise ValueError(
                    f"unknown generator profile {profile!r}; choose from "
                    f"{', '.join(sorted(PROFILES))}"
                ) from None
        if not isinstance(profile, (StreamProfile, GeneratorMix)):
            raise ValueError(
                f"profile must be a StreamProfile, GeneratorMix or name, "
                f"got {type(profile).__name__}"
            )
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        if not 1 <= width <= 64:
            raise ValueError(f"width must be 1..64, got {width}")
        self.profile = profile
        self.seed = int(seed)
        self.cycles = int(cycles)
        self.width = int(width)

    # -- stream identity ----------------------------------------------

    def _open(self, index: int) -> Tuple[np.random.Generator, StreamProfile, str]:
        """The stream's rng, resolved profile and label."""
        if index < 0:
            raise ValueError(f"stream index must be >= 0, got {index}")
        rng = np.random.default_rng(
            np.random.SeedSequence((_SEED_DOMAIN, self.seed, int(index)))
        )
        if isinstance(self.profile, GeneratorMix):
            component, profile = self.profile.pick(rng)
        else:
            component, profile = "", self.profile
        label = f"gen{self.seed}/{index}"
        if component:
            label += f":{component}"
        return rng, profile, label

    def stream_name(self, index: int) -> str:
        """The stream's stable label, e.g. ``gen7/3:stride``."""
        _rng, _profile, label = self._open(index)
        return label

    # -- generation ---------------------------------------------------

    def stream(self, index: int, cycles: Optional[int] = None) -> BusTrace:
        """Materialize one whole stream as a :class:`BusTrace`."""
        cycles = self.cycles if cycles is None else int(cycles)
        rng, profile, label = self._open(index)
        values = generate_values(rng, profile, cycles, self.width)
        obs.inc("corpus.gen_streams")
        obs.inc("corpus.gen_cycles", cycles)
        return BusTrace(values, self.width, label)

    def chunks(
        self,
        index: int,
        chunk_cycles: int = GENERATOR_BLOCK,
        cycles: Optional[int] = None,
    ) -> Iterator[BusTrace]:
        """One stream as bounded :class:`BusTrace` chunks.

        Peak memory is one :data:`GENERATOR_BLOCK` plus one chunk;
        ``BusTrace.concat`` over the chunks is bit-identical to
        :meth:`stream` for every ``chunk_cycles`` (generation happens
        in fixed blocks regardless of the requested chunking), and each
        chunk's ``initial`` chains so activity accounting sums exactly.
        """
        if chunk_cycles < 1:
            raise ValueError(f"chunk_cycles must be >= 1, got {chunk_cycles}")
        total = self.cycles if cycles is None else int(cycles)
        rng, profile, label = self._open(index)
        state = _StreamState()
        obs.inc("corpus.gen_streams")
        buffer = np.empty(0, dtype=np.uint64)
        produced = 0
        emitted = 0
        prev = 0
        while emitted < total:
            while len(buffer) < chunk_cycles and produced < total:
                block = _generate_block(
                    rng, state, profile,
                    min(GENERATOR_BLOCK, total - produced), self.width,
                )
                produced += len(block)
                buffer = np.concatenate([buffer, block]) if len(buffer) else block
            take = min(chunk_cycles, len(buffer))
            chunk, buffer = buffer[:take], buffer[take:]
            obs.inc("corpus.gen_cycles", int(take))
            trace = BusTrace(chunk, self.width, label, prev)
            prev = int(chunk[-1]) if take else prev
            emitted += take
            yield trace

    def describe(self) -> str:
        """One-line human description (CLI listings, manifests)."""
        if isinstance(self.profile, GeneratorMix):
            parts = "+".join(name for name, _w, _p in self.profile.components)
            kind = f"mix[{parts}]"
        else:
            named = [k for k, v in PROFILES.items() if v == self.profile]
            kind = named[0] if named else "custom"
        return f"gen(profile={kind}, seed={self.seed}, cycles={self.cycles}, width={self.width})"


def parse_generator_spec(spec: str) -> Tuple[ParametricGenerator, int]:
    """Parse a ``gen:`` workload spec into a generator and population.

    Grammar: ``gen:[profile][,key=value...]`` with keys ``profile``,
    ``seed``, ``population``, ``cycles``, ``width`` — e.g.
    ``gen:mixed,seed=7,population=10000,cycles=4096,width=16``.  A bare
    leading token is shorthand for ``profile=``.  Returns the generator
    and the population size (default 1024).  All errors are one-line
    ``ValueError``\\ s (the CLI ``repro: error:`` contract).
    """
    body = spec[len("gen:"):] if spec.startswith("gen:") else spec
    profile = "locality"
    fields: Dict[str, int] = {"seed": 0, "population": 1024, "cycles": 4096, "width": 32}
    for part in (p.strip() for p in body.split(",") if p.strip()):
        if "=" not in part:
            profile = part
            continue
        key, _eq, value = part.partition("=")
        key = key.strip()
        if key == "profile":
            profile = value.strip()
            continue
        if key not in fields:
            raise ValueError(
                f"unknown generator spec key {key!r}; expected profile, "
                f"seed, population, cycles or width"
            )
        try:
            fields[key] = int(value)
        except ValueError:
            raise ValueError(
                f"generator spec key {key!r} expects an integer, got {value!r}"
            ) from None
    if fields["population"] < 1:
        raise ValueError(
            f"generator population must be >= 1, got {fields['population']}"
        )
    generator = ParametricGenerator(
        profile, seed=fields["seed"], cycles=fields["cycles"], width=fields["width"]
    )
    return generator, fields["population"]
