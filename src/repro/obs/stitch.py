"""Stitch per-process span exports into one cross-process Chrome trace.

A cluster run leaves several ``spans.jsonl`` files behind — one from the
router (``--obs-dir``) and one per worker generation (``--worker-obs-dir
…/worker-<id>-gen<N>``).  Each is internally consistent but blind to the
others: a request's client span, router span and engine span live in
three files under three pids.  This module merges them into a single
``trace_event`` document and draws **flow arrows** between spans linked
by the distributed trace context (:attr:`~repro.obs.spans.SpanRecord.trace_id`
plus the ``"pid:span_id"`` parent ref), so one request reads as one
arrow-connected path across process rows in Perfetto / ``chrome://tracing``.

Why stitching works without clock translation: span timestamps are
:func:`time.perf_counter`, which on Linux is the *system-wide*
``CLOCK_MONOTONIC`` — router and worker processes on one host share it,
so their spans land on a common timeline as-is.

The default exporter (:func:`repro.obs.export.chrome_trace`) is
deliberately untouched: its event schema is pinned (every event carries
exactly ``name, ph, ts, dur, pid, tid, cat, args``) and flow events
(``"ph": "s"``/``"f"``) would violate it.  Flow arrows exist only here,
in the stitched artifact.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .export import SPANS_FILENAME, read_jsonl

__all__ = [
    "collect_span_files",
    "load_span_sources",
    "stitched_chrome_trace",
    "stitch_run",
]

#: ``args`` key naming which export a stitched span came from.
SOURCE_KEY = "source"


def collect_span_files(inputs: Iterable[str]) -> List[str]:
    """Resolve inputs (span files or obs dirs) to ``spans.jsonl`` paths.

    Directories are walked recursively, so a cluster's worker base dir
    (``…/workers/worker-w0-gen0/spans.jsonl`` …) resolves in one
    argument.  Paths are returned sorted and deduplicated.
    """
    found = set()
    for item in inputs:
        if os.path.isdir(item):
            for root, _dirs, files in os.walk(item):
                if SPANS_FILENAME in files:
                    found.add(os.path.join(root, SPANS_FILENAME))
        elif os.path.isfile(item):
            found.add(item)
        else:
            raise FileNotFoundError(f"no span export at {item!r}")
    return sorted(found)


def _source_label(path: str) -> str:
    """Human label for one export: its directory's basename."""
    directory = os.path.basename(os.path.dirname(os.path.abspath(path)))
    return directory or os.path.basename(path)


def load_span_sources(files: Iterable[str]) -> List[Dict[str, Any]]:
    """Load span JSONL records from every file, tagged with their source."""
    records: List[Dict[str, Any]] = []
    for path in files:
        label = _source_label(path)
        for record in read_jsonl(path):
            if record.get("type") != "span":
                continue
            tagged = dict(record)
            tagged[SOURCE_KEY] = label
            records.append(tagged)
    return records


def _parse_ref(ref: Any) -> Optional[Tuple[int, int]]:
    """``"pid:span_id"`` → (pid, span_id); None when absent/malformed."""
    if not isinstance(ref, str) or ":" not in ref:
        return None
    pid_text, _, span_text = ref.partition(":")
    try:
        return int(pid_text), int(span_text)
    except ValueError:
        return None


def stitched_chrome_trace(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merged ``trace_event`` document with cross-process flow arrows.

    Every span renders as a complete (``"ph": "X"``) slice exactly like
    the single-process exporter; additionally, for each span whose
    ``parent`` ref resolves to another span in the merged set, a flow
    pair is emitted — ``"s"`` (start) on the parent's track at the
    parent's start, ``"f"`` (finish, ``"bp": "e"``) on the child's track
    at the child's start — which the viewer draws as an arrow crossing
    the process rows.
    """
    origin = min((float(r.get("ts", 0.0)) for r in records), default=0.0)

    def us(seconds: Any) -> int:
        return round((float(seconds) - origin) * 1e6)

    by_ref: Dict[Tuple[int, int], Dict[str, Any]] = {}
    for record in records:
        try:
            key = (int(record["pid"]), int(record["span_id"]))
        except (KeyError, TypeError, ValueError):
            continue
        by_ref[key] = record

    events: List[Dict[str, Any]] = []
    pid_labels: Dict[int, str] = {}
    for record in records:
        pid = int(record.get("pid", 0))
        source = record.get(SOURCE_KEY, "")
        if source and pid not in pid_labels:
            pid_labels[pid] = source
        args = dict(record.get("attrs") or {}, depth=record.get("depth", 0))
        if record.get("trace_id"):
            args["trace_id"] = record["trace_id"]
        if source:
            args[SOURCE_KEY] = source
        name = str(record.get("name", "span"))
        events.append(
            {
                "name": name,
                "ph": "X",
                "ts": us(record.get("ts", 0.0)),
                "dur": max(0, round(float(record.get("dur", 0.0)) * 1e6)),
                "pid": pid,
                "tid": int(record.get("tid", 0)),
                "cat": name.split(".", 1)[0],
                "args": args,
            }
        )

    flows = 0
    for record in records:
        parent_key = _parse_ref(record.get("parent"))
        if parent_key is None:
            continue
        parent = by_ref.get(parent_key)
        if parent is None:
            continue  # exporting that process's spans was lost (e.g. SIGKILL)
        flows += 1
        flow_name = str(record.get("trace_id") or "trace")
        common = {"name": flow_name, "cat": "flow", "id": flows}
        events.append(
            dict(
                common,
                ph="s",
                ts=us(parent.get("ts", 0.0)),
                pid=int(parent["pid"]),
                tid=int(parent.get("tid", 0)),
            )
        )
        events.append(
            dict(
                common,
                ph="f",
                bp="e",
                ts=us(record.get("ts", 0.0)),
                pid=int(record.get("pid", 0)),
                tid=int(record.get("tid", 0)),
            )
        )

    events.sort(key=lambda e: (e["pid"], e.get("tid", 0), e["ts"], e["ph"]))
    # Metadata events label each process row with its export directory
    # (router vs worker-<id>-gen<N>); viewers render them as row titles.
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for pid, label in sorted(pid_labels.items())
    ]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"flows": flows, "spans": len(records)},
    }


def stitch_run(inputs: Iterable[str], out: str) -> Dict[str, Any]:
    """Collect, merge and write a stitched trace; returns a summary."""
    import json

    files = collect_span_files(inputs)
    if not files:
        raise FileNotFoundError(
            "no spans.jsonl found under the given inputs — "
            "run with --obs-dir/--worker-obs-dir first"
        )
    records = load_span_sources(files)
    document = stitched_chrome_trace(records)
    directory = os.path.dirname(os.path.abspath(out))
    os.makedirs(directory, exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, default=str)
        handle.write("\n")
    return {
        "out": out,
        "sources": files,
        "spans": len(records),
        "flows": document["otherData"]["flows"],
    }
