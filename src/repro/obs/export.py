"""Exporters: spans/metrics → JSONL, spans → Chrome ``trace_event``.

Two on-disk forms, both derived from the same in-process state:

* **JSONL** (``spans.jsonl`` / ``metrics.jsonl`` under ``--obs-dir``) —
  one self-describing JSON object per line, the machine-readable record
  a run leaves behind.  ``repro report`` re-reads these to render its
  summary, so the format is also this module's *input* format
  (:func:`read_jsonl`).
* **Chrome trace** (``--trace-out``) — the ``trace_event`` JSON object
  format understood by ``chrome://tracing`` and Perfetto: one complete
  (``"ph": "X"``) event per span with microsecond timestamps rebased to
  the earliest span, so the viewer opens at t=0.  Process/thread ids
  are preserved, which is what makes a ``--jobs N`` sweep legible —
  each worker renders as its own row.

Schema contract (pinned by ``tests/test_obs_export.py``): every trace
event carries exactly the keys ``name, ph, ts, dur, pid, tid, cat,
args``; the top level is ``{"traceEvents": [...], "displayTimeUnit":
"ms"}``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from .spans import SpanRecord

__all__ = [
    "chrome_trace",
    "metrics_jsonl_records",
    "read_jsonl",
    "span_jsonl_records",
    "write_chrome_trace",
    "write_jsonl",
]

SPANS_FILENAME = "spans.jsonl"
METRICS_FILENAME = "metrics.jsonl"


# -- JSONL ------------------------------------------------------------


def span_jsonl_records(spans: Iterable[SpanRecord]) -> List[Dict[str, Any]]:
    """One ``{"type": "span", ...}`` dict per finished span."""
    return [
        {
            "type": "span",
            "name": s.name,
            "ts": s.ts,
            "dur": s.dur,
            "pid": s.pid,
            "tid": s.tid,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "depth": s.depth,
            "attrs": s.attrs,
            "trace_id": s.trace_id,
            "parent": s.parent,
        }
        for s in spans
    ]


def metrics_jsonl_records(registry: Any) -> List[Dict[str, Any]]:
    """Registry records, already JSONL-shaped (see ``MetricsRegistry.records``)."""
    return list(registry.records())


def write_jsonl(records: Iterable[Dict[str, Any]], path: str) -> str:
    """Write one JSON object per line; parents directories are created."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
    return path


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL file back into dicts; blank lines are skipped.

    A malformed line raises ``ValueError`` naming the line number —
    surfaced by ``repro report`` as a one-line user error.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})") from None
    return records


# -- Chrome trace_event -----------------------------------------------


def chrome_trace(
    spans: Iterable[SpanRecord], origin_ts: Optional[float] = None
) -> Dict[str, Any]:
    """Render spans as a Chrome/Perfetto ``trace_event`` object.

    Timestamps are rebased to ``origin_ts`` (default: the earliest
    span's start) and converted to integer microseconds, the unit the
    ``trace_event`` spec mandates.
    """
    span_list = list(spans)
    if origin_ts is None:
        origin_ts = min((s.ts for s in span_list), default=0.0)
    events: List[Dict[str, Any]] = []
    for s in span_list:
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "ts": round((s.ts - origin_ts) * 1e6),
                "dur": max(0, round(s.dur * 1e6)),
                "pid": s.pid,
                "tid": s.tid,
                "cat": s.name.split(".", 1)[0],
                "args": dict(s.attrs, depth=s.depth),
            }
        )
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Iterable[SpanRecord], path: str, origin_ts: Optional[float] = None
) -> str:
    """Serialise :func:`chrome_trace` to ``path`` (loadable as-is)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, origin_ts), handle, indent=1, default=str)
        handle.write("\n")
    return path
