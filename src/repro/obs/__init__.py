"""``repro.obs`` — structured instrumentation for the whole pipeline.

One process-global pair of sinks — a :class:`~repro.obs.registry.MetricsRegistry`
and a :class:`~repro.obs.spans.SpanTracer` — fed through a deliberately
tiny facade::

    from repro import obs

    obs.inc("trace_cache.hits")
    obs.observe("coder.encode_s", dt, coder="WindowTranscoder")
    with obs.span("table3.cell", workload="gcc", entries=8):
        ...

Every facade call first checks one module-level boolean, so when
observability is disabled the cost is a single attribute load and
branch; :func:`span` additionally returns a shared no-op singleton
(:data:`~repro.obs.spans.NO_SPAN`) rather than allocating anything.
The ``bench_smoke`` suite holds instrumented-kernel overhead under 2%.

Kill switch: ``REPRO_OBS=0`` (or ``false``/``off``/``no``) disables
collection process-wide at import; :func:`set_enabled` overrides at
runtime (tests, embedding applications).  Disabling never changes any
experiment's *outputs* — telemetry is strictly write-only side
channel (stderr logging, ``--obs-dir`` JSONL, ``--trace-out``).

Fork integration: :func:`fork_snapshot` / :func:`fork_delta` /
:func:`merge_child` let :mod:`repro.analysis.parallel` ship each
worker's metric and span *deltas* back to the parent, so a ``--jobs N``
run reports the same totals as ``--jobs 1``.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from .export import (
    METRICS_FILENAME,
    SPANS_FILENAME,
    chrome_trace,
    metrics_jsonl_records,
    read_jsonl,
    span_jsonl_records,
    write_chrome_trace,
    write_jsonl,
)
from .flight import (
    FLIGHT_DUMP_FILENAME,
    FLIGHT_FILENAME,
    FlightRecorder,
    read_flight_journal,
)
from .logs import LOGGER_NAME, StructuredFormatter, fields, get_logger, setup_logging
from .registry import MetricsRegistry, format_key, parse_key
from .spans import NO_SPAN, ActiveSpan, SpanRecord, SpanTracer

__all__ = [
    "OBS_ENV",
    "enabled_by_env",
    "is_enabled",
    "set_enabled",
    "get_registry",
    "get_tracer",
    "inc",
    "set_gauge",
    "observe",
    "span",
    "hop_span",
    "new_trace_id",
    "timed",
    "reset",
    "fork_snapshot",
    "fork_delta",
    "merge_child",
    "export_run",
    "configure_flight",
    "flight",
    "flight_record",
    "flight_dump",
    # re-exports
    "MetricsRegistry",
    "SpanTracer",
    "SpanRecord",
    "ActiveSpan",
    "NO_SPAN",
    "FlightRecorder",
    "FLIGHT_FILENAME",
    "FLIGHT_DUMP_FILENAME",
    "read_flight_journal",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "span_jsonl_records",
    "metrics_jsonl_records",
    "SPANS_FILENAME",
    "METRICS_FILENAME",
    "format_key",
    "parse_key",
    "LOGGER_NAME",
    "StructuredFormatter",
    "fields",
    "get_logger",
    "setup_logging",
]

#: Environment kill switch: ``REPRO_OBS=0`` disables all collection.
OBS_ENV = "REPRO_OBS"


def enabled_by_env() -> bool:
    """False when ``REPRO_OBS`` is 0/false/off/no (default: enabled)."""
    return os.environ.get(OBS_ENV, "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


_ENABLED: bool = enabled_by_env()
_REGISTRY = MetricsRegistry()
_TRACER = SpanTracer()


# Forking while another thread holds a sink lock must not deadlock the
# child; re-initialise the global sinks' locks post-fork.
if hasattr(os, "register_at_fork"):  # pragma: no branch - always true on linux
    os.register_at_fork(
        after_in_child=lambda: (
            _REGISTRY.reinit_lock(),
            _TRACER.reinit_lock(),
            _FLIGHT.reinit_lock() if _FLIGHT is not None else None,
        )
    )


def is_enabled() -> bool:
    """Whether collection is currently on."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Enable/disable collection at runtime; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def get_tracer() -> SpanTracer:
    """The process-global span tracer."""
    return _TRACER


# -- hot-path facade --------------------------------------------------


def inc(name: str, value: float = 1, **labels: Any) -> None:
    """Add to a counter (no-op when disabled)."""
    if _ENABLED:
        _REGISTRY.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge (no-op when disabled)."""
    if _ENABLED:
        _REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record a histogram sample (no-op when disabled)."""
    if _ENABLED:
        _REGISTRY.observe(name, value, **labels)


def span(name: str, **attrs: Any) -> Union[ActiveSpan, "spans._NoopSpan"]:
    """Open a timed span context; the shared no-op when disabled."""
    if not _ENABLED:
        return NO_SPAN
    return _TRACER.span(name, attrs)


def hop_span(
    name: str, trace_id: str = "", parent: str = "", **attrs: Any
) -> Union[ActiveSpan, "spans._NoopSpan"]:
    """Open a *detached* span carrying distributed trace context.

    Hop spans mark one protocol hop of a request (``client.request`` →
    ``router.request`` → ``engine.request``).  They are detached from
    the thread-local nesting stack — asyncio servers interleave many
    requests on one thread, and stack nesting would invent false edges —
    so cross-process linkage rides exclusively on ``trace_id`` and the
    ``parent`` ref (``"pid:span_id"``), which ``repro trace-stitch``
    resolves into Perfetto flow arrows.  Returns the shared no-op when
    disabled; its ``.ref`` is ``""``, so no trace context leaks onto the
    wire.
    """
    if not _ENABLED:
        return NO_SPAN
    return _TRACER.span(name, attrs, trace_id=trace_id, parent=parent, detached=True)


def new_trace_id() -> str:
    """A fresh 16-hex-digit distributed trace id ('' never returned)."""
    return os.urandom(8).hex()


class timed:
    """Context manager recording a block's duration into a histogram.

    Cheaper than a span when only the aggregate matters::

        with obs.timed("coder.encode_s", coder="WindowTranscoder"):
            ...
    """

    __slots__ = ("name", "labels", "_start", "seconds")

    def __init__(self, name: str, **labels: Any):
        self.name = name
        self.labels = labels
        self._start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.seconds = time.perf_counter() - self._start
        if _ENABLED:
            _REGISTRY.observe(self.name, self.seconds, **self.labels)


def reset() -> None:
    """Drop all collected telemetry (fresh CLI invocation / tests)."""
    _REGISTRY.reset()
    _TRACER.reset()


# -- flight recorder ---------------------------------------------------

_FLIGHT: Optional[FlightRecorder] = None


def configure_flight(
    path: Optional[str] = None, capacity: int = 256
) -> Optional[FlightRecorder]:
    """Install (or clear, with no arguments) the process flight recorder.

    Serving entry points call this with ``<obs-dir>/flight.jsonl`` so
    every lifecycle event is journalled eagerly — the artifact a
    SIGKILLed worker leaves behind.  Returns the recorder, or None when
    collection is disabled (``REPRO_OBS=0`` serving must not write new
    files).
    """
    global _FLIGHT
    if _FLIGHT is not None:
        _FLIGHT.close()
        _FLIGHT = None
    if path is None or not _ENABLED:
        return None
    _FLIGHT = FlightRecorder(capacity=capacity, path=path)
    return _FLIGHT


def flight() -> Optional[FlightRecorder]:
    """The configured process flight recorder, if any."""
    return _FLIGHT


def flight_record(event: str, **fields: Any) -> None:
    """Record one flight event (no-op when disabled or unconfigured)."""
    if _ENABLED and _FLIGHT is not None:
        _FLIGHT.record(event, **fields)


def flight_dump(reason: str = "") -> Optional[str]:
    """Dump the flight ring to disk; returns the path (None if nowhere)."""
    if _FLIGHT is None:
        return None
    return _FLIGHT.dump(reason=reason)


# -- fork-worker integration (used by repro.analysis.parallel) --------


def fork_snapshot() -> Tuple[Dict[str, Any], int]:
    """Baseline (registry snapshot, span mark) taken inside a worker."""
    return _REGISTRY.snapshot(), _TRACER.mark()


def fork_delta(
    baseline: Tuple[Dict[str, Any], int]
) -> Tuple[Dict[str, Any], List[SpanRecord]]:
    """What this process collected since ``baseline`` — picklable."""
    registry_base, span_mark = baseline
    return _REGISTRY.diff(registry_base), _TRACER.take_since(span_mark)


def merge_child(delta: Optional[Tuple[Dict[str, Any], List[SpanRecord]]]) -> None:
    """Fold a worker's :func:`fork_delta` into the parent's sinks."""
    if not delta:
        return
    registry_delta, spans = delta
    if registry_delta:
        _REGISTRY.merge(registry_delta)
    if spans:
        _TRACER.adopt(spans)


# -- run export (used by the CLI) -------------------------------------


def export_run(
    obs_dir: Optional[str] = None, trace_out: Optional[str] = None
) -> Dict[str, str]:
    """Write the collected telemetry to disk; returns {kind: path}.

    ``obs_dir`` receives ``spans.jsonl`` + ``metrics.jsonl``;
    ``trace_out`` receives the Chrome ``trace_event`` file.  Either may
    be None.  Exports are still written when collection was disabled —
    the files are simply (near-)empty, which keeps tooling simple.
    """
    written: Dict[str, str] = {}
    spans = _TRACER.records()
    if _ENABLED and _TRACER.dropped:
        # Surface buffer truncation in the export itself — otherwise a
        # clipped run reads as full coverage (`repro report` flags it).
        _REGISTRY.set_gauge("obs.spans_dropped", float(_TRACER.dropped))
    if obs_dir:
        os.makedirs(obs_dir, exist_ok=True)
        written["spans"] = write_jsonl(
            span_jsonl_records(spans), os.path.join(obs_dir, SPANS_FILENAME)
        )
        written["metrics"] = write_jsonl(
            metrics_jsonl_records(_REGISTRY), os.path.join(obs_dir, METRICS_FILENAME)
        )
    if trace_out:
        written["chrome_trace"] = write_chrome_trace(spans, trace_out)
    return written
