"""Render a run's exported telemetry as the ``repro report`` tables.

Input: the ``--obs-dir`` a previous command wrote (``spans.jsonl`` +
``metrics.jsonl``), or either file individually.  Output: plain-text
tables —

* **phase timing** — spans aggregated by name: call count, total /
  mean / max seconds, and each phase's share of the root span's wall
  time (the "where did the sweep go" view);
* **counters** — every counter, with derived rates where the pair is
  meaningful (``trace_cache`` hit rate, ``parallel`` failure rate);
* **gauges / histograms** — latest values and summary stats.

Everything here is pure text rendering over the JSONL records, so it is
trivially testable and never touches live telemetry state.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.reporting import format_table
from .export import METRICS_FILENAME, SPANS_FILENAME, read_jsonl
from .registry import estimate_quantile

__all__ = ["load_run", "render_report", "summarize_spans"]


def load_run(path: str) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Load (spans, metrics) records from an obs dir or a single file.

    A directory is expected to contain ``spans.jsonl`` and/or
    ``metrics.jsonl``; a file is classified by each record's ``type``
    field.  Raises ``FileNotFoundError`` when nothing is found.
    """
    spans: List[Dict[str, Any]] = []
    metrics: List[Dict[str, Any]] = []
    if os.path.isdir(path):
        found = False
        span_path = os.path.join(path, SPANS_FILENAME)
        metric_path = os.path.join(path, METRICS_FILENAME)
        if os.path.exists(span_path):
            spans = read_jsonl(span_path)
            found = True
        if os.path.exists(metric_path):
            metrics = read_jsonl(metric_path)
            found = True
        if not found:
            raise FileNotFoundError(
                f"no {SPANS_FILENAME} or {METRICS_FILENAME} in {path!r} "
                f"(was the run started with --obs-dir?)"
            )
        return spans, metrics
    records = read_jsonl(path)
    for record in records:
        if record.get("type") == "span":
            spans.append(record)
        else:
            metrics.append(record)
    return spans, metrics


def summarize_spans(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Aggregate spans by name: count, total/mean/max, % of root time.

    The *root* reference is the sum of depth-0 span durations — for a
    CLI run that is the single ``cli.<command>`` span, i.e. the
    command's wall time — so the percentages answer "what fraction of
    the run was this phase" (nested phases legitimately sum past 100%).
    """
    groups: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    root_total = sum(
        float(s.get("dur", 0.0)) for s in spans if s.get("depth", 0) == 0
    )
    for span in spans:
        name = str(span.get("name", "?"))
        dur = float(span.get("dur", 0.0))
        group = groups.get(name)
        if group is None:
            group = groups[name] = {
                "name": name,
                "count": 0,
                "total_s": 0.0,
                "max_s": 0.0,
            }
        group["count"] += 1
        group["total_s"] += dur
        group["max_s"] = max(group["max_s"], dur)
    rows = []
    for group in groups.values():
        group["mean_s"] = group["total_s"] / max(group["count"], 1)
        group["share_pct"] = (
            100.0 * group["total_s"] / root_total if root_total > 0 else 0.0
        )
        rows.append(group)
    rows.sort(key=lambda g: -g["total_s"])
    return rows


def _counter_rows(metrics: Sequence[Dict[str, Any]]) -> List[Tuple[str, Any]]:
    rows: List[Tuple[str, Any]] = []
    for record in metrics:
        if record.get("type") != "counter":
            continue
        labels = record.get("labels") or {}
        suffix = (
            "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        value = record.get("value", 0)
        value = int(value) if float(value).is_integer() else round(float(value), 4)
        rows.append((f"{record.get('name')}{suffix}", value))
    return sorted(rows)


def _counter_total(metrics: Sequence[Dict[str, Any]], name: str) -> float:
    return sum(
        float(r.get("value", 0))
        for r in metrics
        if r.get("type") == "counter" and r.get("name") == name
    )


def _gauge_value(metrics: Sequence[Dict[str, Any]], name: str) -> Optional[float]:
    for record in metrics:
        if record.get("type") == "gauge" and record.get("name") == name:
            value = record.get("value")
            return float(value) if value is not None else None
    return None


def _hist_record(
    metrics: Sequence[Dict[str, Any]], name: str
) -> Optional[Dict[str, Any]]:
    for record in metrics:
        if record.get("type") == "histogram" and record.get("name") == name:
            return record
    return None


#: Relative error between a bucketed-histogram quantile estimate and the
#: exact sample quantile past which the report flags the pair — i.e. the
#: log2 ladder is too coarse at that latency scale to be trusted.
QUANTILE_DRIFT_THRESHOLD = 0.10


def _derived_rows(metrics: Sequence[Dict[str, Any]]) -> List[Tuple[str, str]]:
    """Human-level ratios computed from counter pairs."""
    rows: List[Tuple[str, str]] = []
    hits = _counter_total(metrics, "trace_cache.hits")
    misses = _counter_total(metrics, "trace_cache.misses")
    if hits + misses > 0:
        rows.append(
            ("trace cache hit rate", f"{100.0 * hits / (hits + misses):.1f} %")
        )
    cells = _counter_total(metrics, "parallel.cells")
    failed = _counter_total(metrics, "parallel.cells_failed")
    if cells > 0:
        rows.append(("sweep cells failed", f"{int(failed)} / {int(cells)}"))
    desync = _counter_total(metrics, "coder.desync_events")
    recovered = _counter_total(metrics, "coder.desync_recoveries")
    if desync > 0:
        rows.append(("desync events (recovered)", f"{int(desync)} ({int(recovered)})"))
    dropped = _gauge_value(metrics, "obs.spans_dropped")
    if dropped:
        # Non-zero means the ring overflowed: phase totals above are a
        # lower bound and any trace stitched from this run has holes.
        rows.append(
            ("spans dropped (ring full)", f"{int(dropped)}  ** TRACE INCOMPLETE **")
        )
    rows.extend(_quantile_drift_rows(metrics))
    return rows


def _quantile_drift_rows(
    metrics: Sequence[Dict[str, Any]]
) -> List[Tuple[str, str]]:
    """Bucketed-estimate accuracy check against loadgen ground truth.

    The loadgen records every feed latency twice: each sample lands in
    the ``cluster.loadgen_feed_s`` log2-bucket histogram, and the exact
    sample percentiles are exported as ``cluster.loadgen_exact_p*_s``
    gauges.  Comparing the two per quantile answers "can I trust the
    bucketed p99 everywhere else in this report?" — drift beyond
    :data:`QUANTILE_DRIFT_THRESHOLD` gets flagged.
    """
    hist = _hist_record(metrics, "cluster.loadgen_feed_s")
    if hist is None:
        return []
    rows: List[Tuple[str, str]] = []
    for q, gauge_name in (
        (0.50, "cluster.loadgen_exact_p50_s"),
        (0.90, "cluster.loadgen_exact_p90_s"),
        (0.99, "cluster.loadgen_exact_p99_s"),
    ):
        exact = _gauge_value(metrics, gauge_name)
        estimate = estimate_quantile(hist, q)
        if exact is None or estimate is None:
            continue
        drift = abs(estimate - exact) / exact if exact > 0 else 0.0
        flag = (
            "  ** DRIFT > 10% **" if drift > QUANTILE_DRIFT_THRESHOLD else ""
        )
        rows.append(
            (
                f"loadgen p{int(q * 100)} exact vs bucketed",
                f"{exact:.6f} vs {estimate:.6f} "
                f"(drift {100.0 * drift:.1f} %){flag}",
            )
        )
    return rows


def render_report(
    spans: Sequence[Dict[str, Any]],
    metrics: Sequence[Dict[str, Any]],
    title: Optional[str] = None,
) -> str:
    """The full ``repro report`` text: phase table + metric tables."""
    sections: List[str] = []
    if spans:
        phase_rows = [
            (
                g["name"],
                g["count"],
                f"{g['total_s']:.4f}",
                f"{g['mean_s']:.4f}",
                f"{g['max_s']:.4f}",
                f"{g['share_pct']:.1f}",
            )
            for g in summarize_spans(spans)
        ]
        sections.append(
            format_table(
                ["phase", "count", "total s", "mean s", "max s", "% of run"],
                phase_rows,
                title=title or "per-phase timing (from spans)",
            )
        )
    derived = _derived_rows(metrics)
    if derived:
        sections.append(
            format_table(["quantity", "value"], derived, title="derived rates")
        )
    counters = _counter_rows(metrics)
    if counters:
        sections.append(
            format_table(["counter", "value"], counters, title="counters")
        )
    gauge_rows = sorted(
        (r.get("name"), r.get("value"))
        for r in metrics
        if r.get("type") == "gauge"
    )
    if gauge_rows:
        sections.append(format_table(["gauge", "value"], gauge_rows, title="gauges"))
    def _hist_quantile(record: Dict[str, Any], q: float) -> str:
        value = estimate_quantile(record, q)
        return "-" if value is None else f"{value:.6f}"

    hist_rows = [
        (
            r.get("name"),
            r.get("count"),
            f"{float(r.get('sum', 0.0)):.4f}",
            "-" if r.get("min") is None else f"{float(r['min']):.6f}",
            _hist_quantile(r, 0.50),
            _hist_quantile(r, 0.90),
            _hist_quantile(r, 0.99),
            "-" if r.get("max") is None else f"{float(r['max']):.6f}",
        )
        for r in metrics
        if r.get("type") == "histogram"
    ]
    if hist_rows:
        sections.append(
            format_table(
                ["histogram", "count", "sum s", "min", "p50", "p90", "p99", "max"],
                sorted(hist_rows),
                title="histograms",
            )
        )
    if not sections:
        return "no telemetry records found"
    return "\n\n".join(sections)
