"""Structured logging for the ``repro`` CLI and library.

The library follows standard library-logging etiquette: it logs under
the ``"repro"`` namespace and installs a ``NullHandler`` at import
(:mod:`repro.__init__`), so embedding applications hear nothing unless
they opt in.  The CLI opts in via :func:`setup_logging`, which installs
one stderr handler with :class:`StructuredFormatter`:

    ``12:03:55 INFO  repro.cli: sweep finished cells=54 failed=0``

Key/value fields ride on the standard ``extra=`` mechanism under a
single ``fields`` dict so call sites stay one-liners::

    log.info("sweep finished", extra=fields(cells=54, failed=0))

Verbosity mapping (the CLI's ``-v`` / ``-q`` flags):

* ``-q``  → WARNING and up only (info chatter silenced; stdout
  table/CSV contracts are unaffected — those never go through logging);
* default → INFO;
* ``-v``  → DEBUG.
"""

from __future__ import annotations

import logging
import sys
import time
from typing import Any, Dict, Optional, TextIO

__all__ = ["LOGGER_NAME", "StructuredFormatter", "fields", "get_logger", "setup_logging"]

LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro`` itself by default)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    if name == LOGGER_NAME or name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def fields(**kv: Any) -> Dict[str, Any]:
    """Build the ``extra=`` payload for structured key/value fields."""
    return {"fields": kv}


class StructuredFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL name: message key=value ...`` on one line."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        message = record.getMessage()
        extra = getattr(record, "fields", None)
        if extra:
            kv = " ".join(f"{k}={self._render(v)}" for k, v in extra.items())
            message = f"{message} {kv}" if message else kv
        line = f"{stamp} {record.levelname:<7} {record.name}: {message}"
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line

    @staticmethod
    def _render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.6g}"
        text = str(value)
        return repr(text) if " " in text else text


def setup_logging(
    verbosity: int = 0, stream: Optional[TextIO] = None
) -> logging.Logger:
    """Install the CLI's stderr handler; idempotent across invocations.

    ``verbosity``: negative → WARNING (``-q``), 0 → INFO, positive →
    DEBUG (``-v``).  Re-invoking replaces the previously installed
    handler rather than stacking a second one (``main()`` is called
    repeatedly in-process by the test-suite).
    """
    logger = logging.getLogger(LOGGER_NAME)
    if verbosity < 0:
        level = logging.WARNING
    elif verbosity == 0:
        level = logging.INFO
    else:
        level = logging.DEBUG
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(StructuredFormatter())
    handler.set_name("repro-cli")
    for existing in list(logger.handlers):
        if existing.get_name() == "repro-cli":
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
