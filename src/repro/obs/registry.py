"""Process-local metrics registry: counters, gauges, histograms.

The registry is the accumulation half of :mod:`repro.obs`.  Every
metric is identified by a **name plus labels** (``trace_cache.hits``,
``coder.desync_events{coder=WindowTranscoder, policy=reset-both}``);
internally the pair is flattened to a stable string key so snapshots
are plain JSON-serialisable dictionaries that

* cross process boundaries (a fork worker ships the *delta* it
  produced back to the parent, which :meth:`MetricsRegistry.merge`\\ s
  it — the mechanism :mod:`repro.analysis.parallel` uses);
* land directly in the ``metrics.jsonl`` export without a second
  encoding step.

Thread safety: all mutation happens under one lock.  Fork safety: the
module registers an ``os.register_at_fork`` hook that re-initialises
the global registry's lock in the child, so forking mid-``inc`` from
another thread can never deadlock a worker.

Merge semantics (the contract ``tests/test_obs_registry.py`` pins):

* counters **add**;
* gauges **last-write-wins** (the merged snapshot overwrites);
* histograms merge component-wise: counts and sums add, min/max widen,
  per-bucket counts add.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "HIST_BOUNDS",
    "MetricsRegistry",
    "estimate_quantile",
    "format_key",
    "parse_key",
]

#: Histogram bucket upper bounds (seconds-flavoured log2 ladder from
#: ~1 microsecond to ~17 minutes; values above fall into +Inf).
HIST_BOUNDS: Tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 11))


def format_key(name: str, labels: Mapping[str, Any]) -> str:
    """``name{a=1, b=x}`` — stable, human-readable, JSON-safe key."""
    if not labels:
        return name
    inner = ", ".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`format_key` (label values come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    for part in inner[:-1].split(", "):
        if "=" in part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def _new_hist() -> Dict[str, Any]:
    return {
        "count": 0,
        "sum": 0.0,
        "min": math.inf,
        "max": -math.inf,
        "buckets": [0] * (len(HIST_BOUNDS) + 1),  # last bucket = +Inf
    }


def _bucket_index(value: float) -> int:
    for i, bound in enumerate(HIST_BOUNDS):
        if value <= bound:
            return i
    return len(HIST_BOUNDS)


def estimate_quantile(hist: Mapping[str, Any], q: float) -> Optional[float]:
    """Estimate the ``q``-quantile of a bucketed histogram record.

    Works on anything histogram-shaped — a :meth:`MetricsRegistry.histogram`
    dict, a snapshot entry, or a ``metrics.jsonl`` record — as long as
    it carries ``count`` and ``buckets``.  Linear interpolation inside
    the owning log2 bucket, clamped to the observed ``min``/``max``
    (which also makes single-sample histograms exact).  Returns None
    when the histogram is empty or bucketless (old exports).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = int(hist.get("count") or 0)
    buckets = list(hist.get("buckets") or ())
    if count <= 0 or not buckets:
        return None
    lo = hist.get("min")
    hi = hist.get("max")
    rank = q * count
    cumulative = 0
    for i, n in enumerate(buckets):
        if n <= 0:
            continue
        if cumulative + n >= rank:
            lower = 0.0 if i == 0 else HIST_BOUNDS[i - 1]
            if i < len(HIST_BOUNDS):
                upper = HIST_BOUNDS[i]
            else:  # the +Inf bucket: the observed max is the only bound
                upper = float(hi) if hi is not None else lower
            fraction = (rank - cumulative) / n
            value = lower + fraction * (upper - lower)
            if lo is not None:
                value = max(value, float(lo))
            if hi is not None:
                value = min(value, float(hi))
            return value
        cumulative += n
    return float(hi) if hi is not None else None


class MetricsRegistry:
    """Labelled counters, gauges and histograms with snapshot/diff/merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, Dict[str, Any]] = {}

    # -- fork safety --------------------------------------------------

    def reinit_lock(self) -> None:
        """Replace the lock (called in fork children; see module doc)."""
        self._lock = threading.Lock()

    # -- mutation -----------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to a counter (created at 0 on first touch)."""
        key = format_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to its latest observed value."""
        key = format_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one sample into a histogram."""
        key = format_key(name, labels)
        value = float(value)
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = _new_hist()
            hist["count"] += 1
            hist["sum"] += value
            hist["min"] = min(hist["min"], value)
            hist["max"] = max(hist["max"], value)
            hist["buckets"][_bucket_index(value)] += 1

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()

    # -- read side ----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> float:
        """Current value of one counter (0 when never touched)."""
        return self._counters.get(format_key(name, labels), 0)

    def gauge(self, name: str, **labels: Any) -> Optional[float]:
        return self._gauges.get(format_key(name, labels))

    def histogram(self, name: str, **labels: Any) -> Optional[Dict[str, Any]]:
        hist = self._hists.get(format_key(name, labels))
        return dict(hist, buckets=list(hist["buckets"])) if hist else None

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict copy of everything: picklable, JSON-serialisable."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "hists": {
                    k: dict(h, buckets=list(h["buckets"]))
                    for k, h in self._hists.items()
                },
            }

    # -- delta shipping (fork workers -> parent) ----------------------

    def diff(self, baseline: Mapping[str, Any]) -> Dict[str, Any]:
        """What changed since ``baseline`` (an earlier :meth:`snapshot`).

        The result is itself snapshot-shaped, so it feeds straight into
        :meth:`merge` on the receiving side.  Counters and histogram
        components subtract; gauges are included whenever their latest
        value differs from the baseline.
        """
        now = self.snapshot()
        base_counters = baseline.get("counters", {})
        counters = {
            k: v - base_counters.get(k, 0)
            for k, v in now["counters"].items()
            if v != base_counters.get(k, 0)
        }
        base_gauges = baseline.get("gauges", {})
        gauges = {
            k: v for k, v in now["gauges"].items() if base_gauges.get(k) != v
        }
        base_hists = baseline.get("hists", {})
        hists: Dict[str, Any] = {}
        for key, hist in now["hists"].items():
            base = base_hists.get(key)
            if base is None:
                hists[key] = hist
                continue
            if hist["count"] == base["count"]:
                continue
            hists[key] = {
                "count": hist["count"] - base["count"],
                "sum": hist["sum"] - base["sum"],
                # min/max cannot be un-merged; the widened values are a
                # sound over-approximation for the parent's merge.
                "min": hist["min"],
                "max": hist["max"],
                "buckets": [
                    a - b for a, b in zip(hist["buckets"], base["buckets"])
                ],
            }
        return {"counters": counters, "gauges": gauges, "hists": hists}

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold a snapshot/diff (e.g. from a fork worker) into this registry."""
        with self._lock:
            for key, value in delta.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, value in delta.get("gauges", {}).items():
                self._gauges[key] = value
            for key, incoming in delta.get("hists", {}).items():
                hist = self._hists.get(key)
                if hist is None:
                    hist = self._hists[key] = _new_hist()
                hist["count"] += incoming["count"]
                hist["sum"] += incoming["sum"]
                hist["min"] = min(hist["min"], incoming["min"])
                hist["max"] = max(hist["max"], incoming["max"])
                buckets = incoming.get("buckets") or []
                for i, n in enumerate(buckets[: len(hist["buckets"])]):
                    hist["buckets"][i] += n

    # -- export -------------------------------------------------------

    def records(self) -> Iterable[Dict[str, Any]]:
        """One JSONL-ready record per metric (see :mod:`repro.obs.export`)."""
        snap = self.snapshot()
        out: List[Dict[str, Any]] = []
        for key, value in sorted(snap["counters"].items()):
            name, labels = parse_key(key)
            out.append(
                {"type": "counter", "name": name, "labels": labels, "value": value}
            )
        for key, value in sorted(snap["gauges"].items()):
            name, labels = parse_key(key)
            out.append(
                {"type": "gauge", "name": name, "labels": labels, "value": value}
            )
        for key, hist in sorted(snap["hists"].items()):
            name, labels = parse_key(key)
            record = {"type": "histogram", "name": name, "labels": labels}
            record.update(
                count=hist["count"],
                sum=hist["sum"],
                min=hist["min"] if hist["count"] else None,
                max=hist["max"] if hist["count"] else None,
                # Bucket counts ride along so `repro report` can derive
                # percentiles offline (see :func:`estimate_quantile`).
                buckets=list(hist["buckets"]),
            )
            out.append(record)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, hists={len(self._hists)})"
        )
