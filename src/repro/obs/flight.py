"""Flight recorder: a bounded ring of recent structured events.

A serving process can die in ways that leave no chance to export its
telemetry — a SIGKILLed worker takes its in-memory spans to the grave,
and the post-mortem is an empty ``--obs-dir``.  The flight recorder
closes that gap with the black-box pattern: every significant lifecycle
event (session open/close, quarantine, shed, failover, drain, crash) is

1. appended to a **bounded in-memory ring** (``capacity`` newest events,
   oldest evicted first), and
2. when a journal path is configured, **eagerly appended** to a
   ``flight.jsonl`` file, flushed per event.  Eager writes are what make
   the recorder SIGKILL-proof: ``kill -9`` forfeits the process, not the
   page cache, so everything flushed before the kill survives for the
   :class:`~repro.serve.supervisor.WorkerSupervisor` to harvest.

On *graceful* ends (drain, quarantine, crash-with-a-handler) callers may
additionally :meth:`~FlightRecorder.dump` the ring as one JSON document
with a ``reason`` — a self-contained artifact for CI upload.

Events are primitives-only dicts ``{"seq", "ts", "wall", "event", ...}``
where ``ts`` is :func:`time.perf_counter` (aligns with span timestamps
across processes on Linux) and ``wall`` is :func:`time.time` for humans.
The recorder is thread-safe and fork-safe (:meth:`reinit_lock`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["FLIGHT_FILENAME", "FLIGHT_DUMP_FILENAME", "FlightRecorder"]

#: The eager append-only journal a recorder keeps under its directory.
FLIGHT_FILENAME = "flight.jsonl"
#: The one-document ring dump written by :meth:`FlightRecorder.dump`.
FLIGHT_DUMP_FILENAME = "flight-dump.json"


class FlightRecorder:
    """Bounded event ring with an optional SIGKILL-proof journal."""

    def __init__(self, capacity: int = 256, path: Optional[str] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = path
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._handle = None
        if path:
            os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
            # Line-buffered append: one flush per event, SIGKILL-proof.
            self._handle = open(path, "a", encoding="utf-8", buffering=1)
            self.record("flight.start", pid=os.getpid())

    # -- fork safety ---------------------------------------------------

    def reinit_lock(self) -> None:
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------

    def record(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event to the ring (and journal, if configured)."""
        with self._lock:
            self._seq += 1
            entry: Dict[str, Any] = {
                "seq": self._seq,
                "ts": time.perf_counter(),
                "wall": time.time(),
                "event": event,
            }
            entry.update(fields)
            self._ring.append(entry)
            if self._handle is not None:
                try:
                    self._handle.write(json.dumps(entry, default=str) + "\n")
                except (OSError, ValueError):  # closed handle / full disk
                    self._handle = None
        return entry

    # -- reading / dumping ---------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        """Copy of the ring, oldest first."""
        with self._lock:
            return [dict(entry) for entry in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def dump(self, path: Optional[str] = None, reason: str = "") -> Optional[str]:
        """Write the ring as one JSON document; returns the path.

        ``path`` defaults to ``flight-dump.json`` next to the journal;
        with neither a journal nor an explicit path there is nowhere to
        write and the dump is skipped (returns None).
        """
        if path is None:
            if not self.path:
                return None
            path = os.path.join(
                os.path.dirname(os.path.abspath(self.path)), FLIGHT_DUMP_FILENAME
            )
        events = self.events()
        document = {
            "reason": reason,
            "pid": os.getpid(),
            "dumped_at": time.time(),
            "recorded": self._seq,
            "retained": len(events),
            "events": events,
        }
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, default=str)
            handle.write("\n")
        return path

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:  # pragma: no cover - already gone
                    pass
                self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlightRecorder(events={len(self._ring)}/{self.capacity}, "
            f"path={self.path!r})"
        )


def read_flight_journal(path: str) -> List[Dict[str, Any]]:
    """Parse an eager ``flight.jsonl`` journal, tolerating a torn tail.

    A SIGKILL can land mid-write, leaving a final partial line; unlike
    :func:`repro.obs.export.read_jsonl` (which rejects malformed lines),
    the harvest path drops an undecodable *last* line silently — that is
    exactly the crash the journal exists to survive.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:  # torn tail: expected after kill -9
                break
            raise ValueError(f"{path}:{index + 1}: not valid JSON") from None
    return records


__all__.append("read_flight_journal")
