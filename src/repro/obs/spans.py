"""Span tracing: nested, attributed wall-time intervals.

A *span* is one timed region — ``with obs.span("table3.cell",
workload="gcc", size=8):`` — capturing start time, duration, nesting
depth, parent linkage, process/thread identity and arbitrary structured
attributes.  Finished spans accumulate in a bounded in-process buffer
from which :mod:`repro.obs.export` renders JSONL and Chrome
``trace_event`` files.

Design constraints, in priority order:

1. **No-op fast path.**  When observability is disabled
   (``REPRO_OBS=0``), :func:`repro.obs.span` returns one shared
   module-level singleton whose ``__enter__``/``__exit__`` do nothing —
   no object allocation, no clock read, no lock.  The ``bench_smoke``
   overhead test holds the instrumented kernels under 2% vs. this path.
2. **Fork transparency.**  Timestamps come from
   :func:`time.perf_counter`, which on Linux is ``CLOCK_MONOTONIC`` —
   a *system-wide* clock, so spans recorded in fork workers line up on
   the parent's timeline without translation.  Workers ship their span
   deltas through :meth:`SpanTracer.mark` / :meth:`SpanTracer.take_since`
   (used by :mod:`repro.analysis.parallel`) and the parent adopts them
   with :meth:`SpanTracer.adopt`.
3. **Bounded memory.**  The buffer holds at most ``max_spans`` records;
   overflow drops the newest and counts them in :attr:`SpanTracer.dropped`
   so a runaway sweep cannot OOM the process through its own telemetry.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["NO_SPAN", "SpanRecord", "SpanTracer", "ActiveSpan"]


@dataclass
class SpanRecord:
    """One finished span: primitives only, so records pickle and JSON."""

    name: str
    ts: float  #: perf_counter seconds at entry (system-wide monotonic)
    dur: float  #: seconds
    pid: int
    tid: int
    span_id: int
    parent_id: int  #: 0 when the span is a root
    depth: int  #: 0 for roots, parents + 1 otherwise
    attrs: Dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""  #: distributed trace this span belongs to ("" = none)
    parent: str = ""  #: cross-process parent ref "pid:span_id" ("" = none)


class _NoopSpan:
    """The shared do-nothing span used when observability is off."""

    __slots__ = ()

    #: Wire-safe span reference; empty so callers never attach a trace
    #: context when observability is off.
    ref = ""
    trace_id = ""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


#: Module-level singleton — `obs.span(...)` returns *this object* when
#: disabled, so the disabled path allocates nothing per call.
NO_SPAN = _NoopSpan()


class ActiveSpan:
    """A span that has been entered but not yet closed.

    After the ``with`` block exits, :attr:`dur` holds the measured
    duration in seconds — callers that *consume* their own timings
    (e.g. ``repro bench``) read it instead of keeping a second clock.
    """

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "trace_id",
        "parent",
        "detached",
        "_start",
        "dur",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        attrs: Dict[str, Any],
        span_id: int,
        parent_id: int,
        depth: int,
        trace_id: str = "",
        parent: str = "",
        detached: bool = False,
    ):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.trace_id = trace_id
        self.parent = parent
        self.detached = detached
        self._start = 0.0
        self.dur = 0.0

    @property
    def ref(self) -> str:
        """Wire-safe reference to this span: ``"pid:span_id"``.

        Span ids are only unique per process, so cross-process trace
        context (the protocol ``trace`` field, :attr:`SpanRecord.parent`)
        always carries the pair.
        """
        return f"{os.getpid()}:{self.span_id}"

    def set(self, **attrs: Any) -> "ActiveSpan":
        """Attach/overwrite structured attributes mid-span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "ActiveSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        end = time.perf_counter()
        self.dur = end - self._start
        if exc_type is not None:
            # Record the failure without suppressing it.
            self.attrs.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        self._tracer._finish(self, self._start, self.dur)
        return None


class SpanTracer:
    """Collects finished spans; tracks nesting per thread."""

    def __init__(self, max_spans: int = 200_000):
        self.max_spans = max_spans
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self.dropped = 0

    # -- fork safety --------------------------------------------------

    def reinit_lock(self) -> None:
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        *,
        trace_id: str = "",
        parent: str = "",
        detached: bool = False,
    ) -> ActiveSpan:
        """Open a span (use as a context manager).

        ``trace_id``/``parent`` attach distributed trace context (the
        protocol hop spans set these from the wire ``trace`` field).
        ``detached=True`` opens the span outside the thread-local
        nesting stack: it is always a root (``parent_id=0``) and does
        not become the parent of concurrently opened spans.  Hop spans
        in asyncio servers are detached, because many requests
        interleave on one thread and stack-based nesting would invent
        false parent/child edges between unrelated requests.
        """
        span_id = next(self._ids)
        if detached:
            parent_id = 0
            depth = 0
        else:
            stack = self._stack()
            parent_id = stack[-1] if stack else 0
            stack.append(span_id)
            depth = len(stack) - 1
        return ActiveSpan(
            self,
            name,
            dict(attrs or {}),
            span_id,
            parent_id,
            depth,
            trace_id=trace_id,
            parent=parent,
            detached=detached,
        )

    def _finish(self, span: ActiveSpan, start: float, dur: float) -> None:
        if not span.detached:
            stack = self._stack()
            if stack and stack[-1] == span.span_id:
                stack.pop()
            elif span.span_id in stack:  # out-of-order close: repair the stack
                stack.remove(span.span_id)
        record = SpanRecord(
            name=span.name,
            ts=start,
            dur=dur,
            pid=os.getpid(),
            tid=threading.get_ident(),
            span_id=span.span_id,
            parent_id=span.parent_id,
            depth=span.depth,
            attrs=span.attrs,
            trace_id=span.trace_id,
            parent=span.parent,
        )
        with self._lock:
            if len(self._records) >= self.max_spans:
                self.dropped += 1
            else:
                self._records.append(record)

    # -- reading / shipping -------------------------------------------

    def records(self) -> List[SpanRecord]:
        """Copy of every finished span, in completion order."""
        with self._lock:
            return list(self._records)

    def mark(self) -> int:
        """Current buffer length — pair with :meth:`take_since`."""
        with self._lock:
            return len(self._records)

    def take_since(self, mark: int) -> List[SpanRecord]:
        """Spans finished after ``mark`` (what a fork worker ships back)."""
        with self._lock:
            return list(self._records[mark:])

    def adopt(self, records: List[SpanRecord]) -> None:
        """Fold spans recorded elsewhere (a worker process) into the buffer.

        Worker span ids can collide with the parent's counter, so
        adopted records keep their (pid, span_id) identity — exporters
        key parent/child linkage on the pair, never on span_id alone.
        """
        with self._lock:
            room = self.max_spans - len(self._records)
            if room <= 0:
                self.dropped += len(records)
                return
            self._records.extend(records[:room])
            self.dropped += max(0, len(records) - room)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0
        self._local = threading.local()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanTracer(spans={len(self._records)}, dropped={self.dropped})"
