"""Supervised engine worker processes: spawn, health-check, restart.

One :class:`WorkerSupervisor` owns N ``repro serve`` subprocesses (the
engine workers of a :class:`~repro.serve.cluster.ClusterRouter`).  Per
worker it runs a monitor task that watches two failure modes:

* **crash** — the process exits (or is SIGKILLed); ``process.wait()``
  returns and the monitor enters the restart path immediately;
* **wedge** — the process is alive but stops answering: the monitor
  heartbeats it (the protocol's idempotent ``health`` op) under a
  liveness deadline; ``miss_limit`` consecutive misses get the process
  SIGKILLed, which turns the wedge into a crash and reuses the same
  restart path.  A ``busy`` rejection counts as *alive* — an engine
  under backpressure is overloaded, not dead, and restarting it would
  only convert load into an outage.

Restarts are paced by :class:`~repro.serve.retry.RestartBackoff`
(seeded jittered exponential backoff with a flap detector: a
crash-looping worker is held down for ``hold_down_s`` per attempt but
never abandoned).  Every (re)spawn binds ``--port 0`` and the
supervisor learns the actual port from the child's stdout announcement
(:mod:`repro.serve.ports`) — nothing in the cluster ever races on a
fixed port.  State transitions are pushed to the router through the
``on_worker_up`` / ``on_worker_down`` callbacks; the *generation*
counter increments per spawn so consumers can tell a restarted worker
from a reconnect to the same one.

Worker supervision states (see DESIGN.md for the error-code mapping):

    starting -> up -> down -> backoff -> starting -> ...
                        \\-> (flapping: backoff at hold_down_s)

Shutdown is graceful by default: SIGTERM, which ``repro serve``
handles by draining its engine (abandoned requests are answered
``shutdown``) and exporting telemetry; stragglers past the timeout are
SIGKILLed and reported unclean.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import obs
from . import ports, protocol
from .client import TraceClient
from .retry import RestartBackoff

__all__ = ["WorkerSpec", "WorkerHandle", "WorkerSupervisor"]

log = obs.get_logger("serve.supervisor")

#: How long a spawn may take to announce its port before it is treated
#: as a failed start (cold CPython + numpy import is ~1s; CI can be 10x).
SPAWN_DEADLINE_S = 30.0


@dataclass(frozen=True)
class WorkerSpec:
    """Engine configuration shared by every worker of a cluster."""

    queue_limit: int = 64
    batch_limit: int = 16
    request_timeout_s: float = 30.0
    session_idle_timeout_s: float = 300.0
    sweep_workers: int = 1
    drain_timeout_s: float = 5.0
    #: Base directory for per-worker telemetry exports; each spawn gets
    #: ``<obs_dir>/worker-<id>-gen<generation>`` (a SIGKILLed process
    #: exports nothing — its replacement's directory tells you so).
    obs_dir: Optional[str] = None
    #: Silence worker info-logging on stderr (the port announcement is
    #: stdout and unaffected).
    quiet: bool = True

    def argv(self, host: str) -> List[str]:
        """The worker command line (before per-spawn additions)."""
        argv = [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--host",
            host,
            "--port",
            "0",
            "--queue-limit",
            str(self.queue_limit),
            "--batch-limit",
            str(self.batch_limit),
            "--timeout",
            str(self.request_timeout_s),
            "--session-idle-timeout",
            str(self.session_idle_timeout_s),
            "--jobs",
            str(self.sweep_workers),
            "--drain-timeout",
            str(self.drain_timeout_s),
        ]
        if self.quiet:
            argv.append("-q")
        return argv


@dataclass
class WorkerHandle:
    """Everything the supervisor (and router) knows about one worker."""

    worker_id: str
    host: str = "127.0.0.1"
    port: int = 0
    state: str = "starting"  #: starting | up | down | backoff
    generation: int = 0  #: increments per spawn; restarts are visible
    process: Optional[Any] = None  # asyncio.subprocess.Process
    backoff: RestartBackoff = field(default_factory=RestartBackoff)
    up_since: float = 0.0
    heartbeat_misses: int = 0
    #: This generation's telemetry directory (when the spec sets one).
    obs_dir: Optional[str] = None
    #: The flight-recorder journal harvested from the last death — the
    #: post-mortem artifact a SIGKILLed generation leaves behind.
    flight_dump: Optional[str] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def endpoint(self) -> Tuple[str, int]:
        return self.host, self.port


def _worker_env() -> Dict[str, str]:
    """The child environment: inherited, plus this repro on PYTHONPATH
    (the supervisor may itself be running from an uninstalled src tree)."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    existing = env.get("PYTHONPATH")
    if existing:
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = os.pathsep.join([src, existing])
    else:
        env["PYTHONPATH"] = src
    return env


class WorkerSupervisor:
    """Spawn and babysit N engine workers (see the module docstring).

    Parameters
    ----------
    count:
        Number of workers.
    spec:
        Shared :class:`WorkerSpec` engine configuration.
    host:
        Bind address workers listen on.
    heartbeat_interval_s, liveness_deadline_s, miss_limit:
        Health-check cadence: every ``heartbeat_interval_s`` the
        monitor sends ``health`` and waits ``liveness_deadline_s``;
        ``miss_limit`` consecutive misses SIGKILL the worker (a wedge
        becomes a crash, and the restart path takes over).
    backoff_factory:
        Builds each worker's :class:`RestartBackoff`; receives the
        worker index (so jitter decorrelates across workers).
    on_worker_up, on_worker_down:
        Synchronous callbacks into the router: ``up(handle)`` after a
        spawn announced its port, ``down(handle)`` the moment the
        worker is declared dead.
    """

    def __init__(
        self,
        count: int,
        spec: Optional[WorkerSpec] = None,
        host: str = "127.0.0.1",
        heartbeat_interval_s: float = 0.5,
        liveness_deadline_s: float = 2.0,
        miss_limit: int = 3,
        backoff_factory: Optional[Callable[[int], RestartBackoff]] = None,
        on_worker_up: Optional[Callable[[WorkerHandle], None]] = None,
        on_worker_down: Optional[Callable[[WorkerHandle], None]] = None,
        seed: int = 0,
    ):
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if miss_limit < 1:
            raise ValueError(f"miss_limit must be >= 1, got {miss_limit}")
        self.spec = spec if spec is not None else WorkerSpec()
        self.host = host
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.liveness_deadline_s = float(liveness_deadline_s)
        self.miss_limit = int(miss_limit)
        self.on_worker_up = on_worker_up
        self.on_worker_down = on_worker_down
        if backoff_factory is None:
            backoff_factory = lambda index: RestartBackoff(  # noqa: E731
                base_s=0.05, max_s=2.0, seed=seed * 8191 + index
            )
        self.handles: Dict[str, WorkerHandle] = {
            f"w{i}": WorkerHandle(
                worker_id=f"w{i}", host=host, backoff=backoff_factory(i)
            )
            for i in range(count)
        }
        self._monitors: List["asyncio.Task[None]"] = []
        self._stdout_drains: "set[asyncio.Task[None]]" = set()
        self._stopping = False

    # -- queries -------------------------------------------------------

    def live_workers(self) -> List[str]:
        """Worker ids currently up (the ring's membership view)."""
        return sorted(
            worker_id
            for worker_id, handle in self.handles.items()
            if handle.state == "up"
        )

    def handle(self, worker_id: str) -> WorkerHandle:
        return self.handles[worker_id]

    def restarts(self) -> int:
        """Total restarts across all workers (spawns beyond the first)."""
        return sum(max(0, h.generation - 1) for h in self.handles.values())

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker and start its monitor; returns when all
        workers are up (a worker that fails its *first* spawn raises —
        a cluster that cannot start should say so loudly)."""
        await asyncio.gather(*(self._spawn(h) for h in self.handles.values()))
        loop = asyncio.get_running_loop()
        for handle in self.handles.values():
            self._monitors.append(
                loop.create_task(
                    self._monitor(handle), name=f"repro-supervise-{handle.worker_id}"
                )
            )

    async def stop(self, timeout_s: float = 10.0) -> Dict[str, Any]:
        """Gracefully stop every worker; returns the drain report.

        SIGTERM first (``repro serve`` drains and exits 0), SIGKILL
        stragglers.  The report's ``clean`` is True only when every
        worker exited gracefully with code 0.
        """
        self._stopping = True
        for task in self._monitors:
            task.cancel()
        if self._monitors:
            await asyncio.gather(*self._monitors, return_exceptions=True)
        self._monitors.clear()
        report: Dict[str, Any] = {"clean": True, "workers": {}}
        for worker_id, handle in sorted(self.handles.items()):
            entry: Dict[str, Any] = {
                "restarts": max(0, handle.generation - 1),
                "flapping": handle.backoff.flapping,
            }
            process = handle.process
            if process is None or process.returncode is not None:
                # Already dead (mid-backoff at stop time).
                entry["exit"] = None if process is None else process.returncode
                entry["graceful"] = False
                report["clean"] = False
            else:
                try:
                    process.send_signal(signal.SIGTERM)
                except ProcessLookupError:
                    pass
                try:
                    entry["exit"] = await asyncio.wait_for(process.wait(), timeout_s)
                    entry["graceful"] = entry["exit"] == 0
                except asyncio.TimeoutError:
                    process.kill()
                    entry["exit"] = await process.wait()
                    entry["graceful"] = False
                if not entry["graceful"]:
                    report["clean"] = False
            handle.state = "down"
            report["workers"][worker_id] = entry
        for task in list(self._stdout_drains):
            task.cancel()
        if self._stdout_drains:
            await asyncio.gather(*self._stdout_drains, return_exceptions=True)
        self._stdout_drains.clear()
        self._gauge()
        return report

    # -- chaos hooks (the soak's kill switch) ---------------------------

    def kill(self, worker_id: str, sig: int = signal.SIGKILL) -> int:
        """Send ``sig`` to a worker process (the soak's SIGKILL path).

        Returns the signalled pid.  The monitor notices the death via
        ``process.wait()`` and runs the normal restart path — exactly
        what a real crash would do.
        """
        handle = self.handles[worker_id]
        if handle.process is None or handle.process.returncode is not None:
            raise ValueError(f"worker {worker_id} has no live process to signal")
        pid = handle.process.pid
        handle.process.send_signal(sig)
        obs.inc("cluster.workers_killed", worker=worker_id)
        log.info(
            "worker signalled",
            extra=obs.fields(worker=worker_id, pid=pid, sig=int(sig)),
        )
        return pid

    def flight_dump(self, worker_id: str) -> Optional[str]:
        """Path of a worker's flight-recorder journal, if one exists.

        Resolves against the *current* generation's obs dir, so the
        router can reference the artifact the moment it notices a
        transport failure — before the monitor has even processed the
        death.  Caches the last harvest on the handle.
        """
        handle = self.handles.get(worker_id)
        if handle is None:
            return None
        if handle.obs_dir:
            path = os.path.join(handle.obs_dir, obs.FLIGHT_FILENAME)
            if os.path.isfile(path):
                handle.flight_dump = path
        return handle.flight_dump

    async def wait_all_up(self, timeout_s: float = 30.0) -> None:
        """Block until every worker is up (soaks use this after kills)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(h.state == "up" for h in self.handles.values()):
                return
            await asyncio.sleep(0.02)
        down = [w for w, h in sorted(self.handles.items()) if h.state != "up"]
        raise TimeoutError(f"workers still down after {timeout_s}s: {down}")

    # -- spawning -------------------------------------------------------

    async def _spawn(self, handle: WorkerHandle) -> None:
        """Start one worker process and wait for its port announcement."""
        argv = list(self.spec.argv(self.host))
        generation = handle.generation + 1
        worker_obs_dir = None
        if self.spec.obs_dir:
            worker_obs_dir = os.path.join(
                self.spec.obs_dir,
                f"worker-{handle.worker_id}-gen{generation}",
            )
            argv += ["--obs-dir", worker_obs_dir]
        process = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL if self.spec.quiet else None,
            env=_worker_env(),
        )
        try:
            assert process.stdout is not None
            _, host, port = await ports.read_listening(
                process.stdout, SPAWN_DEADLINE_S
            )
        except (TimeoutError, ConnectionError) as exc:
            # Failed spawn: reap it and re-raise for the caller (first
            # start) or the monitor's restart loop (respawns).
            if process.returncode is None:
                process.kill()
            await process.wait()
            raise ConnectionError(
                f"worker {handle.worker_id} failed to start: {exc}"
            ) from exc
        except asyncio.CancelledError:
            # Supervisor stopping mid-spawn: the half-started child
            # must not be orphaned.
            if process.returncode is None:
                process.kill()
            await process.wait()
            raise
        # Keep draining the child's stdout so it can never block on a
        # full pipe (it should print nothing further, but "should" is
        # not a memory guarantee).
        drain = asyncio.get_running_loop().create_task(
            self._drain_stdout(process.stdout),
            name=f"repro-worker-stdout-{handle.worker_id}",
        )
        self._stdout_drains.add(drain)
        drain.add_done_callback(self._stdout_drains.discard)
        handle.process = process
        handle.host, handle.port = host, port
        handle.generation = generation
        handle.state = "up"
        handle.up_since = time.monotonic()
        handle.heartbeat_misses = 0
        handle.obs_dir = worker_obs_dir
        obs.inc("cluster.worker_spawns", worker=handle.worker_id)
        self._gauge()
        log.info(
            "worker up",
            extra=obs.fields(
                worker=handle.worker_id,
                pid=process.pid,
                port=port,
                generation=generation,
            ),
        )
        if self.on_worker_up is not None:
            self.on_worker_up(handle)

    @staticmethod
    async def _drain_stdout(reader: asyncio.StreamReader) -> None:
        while await reader.read(4096):
            pass

    # -- monitoring -----------------------------------------------------

    async def _monitor(self, handle: WorkerHandle) -> None:
        """One worker's watch-restart loop (runs until supervisor stop)."""
        while True:
            process = handle.process
            assert process is not None
            try:
                await asyncio.wait_for(process.wait(), self.heartbeat_interval_s)
            except asyncio.TimeoutError:
                # Still running: health-check it, then loop.
                await self._heartbeat(handle)
                continue
            # The process exited (crash, SIGKILL, or OOM — all the same
            # from here): declare it down and restart with backoff.
            await self._restart(handle, f"exited with {process.returncode}")

    async def _heartbeat(self, handle: WorkerHandle) -> None:
        """One ``health`` probe under the liveness deadline."""
        try:
            response = await asyncio.wait_for(
                self._probe(handle), self.liveness_deadline_s
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            handle.heartbeat_misses += 1
            obs.inc("cluster.heartbeat_misses", worker=handle.worker_id)
            log.warning(
                "heartbeat missed",
                extra=obs.fields(
                    worker=handle.worker_id, misses=handle.heartbeat_misses
                ),
            )
            if handle.heartbeat_misses >= self.miss_limit:
                # Wedged: alive but unresponsive.  SIGKILL turns it
                # into a crash; the monitor loop's process.wait() picks
                # it up on the next iteration.
                obs.inc("cluster.workers_wedged", worker=handle.worker_id)
                log.error(
                    "worker wedged; killing",
                    extra=obs.fields(worker=handle.worker_id, pid=handle.pid),
                )
                try:
                    handle.process.kill()
                except ProcessLookupError:
                    pass
            return
        handle.heartbeat_misses = 0
        handle.backoff.note_stable(time.monotonic() - handle.up_since)
        obs.set_gauge(
            "cluster.worker_outstanding",
            float(response.get("outstanding", 0)),
            worker=handle.worker_id,
        )

    async def _probe(self, handle: WorkerHandle) -> Dict[str, Any]:
        """Connect, send ``health``, close.  A ``busy`` answer counts as
        alive (an overloaded engine must not be restarted into an
        outage), so this uses the raw request path, not ``call``."""
        client = await TraceClient.connect(handle.host, handle.port)
        try:
            response = await client.request("health")
        finally:
            await client.close()
        if response.get("ok"):
            return response
        error = (response.get("error") or {}).get("code")
        if error == protocol.ERR_BUSY:
            return {"busy": True}
        raise ConnectionError(f"health answered error {error!r}")

    async def _restart(self, handle: WorkerHandle, reason: str) -> None:
        """The death → backoff → respawn path (with flap hold-down)."""
        if handle.state == "up":
            handle.state = "down"
            obs.inc("cluster.worker_deaths", worker=handle.worker_id)
            self._gauge()
            # Harvest the black box BEFORE announcing the death, so the
            # router's failover log can reference the post-mortem.  The
            # journal was written eagerly by the worker itself; even a
            # SIGKILLed generation left it behind.
            dump = self.flight_dump(handle.worker_id)
            if dump is not None:
                obs.inc("cluster.flight_harvests", worker=handle.worker_id)
            log.warning(
                "worker down",
                extra=obs.fields(
                    worker=handle.worker_id, reason=reason, flight_dump=dump
                ),
            )
            if self.on_worker_down is not None:
                self.on_worker_down(handle)
        while True:  # respawn until it sticks (flap hold-down paces us)
            delay = handle.backoff.next_delay()
            handle.state = "backoff"
            obs.inc("cluster.worker_restarts", worker=handle.worker_id)
            log.info(
                "restarting worker",
                extra=obs.fields(
                    worker=handle.worker_id,
                    delay_s=round(delay, 3),
                    flapping=handle.backoff.flapping,
                ),
            )
            await asyncio.sleep(delay)
            try:
                await self._spawn(handle)
                return
            except (ConnectionError, OSError) as exc:
                handle.state = "down"
                log.error(
                    "respawn failed",
                    extra=obs.fields(worker=handle.worker_id, error=str(exc)),
                )

    def _gauge(self) -> None:
        obs.set_gauge(
            "cluster.workers_up",
            sum(1 for h in self.handles.values() if h.state == "up"),
        )
