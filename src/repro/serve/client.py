"""Asyncio client for the trace-serving protocol (``repro client``).

:class:`TraceClient` is a thin, fully-typed wrapper over the newline-
JSON protocol: one TCP connection, monotonically increasing request
ids, responses matched back to their requests by id (so requests may be
pipelined), and protocol errors surfaced as
:class:`~repro.serve.protocol.ProtocolError` — a ``ValueError``
subclass, which the CLI's error funnel renders as the one-line
``repro: error:`` contract.

:class:`EncodeStream` is the client-side view of one streaming session:
``feed`` chunks, take/restore server-side checkpoints, and close.  The
session's FSM lives on the *server*; the stream object only remembers
ids and cycle counts.

Retry discipline for ``busy`` (backpressure) rejections is the
caller's: :meth:`TraceClient.call` raises immediately, while
:meth:`TraceClient.call_with_retry` applies bounded exponential backoff
for idempotent requests.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from . import protocol
from .protocol import ProtocolError

__all__ = ["EncodeStream", "TraceClient"]

log = obs.get_logger("serve.client")


class TraceClient:
    """One protocol connection to a :class:`~repro.serve.server.TraceServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 1
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._receiver = asyncio.get_running_loop().create_task(self._receive_loop())
        self._closed = False

    # -- lifecycle ----------------------------------------------------

    @classmethod
    async def connect(cls, host: str, port: int) -> "TraceClient":
        """Open a connection; raises ``OSError`` when nothing listens."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_FRAME_BYTES
        )
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection (server drops this connection's sessions)."""
        if self._closed:
            return
        self._closed = True
        self._receiver.cancel()
        try:
            await self._receiver
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self._fail_pending(ConnectionResetError("connection closed"))

    async def __aenter__(self) -> "TraceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- request plumbing ---------------------------------------------

    def _fail_pending(self, exc: BaseException) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _receive_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    self._fail_pending(
                        ConnectionResetError("server closed the connection")
                    )
                    return
                try:
                    message = protocol.decode_frame(line)
                except ProtocolError as exc:
                    log.warning("bad frame from server", extra=obs.fields(error=str(exc)))
                    continue
                request_id = message.get("id")
                future = self._pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result(message)
                elif request_id is None:
                    # Unsolicited server error (e.g. undecodable frame).
                    log.warning(
                        "server error", extra=obs.fields(error=str(message.get("error")))
                    )
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            self._fail_pending(exc)

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; returns the raw response message."""
        if self._closed:
            raise ConnectionResetError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        self._writer.write(protocol.encode_frame(protocol.request(op, request_id, **fields)))
        await self._writer.drain()
        return await future

    async def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; raises :class:`ProtocolError` on ``ok: false``."""
        response = await self.request(op, **fields)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ProtocolError(
                error.get("code", protocol.ERR_INTERNAL),
                error.get("message", "unspecified server error"),
            )
        return response

    async def call_with_retry(
        self,
        op: str,
        retries: int = 5,
        backoff_s: float = 0.05,
        **fields: Any,
    ) -> Dict[str, Any]:
        """:meth:`call`, retrying ``busy`` rejections with backoff.

        Only for idempotent requests (``hello``, ``encode_trace``,
        ``sweep``): a ``busy`` answer means the server never admitted
        the request, so resending cannot double-apply, but a *session*
        chunk that timed out mid-flight may have advanced the FSM.
        """
        delay = backoff_s
        for _ in range(retries):
            try:
                return await self.call(op, **fields)
            except ProtocolError as exc:
                if exc.code != protocol.ERR_BUSY:
                    raise
                obs.inc("serve.client_backoffs")
                await asyncio.sleep(delay)
                delay *= 2
        return await self.call(op, **fields)

    # -- typed convenience wrappers ------------------------------------

    async def hello(self) -> Dict[str, Any]:
        """Server identification, capabilities and limits."""
        return await self.call("hello")

    async def open_stream(
        self, coder: str, width: int = 32, policy: Optional[str] = None
    ) -> "EncodeStream":
        """Open a streaming session (optionally resilient, see ``policy``)."""
        fields: Dict[str, Any] = {"coder": coder, "width": width}
        if policy is not None:
            fields["policy"] = policy
        response = await self.call("open", **fields)
        return EncodeStream(self, response)

    async def encode_trace(
        self, coder: str, values: Sequence[int], width: int = 32
    ) -> List[int]:
        """One-shot stateless encode (micro-batched server-side)."""
        response = await self.call(
            "encode_trace", coder=coder, width=width, values=[int(v) for v in values]
        )
        return response["states"]

    async def sweep(
        self,
        workload: str,
        coder: str = "window8",
        bus: str = "register",
        cycles: int = 20_000,
        lam: float = 1.0,
    ) -> Dict[str, Any]:
        """Run one savings sweep cell server-side (process-pool offloaded)."""
        return await self.call(
            "sweep", workload=workload, coder=coder, bus=bus, cycles=cycles, lam=lam
        )


class EncodeStream:
    """Client-side handle on one server-held streaming session."""

    def __init__(self, client: TraceClient, opened: Dict[str, Any]):
        self._client = client
        self.session_id: int = opened["session"]
        self.input_width: int = opened["input_width"]
        self.output_width: int = opened["output_width"]
        self.resilient: bool = bool(opened.get("resilient"))
        self.cycles = 0  #: encode cycles acknowledged by the server
        self.desyncs: List[int] = []  #: decode cycles where desync was detected

    async def feed(self, values: Sequence[int]) -> List[int]:
        """Stream-encode one chunk; returns its wire states."""
        response = await self._client.call(
            "encode", session=self.session_id, values=[int(v) for v in values]
        )
        self.cycles = response["cycles"]
        return response["states"]

    async def decode(self, states: Sequence[int]) -> List[int]:
        """Stream-decode one chunk; desync detections land in :attr:`desyncs`."""
        response = await self._client.call(
            "decode", session=self.session_id, states=[int(s) for s in states]
        )
        self.desyncs.extend(response.get("desyncs", ()))
        return response["values"]

    async def checkpoint(self) -> int:
        """Snapshot the server-side FSM state; returns the checkpoint id."""
        response = await self._client.call("checkpoint", session=self.session_id)
        return response["checkpoint"]

    async def restore(self, checkpoint_id: int) -> None:
        """Rewind the server-side FSM to a checkpoint."""
        response = await self._client.call(
            "restore", session=self.session_id, checkpoint=checkpoint_id
        )
        self.cycles = response["cycles"]

    async def close(self) -> None:
        """Release the session server-side."""
        await self._client.call("close", session=self.session_id)
