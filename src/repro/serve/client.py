"""Asyncio client for the trace-serving protocol (``repro client``).

:class:`TraceClient` is a thin, fully-typed wrapper over the wire
protocol (newline-JSON, plus the negotiated binary bulk framing — see
:meth:`TraceClient.negotiate_binary`): one TCP connection,
monotonically increasing request ids, responses matched back to their
requests by id (so requests may be pipelined), and protocol errors
surfaced as
:class:`~repro.serve.protocol.ProtocolError` — a ``ValueError``
subclass, which the CLI's error funnel renders as the one-line
``repro: error:`` contract.

:class:`EncodeStream` is the client-side view of one streaming session:
``feed`` chunks, take/restore server-side checkpoints, and close.  The
session's FSM lives on the *server*; the stream object only remembers
ids and cycle counts.

Retry discipline: :meth:`TraceClient.call` raises immediately, while
:meth:`TraceClient.call_with_retry` applies a
:class:`~repro.serve.retry.RetryPolicy` — jittered exponential
backoff, a per-attempt timeout, and an *overall deadline budget* that
backoff sleeps can never overshoot.  Which failures are retryable is
the protocol's idempotency contract (see the table in
:mod:`repro.serve.protocol`): ``busy`` rejections are retryable for
every op (the server never admitted the request), but ambiguous
failures — transport errors, attempt timeouts — are only retried for
the idempotent ops.  Session ops recover by reconnect → ``resume`` →
replay instead (:class:`~repro.serve.recovery.ResilientTraceClient`).

A server frame that cannot be decoded is a *connection-fatal* event:
the client cannot know which pending request the frame answered, so
every pending future fails with :class:`FrameCorruptionError` and the
connection is marked broken, rather than silently leaving callers to
hang on futures nobody will ever complete.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from . import protocol
from .protocol import ProtocolError
from .retry import RetryPolicy

__all__ = ["EncodeStream", "FrameCorruptionError", "TraceClient"]

log = obs.get_logger("serve.client")


class FrameCorruptionError(ConnectionError):
    """The server sent an undecodable frame; the connection is dead.

    Subclasses :class:`ConnectionError`, so retry/resume machinery
    treats it exactly like a dropped connection — which is what the
    client must do, because response/request correlation is lost.
    """


class TraceClient:
    """One protocol connection to a :class:`~repro.serve.server.TraceServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 1
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._receiver = asyncio.get_running_loop().create_task(self._receive_loop())
        self._closed = False
        self._broken = False  # set when the server stream is unusable
        #: True after :meth:`negotiate_binary` confirmed the server
        #: speaks binary bulk frames; bulk requests then go binary.
        self.binary = False

    # -- lifecycle ----------------------------------------------------

    @classmethod
    async def connect(cls, host: str, port: int) -> "TraceClient":
        """Open a connection; raises ``OSError`` when nothing listens."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_FRAME_BYTES
        )
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection (server drops this connection's sessions)."""
        if self._closed:
            return
        self._closed = True
        self._receiver.cancel()
        try:
            await self._receiver
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self._fail_pending(ConnectionResetError("connection closed"))

    async def __aenter__(self) -> "TraceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- request plumbing ---------------------------------------------

    def _fail_pending(self, exc: BaseException) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _receive_loop(self) -> None:
        try:
            while True:
                try:
                    raw = await protocol.read_frame(self._reader)
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ProtocolError,
                ) as exc:
                    # Framing lost mid-stream (truncated binary body,
                    # oversize declaration, overlong line): same
                    # severity as an undecodable frame below.
                    obs.inc("serve.client_corrupt_frames")
                    self._broken = True
                    self._fail_pending(
                        FrameCorruptionError(f"unreadable frame from server: {exc}")
                    )
                    return
                if not raw:
                    self._fail_pending(
                        ConnectionResetError("server closed the connection")
                    )
                    return
                try:
                    message = protocol.decode_any_frame(raw)
                except ProtocolError as exc:
                    # An undecodable frame severs request/response
                    # correlation: *some* pending request was probably
                    # answered by it, and skipping the frame would
                    # leave that caller hanging forever.  Fail fast:
                    # every pending future dies with a ConnectionError
                    # subclass and the connection is declared broken.
                    log.warning(
                        "undecodable frame from server; failing connection",
                        extra=obs.fields(error=str(exc)),
                    )
                    obs.inc("serve.client_corrupt_frames")
                    self._broken = True
                    self._fail_pending(
                        FrameCorruptionError(
                            f"undecodable frame from server: {exc}"
                        )
                    )
                    return
                # The framing marker is transport metadata, not part of
                # the response the caller asked for.
                message.pop(protocol.BULK_KEY, None)
                request_id = message.get("id")
                future = self._pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result(message)
                elif request_id is None:
                    # Unsolicited server error (e.g. undecodable frame).
                    log.warning(
                        "server error", extra=obs.fields(error=str(message.get("error")))
                    )
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            self._fail_pending(exc)

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; returns the raw response message."""
        if self._closed:
            raise ConnectionResetError("client is closed")
        if self._broken:
            raise FrameCorruptionError(
                "connection failed on an undecodable server frame"
            )
        request_id = self._next_id
        self._next_id += 1
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        message = protocol.request(op, request_id, **fields)
        # Distributed trace context: unless the caller supplied its own
        # ``trace`` (the cluster router does, to chain hops), this client
        # is the trace root — open the hop span and put its ref on the
        # wire so downstream hops link to it.  Disabled obs leaves the
        # message untouched (NO_SPAN has an empty ref, and old peers
        # ignore the field anyway).
        hop: Any = obs.NO_SPAN
        if "trace" not in message and obs.is_enabled():
            hop = obs.hop_span("client.request", trace_id=obs.new_trace_id(), op=op)
            message["trace"] = {"id": hop.trace_id, "parent": hop.ref}
        bulk_field = protocol.BULK_REQUEST_FIELDS.get(op) if self.binary else None
        if bulk_field is not None and isinstance(
            message.get(bulk_field), (list, tuple, np.ndarray)
        ):
            frame = protocol.encode_binary_frame(
                message, bulk_field, message[bulk_field]
            )
        else:
            frame = protocol.encode_frame(message)
        try:
            with hop:  # the client hop spans the full round trip
                self._writer.write(frame)
                await self._writer.drain()
                return await future
        finally:
            # A caller-side cancellation (e.g. wait_for timing the
            # attempt out) must not leak the pending entry: a late
            # response to a forgotten id is dropped, not delivered.
            self._pending.pop(request_id, None)

    async def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; raises :class:`ProtocolError` on ``ok: false``."""
        response = await self.request(op, **fields)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ProtocolError(
                error.get("code", protocol.ERR_INTERNAL),
                error.get("message", "unspecified server error"),
            )
        return response

    async def call_with_retry(
        self,
        op: str,
        retries: int = 5,
        backoff_s: float = 0.05,
        retry: Optional[RetryPolicy] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """:meth:`call` under the unified retry discipline.

        What is retried follows the protocol's idempotency table
        (:data:`~repro.serve.protocol.IDEMPOTENT_OPS`):

        * ``busy`` rejections — retried for **every** op: the server
          rejected the request *before admitting it*, so a resend can
          never double-apply;
        * ambiguous failures (transport errors, attempt timeouts) —
          retried only for the idempotent ops; a *session* chunk that
          died mid-flight may have advanced the FSM, so those are
          re-raised for the caller to recover via reconnect/``resume``
          (see :class:`~repro.serve.recovery.ResilientTraceClient`).

        Pass ``retry`` for full control (attempt timeouts, an overall
        ``deadline_s`` budget that backoff sleeps never overshoot,
        jitter); the legacy ``retries``/``backoff_s`` pair builds an
        equivalent jitter-free policy and stays supported.
        """
        if retry is None:
            retry = RetryPolicy(
                attempts=max(1, retries + 1),
                base_backoff_s=backoff_s,
                multiplier=2.0,
                max_backoff_s=max(backoff_s * 64, backoff_s),
                jitter=0.0,
            )
        state = retry.start(key=self._next_id)
        idempotent = op in protocol.IDEMPOTENT_OPS
        while True:
            state.begin_attempt()
            # RetryBudgetExceeded propagates from here: the overall
            # deadline budget is spent, no further attempt is made.
            timeout = state.attempt_timeout()
            try:
                if timeout is None:
                    return await self.call(op, **fields)
                return await asyncio.wait_for(self.call(op, **fields), timeout)
            except ProtocolError as exc:
                if exc.code != protocol.ERR_BUSY:
                    raise
                obs.inc("serve.client_backoffs")
                last_error: BaseException = exc
            except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
                if not idempotent:
                    raise
                obs.inc("serve.client_retries", op=op)
                last_error = exc
            if not state.more_attempts():
                raise last_error
            # The sleep is clipped to the remaining deadline budget —
            # backoff can never overshoot the caller's deadline.
            await asyncio.sleep(state.next_backoff())

    # -- typed convenience wrappers ------------------------------------

    async def hello(self) -> Dict[str, Any]:
        """Server identification, capabilities and limits."""
        return await self.call("hello")

    async def negotiate_binary(self) -> bool:
        """Switch bulk ops to binary frames if the server supports them.

        Sends a ``hello`` (JSON, as always) and enables binary bulk
        framing iff the response advertises ``binary_frames``.  Returns
        the negotiated state.  Without this call — or against an older
        server — every request stays newline-JSON: the fallback needs
        no negotiation.
        """
        response = await self.hello()
        self.binary = bool(response.get("binary_frames"))
        return self.binary

    async def open_stream(
        self, coder: str, width: int = 32, policy: Optional[str] = None
    ) -> "EncodeStream":
        """Open a streaming session (optionally resilient, see ``policy``)."""
        fields: Dict[str, Any] = {"coder": coder, "width": width}
        if policy is not None:
            fields["policy"] = policy
        response = await self.call("open", **fields)
        return EncodeStream(self, response)

    async def resume_stream(
        self, state: Dict[str, Any], **pins: Any
    ) -> "EncodeStream":
        """Materialise a new session from an exported checkpoint blob.

        ``pins`` may carry ``coder``/``width``/``policy`` the caller
        *expects* the blob to hold; a disagreement is answered
        ``resume_mismatch`` before any FSM state is touched.
        """
        response = await self.call("resume", state=state, **pins)
        return EncodeStream(self, response)

    async def encode_trace(
        self, coder: str, values: Sequence[int], width: int = 32
    ) -> Sequence[int]:
        """One-shot stateless encode (micro-batched server-side).

        Returns the wire states: a plain int list over JSON framing, a
        ``uint64`` ndarray (bit-identical values) when binary frames
        were negotiated.
        """
        response = await self.call(
            "encode_trace", coder=coder, width=width, values=self._bulk_payload(values)
        )
        return response["states"]

    def _bulk_payload(self, values: Sequence[int]) -> Any:
        """A bulk request payload in the connection's negotiated form."""
        if self.binary:
            return np.ascontiguousarray(np.asarray(values, dtype=np.uint64))
        return [int(v) for v in values]

    async def sweep(
        self,
        workload: str,
        coder: str = "window8",
        bus: str = "register",
        cycles: int = 20_000,
        lam: float = 1.0,
    ) -> Dict[str, Any]:
        """Run one savings sweep cell server-side (process-pool offloaded)."""
        return await self.call(
            "sweep", workload=workload, coder=coder, bus=bus, cycles=cycles, lam=lam
        )


class EncodeStream:
    """Client-side handle on one server-held streaming session."""

    def __init__(self, client: TraceClient, opened: Dict[str, Any]):
        self._client = client
        self.session_id: int = opened["session"]
        self.input_width: int = opened["input_width"]
        self.output_width: int = opened["output_width"]
        self.resilient: bool = bool(opened.get("resilient"))
        #: Encode cycles acknowledged by the server (non-zero straight
        #: away when the stream was materialised by ``resume``).
        self.cycles: int = int(opened.get("cycles", 0))
        self.resumed: bool = bool(opened.get("resumed"))
        self.desyncs: List[int] = []  #: decode cycles where desync was detected

    async def feed(self, values: Sequence[int]) -> Sequence[int]:
        """Stream-encode one chunk; returns its wire states.

        States come back as an int list over JSON framing, as a
        ``uint64`` ndarray (bit-identical) when the connection
        negotiated binary frames.
        """
        response = await self._client.call(
            "encode",
            session=self.session_id,
            values=self._client._bulk_payload(values),
        )
        self.cycles = response["cycles"]
        return response["states"]

    async def decode(self, states: Sequence[int]) -> Sequence[int]:
        """Stream-decode one chunk; desync detections land in :attr:`desyncs`."""
        response = await self._client.call(
            "decode",
            session=self.session_id,
            states=self._client._bulk_payload(states),
        )
        self.desyncs.extend(response.get("desyncs", ()))
        return response["values"]

    async def checkpoint(self, export: bool = False) -> Any:
        """Snapshot the server-side FSM state.

        Plain form returns the server-side checkpoint id (an int).
        With ``export=True`` returns ``(checkpoint_id, state)`` where
        ``state`` is the portable, digest-sealed blob a later
        ``resume`` (on *any* connection) restores bit-exactly.
        """
        response = await self._client.call(
            "checkpoint", session=self.session_id, export=bool(export)
        )
        if export:
            return response["checkpoint"], response["state"]
        return response["checkpoint"]

    async def restore(self, checkpoint_id: int) -> None:
        """Rewind the server-side FSM to a checkpoint."""
        response = await self._client.call(
            "restore", session=self.session_id, checkpoint=checkpoint_id
        )
        self.cycles = response["cycles"]

    async def close(self) -> None:
        """Release the session server-side."""
        await self._client.call("close", session=self.session_id)
