"""Unified retry discipline for the serving client side.

Before this module, ``TraceClient.call_with_retry`` retried ``busy``
rejections on a fixed backoff and nothing else; backoff could overshoot
any caller deadline, and a transport error during a *session* op could
be retried into a double-applied chunk.  This module centralises the
policy so every retrying path — ``call_with_retry``, the
:class:`~repro.serve.recovery.ResilientTraceClient`, the soak driver —
shares one set of rules:

* **jittered exponential backoff** — seeded, so chaos runs are
  reproducible;
* **per-attempt timeout** — one slow attempt cannot eat the budget;
* **overall deadline budget** — backoff sleeps are clipped so the sum
  of attempts + sleeps never exceeds ``deadline_s``;
* **idempotency gating** — which *errors* are retryable for which
  *ops* is decided by :data:`repro.serve.protocol.IDEMPOTENT_OPS`, not
  by each call site (see the delivery-semantics table in
  :mod:`repro.serve.protocol`).

The :class:`CircuitBreaker` adds fail-fast on top: after
``failure_threshold`` consecutive transport failures the circuit opens
and callers get :class:`CircuitOpenError` immediately instead of
burning their deadline against a dead server; after ``reset_timeout_s``
one probe attempt (half-open) is allowed through.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional

from .. import obs

__all__ = [
    "RetryPolicy",
    "RetryState",
    "RetryBudgetExceeded",
    "CircuitBreaker",
    "CircuitOpenError",
    "RestartBackoff",
]


class RetryBudgetExceeded(TimeoutError):
    """The overall deadline budget ran out before an attempt succeeded."""


class CircuitOpenError(ConnectionError):
    """Fail-fast: the circuit breaker is open, no attempt was made."""


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry: attempts, backoff shape, timeouts, budget.

    A policy is immutable and shareable; per-call bookkeeping lives in
    the :class:`RetryState` returned by :meth:`start`.

    Parameters
    ----------
    attempts:
        Maximum number of attempts (>= 1).  ``attempts=1`` means "no
        retries".
    base_backoff_s, multiplier, max_backoff_s:
        Exponential backoff: sleep ``base * multiplier**k`` (capped)
        before attempt ``k+1``.
    jitter:
        Fraction of each sleep drawn uniformly at random (full jitter
        on that fraction): ``jitter=0.5`` sleeps between 50% and 100%
        of the nominal value.  Seeded per :class:`RetryState`, so runs
        are reproducible.
    attempt_timeout_s:
        Per-attempt timeout, or None to let the transport decide.
    deadline_s:
        Overall budget across all attempts *and* sleeps, or None for
        unbounded.  Sleeps are clipped to the remaining budget and a
        spent budget raises :class:`RetryBudgetExceeded` instead of
        starting another attempt.
    seed:
        Jitter RNG seed; :meth:`start` mixes in its ``key`` argument so
        concurrent operations can be decorrelated while staying
        deterministic.
    """

    attempts: int = 5
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.5
    attempt_timeout_s: Optional[float] = None
    deadline_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")

    def start(self, key: int = 0, now: Optional[float] = None) -> "RetryState":
        """Begin one retrying operation; returns its mutable state.

        ``key`` decorrelates jitter between concurrent operations
        (e.g. pass the request id) without sacrificing determinism.
        """
        return RetryState(
            policy=self,
            started=now if now is not None else time.monotonic(),
            # Mix policy seed and per-operation key into one int seed
            # (random.Random rejects tuples).
            _rng=random.Random(self.seed * 0x9E3779B1 + int(key)),
        )


@dataclass
class RetryState:
    """Mutable bookkeeping for one retrying operation."""

    policy: RetryPolicy
    started: float
    attempt: int = 0
    _rng: random.Random = field(default_factory=random.Random)

    # -- budget -------------------------------------------------------

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds left in the overall budget (None = unbounded)."""
        if self.policy.deadline_s is None:
            return None
        now = now if now is not None else time.monotonic()
        return self.policy.deadline_s - (now - self.started)

    def attempt_timeout(self, now: Optional[float] = None) -> Optional[float]:
        """The timeout for the next attempt: per-attempt cap clipped to
        the remaining budget.  Raises :class:`RetryBudgetExceeded` if
        the budget is already spent."""
        left = self.remaining(now)
        if left is not None and left <= 0:
            raise RetryBudgetExceeded(
                f"deadline budget of {self.policy.deadline_s}s exhausted "
                f"after {self.attempt} attempt(s)"
            )
        per = self.policy.attempt_timeout_s
        if left is None:
            return per
        return left if per is None else min(per, left)

    # -- attempts -----------------------------------------------------

    def more_attempts(self) -> bool:
        """True while another attempt is allowed by ``attempts``."""
        return self.attempt < self.policy.attempts

    def begin_attempt(self) -> int:
        """Record the start of an attempt; returns its 1-based number."""
        self.attempt += 1
        return self.attempt

    def next_backoff(self, now: Optional[float] = None) -> float:
        """The jittered sleep before the next attempt, clipped to the
        remaining budget.  Raises :class:`RetryBudgetExceeded` when the
        budget cannot fund any further sleep + attempt."""
        exponent = max(0, self.attempt - 1)
        nominal = min(
            self.policy.max_backoff_s,
            self.policy.base_backoff_s * (self.policy.multiplier**exponent),
        )
        if self.policy.jitter > 0.0 and nominal > 0.0:
            floor = nominal * (1.0 - self.policy.jitter)
            nominal = floor + self._rng.random() * (nominal - floor)
        left = self.remaining(now)
        if left is not None:
            if left <= 0:
                raise RetryBudgetExceeded(
                    f"deadline budget of {self.policy.deadline_s}s exhausted "
                    f"after {self.attempt} attempt(s)"
                )
            nominal = min(nominal, left)
        return nominal


class CircuitBreaker:
    """Client-side fail-fast after consecutive transport failures.

    States: *closed* (normal), *open* (every :meth:`before_attempt`
    raises :class:`CircuitOpenError` until ``reset_timeout_s`` passes),
    *half-open* (one probe allowed; success closes, failure re-opens).
    """

    def __init__(self, failure_threshold: int = 5, reset_timeout_s: float = 1.0):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        return self._state

    def before_attempt(self, now: Optional[float] = None) -> None:
        """Gate an attempt; raises :class:`CircuitOpenError` when open."""
        now = now if now is not None else time.monotonic()
        if self._state == "open":
            if now - self._opened_at >= self.reset_timeout_s:
                self._state = "half-open"
                obs.inc("serve.breaker_half_open")
            else:
                obs.inc("serve.breaker_fast_fail")
                raise CircuitOpenError(
                    f"circuit open after {self._failures} consecutive failures"
                )

    def record_success(self) -> None:
        if self._state != "closed":
            obs.inc("serve.breaker_closed")
        self._failures = 0
        self._state = "closed"

    def record_failure(self, now: Optional[float] = None) -> None:
        now = now if now is not None else time.monotonic()
        self._failures += 1
        if self._state == "half-open" or self._failures >= self.failure_threshold:
            if self._state != "open":
                obs.inc("serve.breaker_opened")
            self._state = "open"
            self._opened_at = now


class RestartBackoff:
    """Restart pacing for supervised processes: jittered exponential
    backoff plus a flap detector.

    The retry classes above pace *calls*; this paces *process
    restarts*.  Each :meth:`next_delay` records one restart and returns
    how long the supervisor should wait before spawning the
    replacement: exponential in the current consecutive-restart streak,
    jittered (seeded, so supervised soaks stay reproducible), and
    capped.  A worker that keeps dying — ``flap_threshold`` restarts
    inside ``flap_window_s`` — is *flapping*: the backoff jumps to
    ``hold_down_s`` so a crash-looping worker cannot monopolise the
    supervisor, but it is never abandoned (the cluster must heal when
    the cause clears).  :meth:`note_stable` resets the streak once the
    process has stayed up past ``stable_after_s``.

    All methods accept an explicit ``now`` so tests drive a fake clock.
    """

    def __init__(
        self,
        base_s: float = 0.05,
        multiplier: float = 2.0,
        max_s: float = 2.0,
        jitter: float = 0.5,
        flap_window_s: float = 30.0,
        flap_threshold: int = 5,
        hold_down_s: float = 5.0,
        stable_after_s: float = 5.0,
        seed: int = 0,
    ):
        if base_s < 0 or max_s < 0 or hold_down_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        if flap_threshold < 1:
            raise ValueError(f"flap_threshold must be >= 1, got {flap_threshold}")
        self.base_s = float(base_s)
        self.multiplier = float(multiplier)
        self.max_s = float(max_s)
        self.jitter = float(jitter)
        self.flap_window_s = float(flap_window_s)
        self.flap_threshold = int(flap_threshold)
        self.hold_down_s = float(hold_down_s)
        self.stable_after_s = float(stable_after_s)
        self._rng = random.Random(seed * 0x9E3779B1 + 0x5F)
        self._streak = 0
        self._recent: list = []  # restart timestamps inside the window
        self.restarts = 0  #: lifetime restart count (telemetry)

    @property
    def flapping(self) -> bool:
        """True while the flap detector holds the worker down."""
        return len(self._recent) >= self.flap_threshold

    def next_delay(self, now: Optional[float] = None) -> float:
        """Record one restart; return the pre-spawn delay in seconds."""
        now = now if now is not None else time.monotonic()
        self.restarts += 1
        self._streak += 1
        self._recent = [t for t in self._recent if now - t < self.flap_window_s]
        self._recent.append(now)
        nominal = min(
            self.max_s, self.base_s * (self.multiplier ** (self._streak - 1))
        )
        if self.flapping:
            obs.inc("cluster.flaps_detected")
            nominal = max(nominal, self.hold_down_s)
        if self.jitter > 0.0 and nominal > 0.0:
            floor = nominal * (1.0 - self.jitter)
            nominal = floor + self._rng.random() * (nominal - floor)
        return nominal

    def note_stable(self, uptime_s: float, now: Optional[float] = None) -> None:
        """Report the process has been healthy for ``uptime_s`` seconds;
        past ``stable_after_s`` the streak (and flap window) reset."""
        if uptime_s >= self.stable_after_s:
            self._streak = 0
            now = now if now is not None else time.monotonic()
            self._recent = [t for t in self._recent if now - t < self.flap_window_s]
            if not self.flapping:
                self._recent.clear()
