"""``repro.serve`` — the streaming trace-serving subsystem.

The batch CLI materialises whole traces; this package serves the same
transcoders as *online* components, the paper's per-cycle FSM view
(Figure 1) lifted to a network service:

* :mod:`~repro.serve.protocol` — versioned newline-JSON frames, typed
  error codes (``busy`` backpressure, ``desync`` detection, ...);
* :mod:`~repro.serve.engine` — per-connection sessions holding live
  transcoder FSM state, a bounded request queue with 429-style
  rejection, micro-batching of concurrent one-shot encodes into the
  vectorized kernels, per-request deadlines, and a process-pool offload
  path for CPU-bound sweeps;
* :mod:`~repro.serve.server` — the asyncio TCP frontend
  (``repro serve``);
* :mod:`~repro.serve.client` — the asyncio client and the
  ``repro client`` CLI's backend.

Everything is instrumented through :mod:`repro.obs` (``serve.*``
request counters, latency histograms, queue-depth gauges) and rendered
by ``repro report``.
"""

from .client import EncodeStream, TraceClient
from .engine import ServeEngine, Session
from .protocol import (
    ERROR_CODES,
    KNOWN_OPS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)
from .server import TraceServer

__all__ = [
    "ERROR_CODES",
    "EncodeStream",
    "KNOWN_OPS",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeEngine",
    "Session",
    "TraceClient",
    "TraceServer",
]
