"""``repro.serve`` — the streaming trace-serving subsystem.

The batch CLI materialises whole traces; this package serves the same
transcoders as *online* components, the paper's per-cycle FSM view
(Figure 1) lifted to a network service:

* :mod:`~repro.serve.protocol` — versioned newline-JSON frames, typed
  error codes (``busy`` backpressure, ``desync`` detection, ...);
* :mod:`~repro.serve.engine` — per-connection sessions holding live
  transcoder FSM state, a bounded request queue with 429-style
  rejection, micro-batching of concurrent one-shot encodes into the
  vectorized kernels, per-request deadlines, and a process-pool offload
  path for CPU-bound sweeps;
* :mod:`~repro.serve.server` — the asyncio TCP frontend
  (``repro serve``);
* :mod:`~repro.serve.client` — the asyncio client and the
  ``repro client`` CLI's backend;
* :mod:`~repro.serve.retry` — the unified retry discipline
  (:class:`RetryPolicy` with an overall deadline budget,
  :class:`CircuitBreaker` fail-fast);
* :mod:`~repro.serve.recovery` — :class:`ResilientTraceClient`, the
  auto-resuming client (reconnect → ``resume`` from an exported
  checkpoint → bit-exact tail replay);
* :mod:`~repro.serve.chaos` — the seeded chaos proxy enforcing
  :mod:`repro.faults.transport` fault models on live connections;
* :mod:`~repro.serve.soak` — the ``repro chaos-soak`` acceptance
  harness: N resilient clients through the chaos proxy, byte-equality
  against the fault-free library path, clean-drain check;
* :mod:`~repro.serve.ring` / :mod:`~repro.serve.ports` — consistent
  hashing and the shared ``--port 0`` announce/parse contract;
* :mod:`~repro.serve.supervisor` — worker process supervision:
  spawn ``repro serve --port 0`` subprocesses, heartbeat them, restart
  crashes and wedges with jittered backoff and flap detection;
* :mod:`~repro.serve.cluster` — the sharded cluster (``repro
  cluster``): a protocol-v2 router in front of N supervised workers,
  consistent-hash placement, crash failover and planned migration by
  checkpoint-export → ``resume`` → verified replay;
* :mod:`~repro.serve.loadgen` — ``repro loadgen``: open/closed-loop
  arrival disciplines with feed-latency percentiles;
* :mod:`~repro.serve.cluster_soak` — the ``repro cluster-soak``
  acceptance harness: SIGKILL workers mid-stream, demand bit-exact
  streams, ≥1 failover, ≥1 planned migration and a clean drain.

Everything is instrumented through :mod:`repro.obs` (``serve.*``
request counters, latency histograms, queue-depth gauges, ``chaos.*``
injection counters) and rendered by ``repro report``.
"""

from .chaos import ChaosProxy, ChaosStats, ChaosTransport
from .client import EncodeStream, FrameCorruptionError, TraceClient
from .cluster import ClusterRouter, TraceCluster
from .engine import ServeEngine, Session
from .loadgen import LoadgenConfig, LoadgenReport, run_loadgen
from .protocol import (
    ERROR_CODES,
    IDEMPOTENT_OPS,
    KNOWN_OPS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)
from .recovery import ResilientTraceClient
from .retry import (
    CircuitBreaker,
    CircuitOpenError,
    RestartBackoff,
    RetryBudgetExceeded,
    RetryPolicy,
)
from .ring import HashRing
from .server import TraceServer
from .supervisor import WorkerSpec, WorkerSupervisor

__all__ = [
    "ChaosProxy",
    "ChaosStats",
    "ChaosTransport",
    "CircuitBreaker",
    "CircuitOpenError",
    "ClusterRouter",
    "ERROR_CODES",
    "EncodeStream",
    "FrameCorruptionError",
    "HashRing",
    "IDEMPOTENT_OPS",
    "KNOWN_OPS",
    "LoadgenConfig",
    "LoadgenReport",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResilientTraceClient",
    "RestartBackoff",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "ServeEngine",
    "Session",
    "TraceClient",
    "TraceCluster",
    "TraceServer",
    "WorkerSpec",
    "WorkerSupervisor",
    "run_loadgen",
]
