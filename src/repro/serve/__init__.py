"""``repro.serve`` — the streaming trace-serving subsystem.

The batch CLI materialises whole traces; this package serves the same
transcoders as *online* components, the paper's per-cycle FSM view
(Figure 1) lifted to a network service:

* :mod:`~repro.serve.protocol` — versioned newline-JSON frames, typed
  error codes (``busy`` backpressure, ``desync`` detection, ...);
* :mod:`~repro.serve.engine` — per-connection sessions holding live
  transcoder FSM state, a bounded request queue with 429-style
  rejection, micro-batching of concurrent one-shot encodes into the
  vectorized kernels, per-request deadlines, and a process-pool offload
  path for CPU-bound sweeps;
* :mod:`~repro.serve.server` — the asyncio TCP frontend
  (``repro serve``);
* :mod:`~repro.serve.client` — the asyncio client and the
  ``repro client`` CLI's backend;
* :mod:`~repro.serve.retry` — the unified retry discipline
  (:class:`RetryPolicy` with an overall deadline budget,
  :class:`CircuitBreaker` fail-fast);
* :mod:`~repro.serve.recovery` — :class:`ResilientTraceClient`, the
  auto-resuming client (reconnect → ``resume`` from an exported
  checkpoint → bit-exact tail replay);
* :mod:`~repro.serve.chaos` — the seeded chaos proxy enforcing
  :mod:`repro.faults.transport` fault models on live connections;
* :mod:`~repro.serve.soak` — the ``repro chaos-soak`` acceptance
  harness: N resilient clients through the chaos proxy, byte-equality
  against the fault-free library path, clean-drain check.

Everything is instrumented through :mod:`repro.obs` (``serve.*``
request counters, latency histograms, queue-depth gauges, ``chaos.*``
injection counters) and rendered by ``repro report``.
"""

from .chaos import ChaosProxy, ChaosStats, ChaosTransport
from .client import EncodeStream, FrameCorruptionError, TraceClient
from .engine import ServeEngine, Session
from .protocol import (
    ERROR_CODES,
    IDEMPOTENT_OPS,
    KNOWN_OPS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)
from .recovery import ResilientTraceClient
from .retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryBudgetExceeded,
    RetryPolicy,
)
from .server import TraceServer

__all__ = [
    "ChaosProxy",
    "ChaosStats",
    "ChaosTransport",
    "CircuitBreaker",
    "CircuitOpenError",
    "ERROR_CODES",
    "EncodeStream",
    "FrameCorruptionError",
    "IDEMPOTENT_OPS",
    "KNOWN_OPS",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResilientTraceClient",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "ServeEngine",
    "Session",
    "TraceClient",
    "TraceServer",
]
