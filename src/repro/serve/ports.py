"""Central ``--port 0`` handling: announce and parse bound ports.

Every serving CLI binds with ``--port 0`` in tests and soaks so runs
never race on a fixed port — which only works if the *actually bound*
port is discoverable.  The contract, shared by ``repro serve`` and
``repro cluster`` (and by the worker supervisor, which spawns ``repro
serve --port 0`` subprocesses and must learn where each worker
landed):

* the serving process prints exactly one line per listening socket on
  **stdout**, in the stable format of :func:`format_listening`::

      repro serve: listening on 127.0.0.1:40001
      repro cluster: listening on 127.0.0.1:40002
      repro cluster: worker 0 listening on 127.0.0.1:40003

* consumers parse it back with :func:`parse_listening` (scripts,
  tests) or :func:`read_listening` (the supervisor, against the
  child's stdout pipe, under a deadline so a worker that wedges before
  binding is detected rather than awaited forever).

Nothing else the serving CLIs write goes to stdout — logging is all
stderr — so ``head -n1`` style consumption is safe.
"""

from __future__ import annotations

import asyncio
import re
import sys
from typing import Optional, TextIO, Tuple

__all__ = [
    "format_listening",
    "announce_listening",
    "parse_listening",
    "read_listening",
]

#: The stable stdout line format.  ``component`` is free-form text
#: (``serve``, ``cluster``, ``cluster: worker 3``) — the parser only
#: anchors on the prefix and the trailing ``host:port``.
_LISTENING_RE = re.compile(
    r"^repro (?P<component>.+?): listening on (?P<host>\S+):(?P<port>\d+)\s*$"
)


def format_listening(component: str, host: str, port: int) -> str:
    """The one stable stdout line announcing a bound socket."""
    return f"repro {component}: listening on {host}:{port}"


def announce_listening(
    component: str, host: str, port: int, stream: Optional[TextIO] = None
) -> None:
    """Print (and flush) the announcement line on ``stream``/stdout."""
    out = stream if stream is not None else sys.stdout
    print(format_listening(component, host, port), file=out, flush=True)


def parse_listening(line: str) -> Optional[Tuple[str, str, int]]:
    """Parse one announcement line; ``(component, host, port)`` or None."""
    match = _LISTENING_RE.match(line.strip())
    if match is None:
        return None
    return match.group("component"), match.group("host"), int(match.group("port"))


async def read_listening(
    reader: asyncio.StreamReader, timeout_s: float = 20.0
) -> Tuple[str, str, int]:
    """Read a child's stdout until its announcement line appears.

    Skips unrelated lines (a child may be wrapped by tooling that
    prints first).  Raises ``TimeoutError`` when nothing parseable
    arrives within ``timeout_s`` — the supervisor treats that as a
    failed spawn — and ``ConnectionError`` on EOF (the child died
    before binding; its exit code tells the rest of the story).
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while True:
        remaining = deadline - loop.time()
        if remaining <= 0:
            raise TimeoutError(
                f"no listening announcement within {timeout_s:.1f}s"
            )
        try:
            line = await asyncio.wait_for(reader.readline(), remaining)
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"no listening announcement within {timeout_s:.1f}s"
            ) from None
        if not line:
            raise ConnectionError("child exited before announcing its port")
        parsed = parse_listening(line.decode("utf-8", "replace"))
        if parsed is not None:
            return parsed
