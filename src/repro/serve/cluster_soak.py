"""The cluster soak: SIGKILL workers mid-stream, demand bit-exactness.

``repro cluster-soak`` is the fault-tolerance acceptance harness of the
sharded serving cluster — the cluster-level sibling of ``repro
chaos-soak`` (which attacks the *network* of a single server; this one
attacks the *processes* of a cluster).  A real
:class:`~repro.serve.cluster.TraceCluster` (supervised worker
subprocesses, consistent-hash router) is driven by N concurrent
:class:`~repro.serve.recovery.ResilientTraceClient` streams while the
soak:

1. feeds every stream up to a phase boundary (placements settle,
   checkpoints exported);
2. **SIGKILLs** the worker hosting stream 0's session — a real
   ``kill -9``, not a mock — and keeps feeding immediately, so the
   victim's sessions crash-fail-over to ring neighbours while the
   supervisor restarts the corpse with backoff;
3. waits for the cluster to heal, then runs a **planned rebalance**:
   the failed-over sessions migrate home by checkpoint-export →
   ``resume`` — the bit-exact planned path, counted separately from
   failovers;
4. feeds the remainder and closes every stream.

The verdict (exit code of ``repro cluster-soak``) is PASS only if:

* **every** stream's wire states are byte-identical to the fault-free
  library encode of its trace, *and* decode back to the original
  values (kills may delay data, never damage it);
* at least one **crash failover** was observed (the kill must have
  actually hurt);
* at least one **planned migration** was observed (the rebalance must
  have actually moved something home);
* the cluster **drains cleanly**: every worker — including the
  restarted victim — exits 0 on SIGTERM within the budget.

Determinism: traces, placement (consistent hashing), restart backoff
jitter and the kill *target selection* (the worker hosting stream 0)
are all functions of the seed and the phase structure.  The only
scheduler-dependent freedom is *which* ops land during the victim's
downtime, and the invariants are written to hold for every
interleaving: failovers trigger on first touch of a dead worker, and
an untouched session still migrates home in phase 3.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from .. import obs
from ..coding.specs import parse_coder_spec
from ..corpus.workload import WorkloadSource, parse_workload_source
from ..traces.trace import BusTrace
from ..workloads import locality_trace
from .cluster import TraceCluster
from .recovery import ResilientTraceClient
from .retry import CircuitBreaker, RestartBackoff, RetryPolicy
from .supervisor import WorkerSpec

__all__ = ["ClusterSoakConfig", "ClusterSoakReport", "run_cluster_soak"]

log = obs.get_logger("serve.cluster_soak")

#: Coder specs cycled across streams (stateful families included, so a
#: failover genuinely reconstructs non-trivial FSM state).
SOAK_SPECS = ("window8", "fcm", "stride4", "transition", "invert", "last")


@dataclass(frozen=True)
class ClusterSoakConfig:
    """One cluster-soak scenario; deterministic given ``seed``."""

    workers: int = 4
    clients: int = 8
    cycles: int = 480  #: trace length per stream
    chunk: int = 40  #: values per streamed chunk
    width: int = 16
    seed: int = 0
    kills: int = 1  #: SIGKILL rounds (each kills one hosting worker)
    checkpoint_every: int = 2  #: client checkpoint-export cadence
    queue_limit: int = 64
    batch_limit: int = 16
    request_timeout_s: float = 20.0
    attempt_timeout_s: float = 5.0
    deadline_s: float = 120.0  #: client per-chunk overall budget
    heartbeat_interval_s: float = 0.2
    liveness_deadline_s: float = 2.0
    drain_timeout_s: float = 15.0
    heal_timeout_s: float = 60.0  #: budget for the victim to come back
    obs_dir: str = ""  #: per-worker telemetry base (CI artifacts); "" = off
    #: Workload-source spec (``corpus:DIR``/``gen:...``/``suite:...``).
    #: When set, each client streams one deterministic member of the
    #: source population (client ``i`` gets stream ``i``), the source's
    #: bus width overrides ``width``, and per-stream cycle counts come
    #: from the source instead of ``cycles`` — the soak's bit-exactness
    #: verdict then covers corpus replay end to end.
    corpus: str = ""

    def __post_init__(self):
        if self.workers < 2:
            raise ValueError(
                f"workers must be >= 2 for a failover soak, got {self.workers}"
            )
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.cycles < self.chunk or self.chunk < 1:
            raise ValueError(
                f"need 1 <= chunk ({self.chunk}) <= cycles ({self.cycles})"
            )

    @classmethod
    def quick(cls, seed: int = 0) -> "ClusterSoakConfig":
        """The CI profile: 3 workers, shorter traces, one kill."""
        return cls(workers=3, clients=6, cycles=240, chunk=20, seed=seed)


@dataclass
class ClusterSoakReport:
    """What the soak observed; :attr:`ok` is the verdict."""

    ok: bool = False
    workers: int = 0
    clients: int = 0
    streams_verified: int = 0
    kills: int = 0
    failovers: int = 0
    migrations: int = 0
    worker_restarts: int = 0
    resumes: int = 0
    reconnects: int = 0
    drain: Dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0
    failures: List[str] = field(default_factory=list)
    #: Observability artifacts written under ``config.obs_dir`` (CI
    #: uploads them): ``top`` (the live `repro top --once --json`
    #: document), ``stitched_trace`` (cross-process Chrome trace),
    #: ``flight_dumps`` (worker id -> crash journal path).
    artifacts: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "workers": self.workers,
            "clients": self.clients,
            "streams_verified": self.streams_verified,
            "kills": self.kills,
            "failovers": self.failovers,
            "migrations": self.migrations,
            "worker_restarts": self.worker_restarts,
            "resumes": self.resumes,
            "reconnects": self.reconnects,
            "drain": dict(self.drain),
            "elapsed_s": round(self.elapsed_s, 3),
            "failures": list(self.failures),
            "artifacts": dict(self.artifacts),
        }


@dataclass
class _SoakStream:
    """One client stream and its ground truth."""

    index: int
    spec: str
    trace: BusTrace
    client: ResilientTraceClient
    states: List[int] = field(default_factory=list)

    @property
    def values(self) -> List[int]:
        return [int(v) for v in self.trace.values]


def _build_streams(
    config: ClusterSoakConfig, port: int, source: "WorkloadSource | None"
) -> List[_SoakStream]:
    width = source.width if source is not None else config.width
    streams = []
    for index in range(config.clients):
        spec = SOAK_SPECS[index % len(SOAK_SPECS)]
        if source is not None:
            trace = source.for_stream(index).trace()
        else:
            trace = locality_trace(
                config.cycles,
                width=config.width,
                seed=config.seed * 1000 + 17 * index + 5,
            )
        client = ResilientTraceClient(
            "127.0.0.1",
            port,
            coder=spec,
            width=width,
            retry=RetryPolicy(
                attempts=24,
                base_backoff_s=0.02,
                max_backoff_s=0.5,
                attempt_timeout_s=config.attempt_timeout_s,
                deadline_s=config.deadline_s,
                seed=config.seed * 31 + index,
            ),
            breaker=CircuitBreaker(failure_threshold=12, reset_timeout_s=0.1),
            checkpoint_every=config.checkpoint_every,
        )
        streams.append(_SoakStream(index=index, spec=spec, trace=trace, client=client))
    return streams


async def _feed_phase(
    streams: List[_SoakStream], config: ClusterSoakConfig, start: int, stop: int
) -> None:
    """Feed chunks [start, stop) of every stream concurrently."""

    async def one(stream: _SoakStream) -> None:
        values = stream.values
        for turn in range(start, stop):
            lo = turn * config.chunk
            if lo >= len(values):
                return
            chunk = values[lo : lo + config.chunk]
            stream.states.extend(await stream.client.feed(chunk))

    await asyncio.gather(*(one(s) for s in streams))


def _verify_streams(
    streams: List[_SoakStream], config: ClusterSoakConfig, report: ClusterSoakReport
) -> None:
    """Every stream must encode AND decode bit-identically."""
    for stream in streams:
        coder = parse_coder_spec(stream.spec, stream.trace.width)
        expected = coder.encode_trace(stream.trace)
        produced = np.asarray(stream.states, dtype=np.uint64)
        if not np.array_equal(produced, expected.values):
            report.failures.append(
                f"stream {stream.index} ({stream.spec}): wire states diverged "
                f"from the fault-free encode"
            )
            continue
        decoded = coder.decode_trace(
            BusTrace(produced, expected.width, f"soak{stream.index}")
        )
        if not np.array_equal(decoded.values, stream.trace.values):
            report.failures.append(
                f"stream {stream.index} ({stream.spec}): decoded values diverged "
                f"from the original trace"
            )
            continue
        report.streams_verified += 1


async def _emit_live_artifacts(
    cluster: TraceCluster, config: ClusterSoakConfig, report: ClusterSoakReport
) -> None:
    """``repro top --once --json`` against the live soak cluster.

    Runs while the (healed) cluster is still serving — the document
    proves the ``telemetry`` op fans out and merges under real load —
    and lands as ``<obs_dir>/top.json`` for the CI artifact upload.
    Best-effort: a probe failure is logged, never a soak failure.
    """
    from .telemetry import fetch_telemetry, summarize_telemetry

    try:
        response = await fetch_telemetry("127.0.0.1", cluster.port)
    except (ConnectionError, OSError, RuntimeError, asyncio.TimeoutError) as exc:
        log.warning(
            "live telemetry probe failed", extra=obs.fields(error=str(exc))
        )
        return
    summary = summarize_telemetry(response)
    os.makedirs(config.obs_dir, exist_ok=True)
    path = os.path.join(config.obs_dir, "top.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    report.artifacts["top"] = path


def _emit_postmortem_artifacts(
    cluster: TraceCluster, config: ClusterSoakConfig, report: ClusterSoakReport
) -> None:
    """Stitched cross-process trace + harvested flight journals.

    Runs after the drain: SIGTERMed workers have exported their
    ``spans.jsonl`` on the way out, and the SIGKILLed generations left
    their flight journals behind.  The router (this process) exports
    its own spans under ``<obs_dir>/router`` so the stitch covers both
    sides of every hop.
    """
    flight: Dict[str, str] = {}
    for worker_id in sorted(cluster.supervisor.handles):
        dump = cluster.supervisor.flight_dump(worker_id)
        if dump:
            flight[worker_id] = dump
    if flight:
        report.artifacts["flight_dumps"] = flight
    try:
        obs.export_run(obs_dir=os.path.join(config.obs_dir, "router"))
    except OSError as exc:  # pragma: no cover - disk trouble
        log.warning("router span export failed", extra=obs.fields(error=str(exc)))
    from ..obs.stitch import stitch_run

    out = os.path.join(config.obs_dir, "trace-stitched.json")
    try:
        result = stitch_run([config.obs_dir], out)
    except FileNotFoundError:
        # REPRO_OBS=0: nobody exported spans; nothing to stitch.
        return
    report.artifacts["stitched_trace"] = out
    log.info(
        "stitched trace written",
        extra=obs.fields(
            out=out, spans=result["spans"], flows=result["flows"]
        ),
    )


async def run_cluster_soak(config: ClusterSoakConfig) -> ClusterSoakReport:
    """Run one cluster-soak scenario; returns its report."""
    report = ClusterSoakReport(workers=config.workers, clients=config.clients)
    t0 = time.monotonic()
    cluster = TraceCluster(
        workers=config.workers,
        port=0,
        spec=WorkerSpec(
            queue_limit=config.queue_limit,
            batch_limit=config.batch_limit,
            request_timeout_s=config.request_timeout_s,
            drain_timeout_s=config.drain_timeout_s,
            obs_dir=config.obs_dir or None,
        ),
        checkpoint_every=config.checkpoint_every,
        rebalance_on_join=False,  # the soak rebalances at a known point
        heartbeat_interval_s=config.heartbeat_interval_s,
        liveness_deadline_s=config.liveness_deadline_s,
        backoff_factory=lambda index: RestartBackoff(
            base_s=0.05, max_s=0.5, seed=config.seed * 8191 + index
        ),
        seed=config.seed,
    )
    await cluster.start()
    source = parse_workload_source(config.corpus) if config.corpus else None
    streams = _build_streams(config, cluster.port, source)
    # Per-stream cycle counts may differ under --corpus; phase the soak
    # on the longest stream (shorter ones simply finish feeding early).
    longest = max(len(stream.trace) for stream in streams)
    total_chunks = (longest + config.chunk - 1) // config.chunk
    # Phase boundaries: kills happen at evenly spaced chunk indices,
    # each followed by a feeding phase over the wreckage, a heal wait
    # and a planned rebalance.
    rounds = max(1, config.kills)
    boundaries = [
        (r + 1) * total_chunks // (rounds + 1) for r in range(rounds)
    ]
    try:
        position = 0
        for boundary in boundaries:
            await _feed_phase(streams, config, position, boundary)
            position = boundary
            # Aim the kill where it hurts: the worker hosting stream
            # 0's session (fall back to any session's host).
            victim = None
            for stream in streams:
                session = stream.client.session_id
                if session is not None:
                    victim = cluster.worker_of(session)
                    if victim is not None:
                        break
            if victim is None:  # pragma: no cover - every stream idle
                victim = cluster.supervisor.live_workers()[0]
            pid = cluster.kill_worker(victim)
            report.kills += 1
            log.info(
                "worker killed",
                extra=obs.fields(worker=victim, pid=pid, at_chunk=boundary),
            )
            # Feed straight through the crash: the victim's sessions
            # fail over to ring neighbours on first touch.
            heal_boundary = min(total_chunks, boundary + max(1, total_chunks // (2 * (rounds + 1))))
            await _feed_phase(streams, config, position, heal_boundary)
            position = heal_boundary
            # Let the supervisor finish the restart, then bring the
            # failed-over sessions home — the planned path.
            await cluster.supervisor.wait_all_up(config.heal_timeout_s)
            report.migrations += await cluster.rebalance()
        await _feed_phase(streams, config, position, total_chunks)
        if config.obs_dir:
            await _emit_live_artifacts(cluster, config, report)
        # Harvest per-session failover counters before close removes
        # them (migrations were already counted via rebalance()).
        for session in cluster.router.sessions.values():
            report.failovers += session.failovers
        for stream in streams:
            await stream.client.close()
            report.resumes += stream.client.resumes
            report.reconnects += stream.client.reconnects
    except BaseException as exc:
        report.failures.append(f"soak aborted: {type(exc).__name__}: {exc}")
        for stream in streams:
            try:
                await stream.client.close()
            except Exception:  # noqa: BLE001 - already failing
                pass
        if not isinstance(exc, Exception):
            raise  # cancellation etc.; the finally still drains
    finally:
        report.worker_restarts = cluster.supervisor.restarts()
        report.drain = await cluster.stop(config.drain_timeout_s)
    if config.obs_dir:
        _emit_postmortem_artifacts(cluster, config, report)
    _verify_streams(streams, config, report)
    report.elapsed_s = time.monotonic() - t0
    obs.inc("cluster.soak_runs")

    # -- the verdict ---------------------------------------------------
    if report.streams_verified != config.clients:
        report.failures.append(
            f"only {report.streams_verified}/{config.clients} streams verified "
            f"bit-identical end to end"
        )
    if report.failovers < 1:
        report.failures.append(
            "no crash failover observed (the SIGKILL did not disturb any "
            "session — kill targeting is broken)"
        )
    if report.migrations < 1:
        report.failures.append(
            "no planned migration observed (rebalance moved nothing home)"
        )
    if not report.drain.get("clean"):
        report.failures.append(f"cluster did not drain cleanly: {report.drain}")
    report.ok = not report.failures
    log.info(
        "cluster soak finished",
        extra=obs.fields(
            ok=report.ok,
            verified=report.streams_verified,
            kills=report.kills,
            failovers=report.failovers,
            migrations=report.migrations,
            restarts=report.worker_restarts,
            elapsed_s=round(report.elapsed_s, 2),
        ),
    )
    return report
