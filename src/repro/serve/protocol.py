"""The wire protocol of the trace-serving frontend.

Two frame types share one connection; the first byte disambiguates.

**Newline-delimited JSON** (the universal fallback, and the only
framing for control ops):

* every **request** is one JSON object on one line:
  ``{"v": 1, "id": 7, "op": "encode", ...op fields...}``;
* every **response** echoes the request id:
  ``{"v": 1, "id": 7, "ok": true, ...result fields...}`` or
  ``{"v": 1, "id": 7, "ok": false,
  "error": {"code": "busy", "message": "..."}}``.

**Length-prefixed binary bulk frames** (negotiated, optional): the hot
ops move integer vectors — tens of thousands of bus words per chunk —
and ``json.dumps`` on every word is the measured single-core throughput
ceiling.  A binary bulk frame is the *same* message with its one bulk
field (``values`` or ``states``) lifted out of the JSON and carried as
a raw little-endian ``uint64`` word array:

====================  ==============================================
bytes                 meaning
====================  ==============================================
``[0]``               magic ``0xB5`` (a JSON frame always starts with
                      ``{`` or whitespace, so the first byte is
                      unambiguous)
``[1:5]``             ``H``: header length, ``<u32``
``[5:9]``             ``W``: payload word count, ``<u32``
``[9:13]``            CRC-32 of header+payload (``zlib.crc32``)
``[13:13+H]``         compact-JSON header: the message minus its bulk
                      field, plus ``"_bulk": "<field name>"``
``[13+H:13+H+8*W]``   the bulk field: ``W`` little-endian ``uint64``
                      words, ``np.frombuffer``-able with zero copies
====================  ==============================================

Rationale for JSON staying the default and the fallback: JSON carries
the integer payloads exactly at any width up to the library's 64-bit
ceiling, keeps the protocol inspectable with ``nc``/``socat`` and
trivially implementable from any language, and needs no negotiation.
The binary frame exists purely as a bulk fast path, under strict
fallback rules:

* **negotiated per connection**: a client sends binary frames only
  after a ``hello`` response advertising ``"binary_frames": true``
  (the capability rides the existing version handshake; ``v`` stays
  2 — a v2 peer that never negotiates never sees a binary frame);
* **bulk ops only**: exactly the ops in :data:`BULK_REQUEST_FIELDS`
  (``encode``/``decode``/``encode_trace``) may use it, and only for
  their designated bulk field; every control op (``open``, ``hello``,
  ``checkpoint``, ``resume``, ...) is always newline-JSON;
* **responses mirror the request**: a binary request gets its bulk
  response field (:data:`BULK_RESPONSE_FIELDS`) as a binary frame,
  a JSON request is always answered in JSON — so a non-negotiating
  client can never receive a frame it cannot parse;
* **corruption is loud**: the CRC-32 makes any in-flight corruption a
  deterministic ``bad-request`` decode error (raw word arrays have no
  syntax to trip over, so without the checksum a flipped payload bit
  would be *silent* data corruption — the one failure mode the chaos
  harness must never allow);
* **framing stays robust**: readers trust the length prefix only up to
  :data:`MAX_FRAME_BYTES`; an oversized or truncated binary frame is a
  connection-fatal framing error, exactly like an overlong line.

The protocol is versioned from day one: a request whose ``v`` is
missing or unknown is rejected with ``unsupported-version`` *before*
the op is interpreted, so the frame format can evolve without silent
misdecoding.

Requests may carry an optional ``trace`` field — ``{"id": <trace id>,
"parent": "<pid>:<span id>"}`` — propagating distributed trace context
across hops (client → router → worker).  It is *advisory* telemetry:
:func:`validate_request` never inspects it, peers that predate it (or
run with ``REPRO_OBS=0``) ignore it, and it never changes a response
byte.  Each receiving hop opens a span whose ``parent`` is the sender's
span ref, which ``repro trace-stitch`` merges into one cross-process
Chrome trace.

Error codes (the ``error.code`` field) are a closed, stable set — see
:data:`ERROR_CODES`.  ``busy`` is the backpressure signal (the HTTP-429
analogue): the server's bounded request queue was full (or the request
was shed under overload), the client should back off and retry.
``desync`` reports a detected encoder/decoder divergence on a resilient
session; whether the session recovered is carried in the response's
``recovered`` field.  ``shutdown`` answers requests the server had
admitted but abandoned while draining; ``stale_checkpoint`` and
``resume_mismatch`` are the session-resumption failure modes (see the
idempotency table below).

Idempotency and delivery semantics (the retry contract)
-------------------------------------------------------

A client that loses a connection (or times out an attempt) cannot know
whether the server executed the request.  Whether *resending* is safe
depends on the op — the table below is the contract
:meth:`repro.serve.client.TraceClient.call_with_retry` enforces and the
README's "Failure semantics" section documents:

===============  ===========  ==============================================
op               idempotent   why / what a blind resend does
===============  ===========  ==============================================
``hello``        yes          pure read of server capabilities
``health``       yes          pure read of liveness/load (the heartbeat op)
``telemetry``    yes          pure read of metrics/span state (live snapshot)
``encode_trace`` yes          stateless pure function of the request body
``sweep``        yes          pure function (workload sim is deterministic)
``open``         no           each call creates a fresh session (leaks state)
``encode``       no           advances the session encoder FSM (double-apply)
``decode``       no           advances the session decoder FSM (double-apply)
``checkpoint``   no           allocates a new checkpoint id per call
``restore``      no           rewinds the live FSM (racing resends reorder)
``resume``       no           each call materialises a new session
``close``        no           a resend can close a successor session's id
===============  ===========  ==============================================

Two consequences:

* **at-least-once** delivery is only offered for the idempotent ops —
  retrying them on transport errors or attempt timeouts is always safe;
* every other op is **at-most-once** per connection.  The recovery path
  for session ops is *not* resending: it is reconnect → ``resume`` from
  the last exported checkpoint → replay the tail, which turns the whole
  non-idempotent stream into an idempotent replay (the FSMs are
  deterministic, so the replayed states are bit-identical).  A ``busy``
  answer is special: the server rejected the request *before admitting
  it*, so resending after ``busy`` can never double-apply — ``busy`` is
  retryable for every op.

This module is pure data-plane: framing, validation and typed errors.
It owns no sockets and no sessions, which keeps it unit-testable and
shared verbatim by server and client.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import struct
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "BINARY_MAGIC",
    "BINARY_PREFIX_BYTES",
    "BULK_KEY",
    "BULK_REQUEST_FIELDS",
    "BULK_RESPONSE_FIELDS",
    "ERROR_CODES",
    "ERR_BAD_REQUEST",
    "ERR_BUSY",
    "ERR_DESYNC",
    "ERR_INTERNAL",
    "ERR_NO_SESSION",
    "ERR_RESUME_MISMATCH",
    "ERR_SHUTDOWN",
    "ERR_STALE_CHECKPOINT",
    "ERR_TIMEOUT",
    "ERR_UNKNOWN_OP",
    "ERR_UNSUPPORTED_VERSION",
    "IDEMPOTENT_OPS",
    "KNOWN_OPS",
    "ProtocolError",
    "decode_any_frame",
    "decode_binary_frame",
    "decode_frame",
    "encode_binary_frame",
    "encode_frame",
    "error_response",
    "int_list_field",
    "is_binary_frame",
    "ok_response",
    "read_frame",
    "request",
    "response_bulk_field",
    "state_digest",
    "trace_context",
    "validate_request",
]

#: Bump on any incompatible change to the frame format or op semantics.
#: v2 added session resumption (the ``resume`` op, ``checkpoint`` with
#: ``export``) and the ``stale_checkpoint`` / ``resume_mismatch`` /
#: ``shutdown`` error codes.
PROTOCOL_VERSION = 2

#: Hard per-frame ceiling (also the server's StreamReader limit): a
#: 64 Ki-cycle chunk of 20-digit words is ~1.4 MB, so 8 MB leaves
#: comfortable headroom while bounding a malicious/buggy client.
#: Binary frames obey the same ceiling — ``readexactly`` bypasses the
#: StreamReader limit, so :func:`read_frame` enforces it on the
#: declared length *before* reading the body.
MAX_FRAME_BYTES = 8 * 1024 * 1024

# -- binary bulk framing (see the module docstring's wire table) ------

#: First byte of a binary bulk frame.  A JSON frame's first byte is
#: ``{`` (0x7B) or ASCII whitespace, never 0xB5.
BINARY_MAGIC = 0xB5

#: ``<BIII``: magic, header length, payload word count, CRC-32.
_BINARY_PREFIX = struct.Struct("<BIII")

#: Size of the fixed binary prefix (13 bytes).  Fault injectors must
#: never mutate these bytes: corrupting the length fields desyncs the
#: *framing* (the analogue of eating a newline), which is a different
#: failure class from corrupting the *content* (caught by the CRC).
BINARY_PREFIX_BYTES = _BINARY_PREFIX.size

#: Header key naming which message field rides as the raw payload.
BULK_KEY = "_bulk"

#: The only (op → request field) pairs allowed in binary frames.
BULK_REQUEST_FIELDS = {
    "encode": "values",
    "decode": "states",
    "encode_trace": "values",
}

#: The response bulk field mirrored back for each bulk op.
BULK_RESPONSE_FIELDS = {
    "encode": "states",
    "decode": "values",
    "encode_trace": "states",
}

# -- error codes (closed set; part of the protocol contract) ----------

ERR_BAD_REQUEST = "bad-request"  #: malformed frame or op fields
ERR_UNSUPPORTED_VERSION = "unsupported-version"  #: bad/missing ``v``
ERR_UNKNOWN_OP = "unknown-op"  #: ``op`` not in :data:`KNOWN_OPS`
ERR_NO_SESSION = "no-session"  #: session id unknown to this connection
ERR_BUSY = "busy"  #: bounded queue full — back off and retry (HTTP 429)
ERR_TIMEOUT = "timeout"  #: request exceeded the server's deadline
ERR_DESYNC = "desync"  #: resilient session detected FSM divergence
ERR_INTERNAL = "internal"  #: unexpected server-side failure
ERR_SHUTDOWN = "shutdown"  #: server is draining — the request was NOT
#: applied (rejected at the door or abandoned pre-apply); retry elsewhere
ERR_STALE_CHECKPOINT = "stale_checkpoint"  #: exported state unusable
#: (wrong format/protocol, or the integrity digest does not verify)
ERR_RESUME_MISMATCH = "resume_mismatch"  #: well-formed state disagrees
#: with the requested coder spec / width / policy (or the FSM refuses it)

ERROR_CODES = (
    ERR_BAD_REQUEST,
    ERR_UNSUPPORTED_VERSION,
    ERR_UNKNOWN_OP,
    ERR_NO_SESSION,
    ERR_BUSY,
    ERR_TIMEOUT,
    ERR_DESYNC,
    ERR_INTERNAL,
    ERR_SHUTDOWN,
    ERR_STALE_CHECKPOINT,
    ERR_RESUME_MISMATCH,
)

#: The operations of protocol version 2.
KNOWN_OPS = (
    "hello",  # server identification + capabilities
    "health",  # liveness + load snapshot (the supervisor's heartbeat op;
    #            deliberately cheap so a wedged engine fails it loudly)
    "open",  # create a per-connection streaming session
    "encode",  # advance a session's encoder FSM by one chunk
    "decode",  # advance a session's decoder FSM by one chunk
    "checkpoint",  # snapshot a session's FSM state server-side
    #                (``export: true`` additionally returns the state
    #                 as a portable, digest-sealed wire blob)
    "restore",  # rewind a session to a named checkpoint
    "resume",  # materialise a NEW session from an exported checkpoint
    #            blob (the reconnect path: connection loss killed the
    #            old session; resume restores its FSMs bit-exactly)
    "close",  # drop a session (and its checkpoints)
    "encode_trace",  # one-shot stateless encode (micro-batched)
    "sweep",  # CPU-bound savings sweep (process-pool offloaded)
    "telemetry",  # live metrics snapshot + span delta + load gauges
    #               (read-only; the cluster router fans it out to every
    #                worker and merges the snapshots — `repro top` rides it)
)

#: Ops that are safe to blindly resend after an *ambiguous* failure
#: (transport error or attempt timeout) — see the idempotency table in
#: the module docstring.  ``busy`` rejections are retryable for every
#: op regardless, because the server never admitted the request.
IDEMPOTENT_OPS = frozenset({"hello", "health", "telemetry", "encode_trace", "sweep"})


def trace_context(message: Dict[str, Any]) -> Tuple[str, str]:
    """Extract ``(trace_id, parent_ref)`` from a request's ``trace`` field.

    Tolerant by design — the field is advisory telemetry, so anything
    missing or malformed degrades to ``("", "")`` rather than an error
    (a broken trace header must never fail a request).
    """
    trace = message.get("trace")
    if not isinstance(trace, dict):
        return "", ""
    trace_id = trace.get("id")
    parent = trace.get("parent")
    return (
        trace_id if isinstance(trace_id, str) else "",
        parent if isinstance(parent, str) else "",
    )


class ProtocolError(ValueError):
    """A typed protocol violation; carries the wire ``error.code``.

    Subclasses ``ValueError`` so the CLI's existing error funnel turns
    client-side protocol failures into the one-line ``repro: error:``
    contract without new plumbing.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.args[0]}"


# -- framing ----------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """JSON fallback for numpy payloads reaching a JSON frame.

    A message built for the binary path may fall back to JSON (peer did
    not negotiate, or the op errored before the bulk field was used);
    word arrays then serialise as plain integer lists, bit-identically.
    """
    if isinstance(value, np.ndarray):
        return [int(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    raise TypeError(f"{type(value).__name__} is not JSON-serialisable")


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialise one message as a compact JSON line (trailing ``\\n``)."""
    return (
        json.dumps(
            message, separators=(",", ":"), ensure_ascii=True, default=_jsonable
        )
        + "\n"
    ).encode("ascii")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict.

    Raises :class:`ProtocolError` (``bad-request``) on anything that is
    not a single JSON object.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ERR_BAD_REQUEST, f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            ERR_BAD_REQUEST, f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def is_binary_frame(raw: bytes) -> bool:
    """True iff ``raw`` starts with the binary bulk frame magic byte."""
    return len(raw) > 0 and raw[0] == BINARY_MAGIC


def encode_binary_frame(
    message: Dict[str, Any],
    bulk_field: str,
    words: Union[Sequence[int], np.ndarray],
) -> bytes:
    """Serialise one message as a binary bulk frame.

    ``words`` becomes the raw little-endian ``uint64`` payload; the rest
    of ``message`` (any existing ``bulk_field`` entry excluded) becomes
    the JSON header, tagged with ``BULK_KEY`` so the decoder knows which
    field to rehydrate.
    """
    arr = np.ascontiguousarray(np.asarray(words, dtype=np.uint64))
    if arr.ndim != 1:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"bulk payload must be 1-D, got shape {arr.shape}"
        )
    payload = arr.astype("<u8", copy=False).tobytes()
    header = {k: v for k, v in message.items() if k != bulk_field}
    header[BULK_KEY] = bulk_field
    header_bytes = json.dumps(
        header, separators=(",", ":"), ensure_ascii=True, default=_jsonable
    ).encode("ascii")
    total = BINARY_PREFIX_BYTES + len(header_bytes) + len(payload)
    if total > MAX_FRAME_BYTES:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"frame of {total} bytes exceeds {MAX_FRAME_BYTES}"
        )
    crc = zlib.crc32(payload, zlib.crc32(header_bytes))
    prefix = _BINARY_PREFIX.pack(BINARY_MAGIC, len(header_bytes), len(arr), crc)
    return prefix + header_bytes + payload


def decode_binary_frame(raw: bytes) -> Dict[str, Any]:
    """Parse a binary bulk frame into a message dict.

    The bulk field comes back as a read-only 1-D ``uint64`` ndarray
    viewing the frame's payload bytes directly (``np.frombuffer`` —
    zero copies).  The ``BULK_KEY`` marker is kept in the message so
    transport layers can tell the request arrived binary.

    Raises :class:`ProtocolError` (``bad-request``) on bad magic, bad
    lengths, CRC mismatch, or an undecodable header.
    """
    if len(raw) > MAX_FRAME_BYTES:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"frame of {len(raw)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    if len(raw) < BINARY_PREFIX_BYTES:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"binary frame truncated at {len(raw)} bytes"
        )
    magic, header_len, word_count, crc = _BINARY_PREFIX.unpack_from(raw)
    if magic != BINARY_MAGIC:
        raise ProtocolError(ERR_BAD_REQUEST, f"bad binary frame magic {magic:#x}")
    expected = BINARY_PREFIX_BYTES + header_len + 8 * word_count
    if len(raw) != expected:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"binary frame is {len(raw)} bytes but declares {expected}",
        )
    if zlib.crc32(raw[BINARY_PREFIX_BYTES:]) != crc:
        raise ProtocolError(
            ERR_BAD_REQUEST, "binary frame failed its CRC-32 (corrupted in flight)"
        )
    header_end = BINARY_PREFIX_BYTES + header_len
    try:
        message = json.loads(raw[BINARY_PREFIX_BYTES:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"undecodable binary frame header: {exc}"
        ) from None
    if not isinstance(message, dict):
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"binary frame header must be a JSON object, got {type(message).__name__}",
        )
    bulk_field = message.get(BULK_KEY)
    if not isinstance(bulk_field, str) or not bulk_field:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"binary frame header lacks a {BULK_KEY!r} field name"
        )
    message[bulk_field] = np.frombuffer(raw, dtype="<u8", count=word_count, offset=header_end)
    return message


def decode_any_frame(raw: bytes) -> Dict[str, Any]:
    """Parse a received frame of either framing (dispatch on byte 0)."""
    if is_binary_frame(raw):
        return decode_binary_frame(raw)
    return decode_frame(raw)


def response_bulk_field(message: Dict[str, Any]) -> Optional[str]:
    """The response field that may ride binary, given a *request* dict."""
    return BULK_RESPONSE_FIELDS.get(message.get("op"))  # type: ignore[arg-type]


async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one frame of either framing from a stream.

    Returns the raw frame bytes (newline included for JSON frames), or
    ``b""`` at EOF on a frame boundary.  Binary frames are reassembled
    with ``readexactly`` — the payload may legally contain ``0x0A``
    bytes, so ``readline`` alone would mis-split them.  Raises
    :class:`ProtocolError` on an oversized or mid-frame-truncated
    binary frame (framing is lost; callers must drop the connection),
    and lets ``readline``'s ``LimitOverrunError`` propagate for
    overlong JSON lines, as before.
    """
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError:
        return b""
    if first[0] != BINARY_MAGIC:
        if first == b"\n":  # blank keep-alive line
            return first
        return first + await reader.readline()
    rest = await reader.readexactly(BINARY_PREFIX_BYTES - 1)
    _, header_len, word_count, _ = _BINARY_PREFIX.unpack(first + rest)
    body_len = header_len + 8 * word_count
    if BINARY_PREFIX_BYTES + body_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"binary frame declares {BINARY_PREFIX_BYTES + body_len} bytes, "
            f"exceeding {MAX_FRAME_BYTES}",
        )
    try:
        body = await reader.readexactly(body_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"binary frame truncated mid-body ({len(exc.partial)}/{body_len} bytes)",
        ) from None
    return first + rest + body


# -- message constructors ---------------------------------------------


def request(op: str, request_id: int, **fields: Any) -> Dict[str, Any]:
    """Build a version-tagged request message."""
    message = {"v": PROTOCOL_VERSION, "id": request_id, "op": op}
    message.update(fields)
    return message


def ok_response(request_id: Optional[int], **fields: Any) -> Dict[str, Any]:
    """Build a success response echoing ``request_id``."""
    message: Dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True}
    message.update(fields)
    return message


def error_response(
    request_id: Optional[int], code: str, message: str, **fields: Any
) -> Dict[str, Any]:
    """Build an error response; ``code`` must be one of :data:`ERROR_CODES`."""
    assert code in ERROR_CODES, f"unregistered error code {code!r}"
    body: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    body.update(fields)
    return body


# -- validation -------------------------------------------------------


def validate_request(message: Dict[str, Any]) -> Tuple[str, int]:
    """Check version/id/op envelope; returns ``(op, request_id)``.

    Raises :class:`ProtocolError` with the precise error code, version
    first (an incompatible peer must learn that before anything else).
    """
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERR_UNSUPPORTED_VERSION,
            f"protocol version {version!r} not supported; this end speaks "
            f"{PROTOCOL_VERSION}",
        )
    request_id = message.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(ERR_BAD_REQUEST, f"request id must be an int, got {request_id!r}")
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError(ERR_BAD_REQUEST, "request has no 'op' field")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            ERR_UNKNOWN_OP, f"unknown op {op!r}; this server speaks {', '.join(KNOWN_OPS)}"
        )
    return op, request_id


def state_digest(state: Dict[str, Any]) -> str:
    """Integrity digest over an exported-checkpoint body.

    SHA-256 over the canonical (sorted-key, compact) JSON of ``state``
    with any existing ``digest`` field removed.  Both ends compute it
    the same way: the server seals exported checkpoints with it, and a
    ``resume`` whose blob does not verify is answered
    ``stale_checkpoint`` — a truncated or bit-flipped checkpoint must
    never be restored into live FSMs.
    """
    body = {k: v for k, v in state.items() if k != "digest"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def int_list_field(
    message: Dict[str, Any], key: str
) -> Union[List[int], np.ndarray]:
    """Extract a required bulk field (bus words / wire states).

    JSON frames deliver a list of ints, validated element-wise; binary
    frames deliver a ready 1-D ``uint64`` ndarray, which is passed
    through untouched (the dtype already guarantees non-negative
    64-bit integers, so per-element checks would only burn the cycles
    the binary path exists to save).
    """
    values = message.get(key)
    if isinstance(values, np.ndarray):
        if values.ndim != 1 or values.dtype != np.uint64:
            raise ProtocolError(
                ERR_BAD_REQUEST, f"{key!r} must be a 1-D uint64 array"
            )
        return values
    if not isinstance(values, list):
        raise ProtocolError(ERR_BAD_REQUEST, f"{key!r} must be a list of integers")
    for v in values:
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise ProtocolError(
                ERR_BAD_REQUEST, f"{key!r} must contain non-negative integers, got {v!r}"
            )
    return values
