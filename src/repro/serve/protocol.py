"""The wire protocol of the trace-serving frontend.

Newline-delimited JSON, version-tagged, symmetric request/response:

* every **request** is one JSON object on one line:
  ``{"v": 1, "id": 7, "op": "encode", ...op fields...}``;
* every **response** echoes the request id:
  ``{"v": 1, "id": 7, "ok": true, ...result fields...}`` or
  ``{"v": 1, "id": 7, "ok": false,
  "error": {"code": "busy", "message": "..."}}``.

Why JSON-per-line: the payloads are integer vectors (bus words), which
JSON carries exactly at any width up to the library's 64-bit ceiling,
and a line-oriented framing keeps the protocol inspectable with
``nc``/``socat`` and trivially implementable from any language.  The
protocol is versioned from day one: a request whose ``v`` is missing or
unknown is rejected with ``unsupported-version`` *before* the op is
interpreted, so the frame format can evolve without silent
misdecoding.

Error codes (the ``error.code`` field) are a closed, stable set — see
:data:`ERROR_CODES`.  ``busy`` is the backpressure signal (the HTTP-429
analogue): the server's bounded request queue was full (or the request
was shed under overload), the client should back off and retry.
``desync`` reports a detected encoder/decoder divergence on a resilient
session; whether the session recovered is carried in the response's
``recovered`` field.  ``shutdown`` answers requests the server had
admitted but abandoned while draining; ``stale_checkpoint`` and
``resume_mismatch`` are the session-resumption failure modes (see the
idempotency table below).

Idempotency and delivery semantics (the retry contract)
-------------------------------------------------------

A client that loses a connection (or times out an attempt) cannot know
whether the server executed the request.  Whether *resending* is safe
depends on the op — the table below is the contract
:meth:`repro.serve.client.TraceClient.call_with_retry` enforces and the
README's "Failure semantics" section documents:

===============  ===========  ==============================================
op               idempotent   why / what a blind resend does
===============  ===========  ==============================================
``hello``        yes          pure read of server capabilities
``health``       yes          pure read of liveness/load (the heartbeat op)
``encode_trace`` yes          stateless pure function of the request body
``sweep``        yes          pure function (workload sim is deterministic)
``open``         no           each call creates a fresh session (leaks state)
``encode``       no           advances the session encoder FSM (double-apply)
``decode``       no           advances the session decoder FSM (double-apply)
``checkpoint``   no           allocates a new checkpoint id per call
``restore``      no           rewinds the live FSM (racing resends reorder)
``resume``       no           each call materialises a new session
``close``        no           a resend can close a successor session's id
===============  ===========  ==============================================

Two consequences:

* **at-least-once** delivery is only offered for the idempotent ops —
  retrying them on transport errors or attempt timeouts is always safe;
* every other op is **at-most-once** per connection.  The recovery path
  for session ops is *not* resending: it is reconnect → ``resume`` from
  the last exported checkpoint → replay the tail, which turns the whole
  non-idempotent stream into an idempotent replay (the FSMs are
  deterministic, so the replayed states are bit-identical).  A ``busy``
  answer is special: the server rejected the request *before admitting
  it*, so resending after ``busy`` can never double-apply — ``busy`` is
  retryable for every op.

This module is pure data-plane: framing, validation and typed errors.
It owns no sockets and no sessions, which keeps it unit-testable and
shared verbatim by server and client.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ERROR_CODES",
    "ERR_BAD_REQUEST",
    "ERR_BUSY",
    "ERR_DESYNC",
    "ERR_INTERNAL",
    "ERR_NO_SESSION",
    "ERR_RESUME_MISMATCH",
    "ERR_SHUTDOWN",
    "ERR_STALE_CHECKPOINT",
    "ERR_TIMEOUT",
    "ERR_UNKNOWN_OP",
    "ERR_UNSUPPORTED_VERSION",
    "IDEMPOTENT_OPS",
    "KNOWN_OPS",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_response",
    "int_list_field",
    "ok_response",
    "request",
    "state_digest",
    "validate_request",
]

#: Bump on any incompatible change to the frame format or op semantics.
#: v2 added session resumption (the ``resume`` op, ``checkpoint`` with
#: ``export``) and the ``stale_checkpoint`` / ``resume_mismatch`` /
#: ``shutdown`` error codes.
PROTOCOL_VERSION = 2

#: Hard per-frame ceiling (also the server's StreamReader limit): a
#: 64 Ki-cycle chunk of 20-digit words is ~1.4 MB, so 8 MB leaves
#: comfortable headroom while bounding a malicious/buggy client.
MAX_FRAME_BYTES = 8 * 1024 * 1024

# -- error codes (closed set; part of the protocol contract) ----------

ERR_BAD_REQUEST = "bad-request"  #: malformed frame or op fields
ERR_UNSUPPORTED_VERSION = "unsupported-version"  #: bad/missing ``v``
ERR_UNKNOWN_OP = "unknown-op"  #: ``op`` not in :data:`KNOWN_OPS`
ERR_NO_SESSION = "no-session"  #: session id unknown to this connection
ERR_BUSY = "busy"  #: bounded queue full — back off and retry (HTTP 429)
ERR_TIMEOUT = "timeout"  #: request exceeded the server's deadline
ERR_DESYNC = "desync"  #: resilient session detected FSM divergence
ERR_INTERNAL = "internal"  #: unexpected server-side failure
ERR_SHUTDOWN = "shutdown"  #: server is draining — the request was NOT
#: applied (rejected at the door or abandoned pre-apply); retry elsewhere
ERR_STALE_CHECKPOINT = "stale_checkpoint"  #: exported state unusable
#: (wrong format/protocol, or the integrity digest does not verify)
ERR_RESUME_MISMATCH = "resume_mismatch"  #: well-formed state disagrees
#: with the requested coder spec / width / policy (or the FSM refuses it)

ERROR_CODES = (
    ERR_BAD_REQUEST,
    ERR_UNSUPPORTED_VERSION,
    ERR_UNKNOWN_OP,
    ERR_NO_SESSION,
    ERR_BUSY,
    ERR_TIMEOUT,
    ERR_DESYNC,
    ERR_INTERNAL,
    ERR_SHUTDOWN,
    ERR_STALE_CHECKPOINT,
    ERR_RESUME_MISMATCH,
)

#: The operations of protocol version 2.
KNOWN_OPS = (
    "hello",  # server identification + capabilities
    "health",  # liveness + load snapshot (the supervisor's heartbeat op;
    #            deliberately cheap so a wedged engine fails it loudly)
    "open",  # create a per-connection streaming session
    "encode",  # advance a session's encoder FSM by one chunk
    "decode",  # advance a session's decoder FSM by one chunk
    "checkpoint",  # snapshot a session's FSM state server-side
    #                (``export: true`` additionally returns the state
    #                 as a portable, digest-sealed wire blob)
    "restore",  # rewind a session to a named checkpoint
    "resume",  # materialise a NEW session from an exported checkpoint
    #            blob (the reconnect path: connection loss killed the
    #            old session; resume restores its FSMs bit-exactly)
    "close",  # drop a session (and its checkpoints)
    "encode_trace",  # one-shot stateless encode (micro-batched)
    "sweep",  # CPU-bound savings sweep (process-pool offloaded)
)

#: Ops that are safe to blindly resend after an *ambiguous* failure
#: (transport error or attempt timeout) — see the idempotency table in
#: the module docstring.  ``busy`` rejections are retryable for every
#: op regardless, because the server never admitted the request.
IDEMPOTENT_OPS = frozenset({"hello", "health", "encode_trace", "sweep"})


class ProtocolError(ValueError):
    """A typed protocol violation; carries the wire ``error.code``.

    Subclasses ``ValueError`` so the CLI's existing error funnel turns
    client-side protocol failures into the one-line ``repro: error:``
    contract without new plumbing.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.args[0]}"


# -- framing ----------------------------------------------------------


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialise one message as a compact JSON line (trailing ``\\n``)."""
    return (
        json.dumps(message, separators=(",", ":"), ensure_ascii=True) + "\n"
    ).encode("ascii")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict.

    Raises :class:`ProtocolError` (``bad-request``) on anything that is
    not a single JSON object.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ERR_BAD_REQUEST, f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            ERR_BAD_REQUEST, f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


# -- message constructors ---------------------------------------------


def request(op: str, request_id: int, **fields: Any) -> Dict[str, Any]:
    """Build a version-tagged request message."""
    message = {"v": PROTOCOL_VERSION, "id": request_id, "op": op}
    message.update(fields)
    return message


def ok_response(request_id: Optional[int], **fields: Any) -> Dict[str, Any]:
    """Build a success response echoing ``request_id``."""
    message: Dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True}
    message.update(fields)
    return message


def error_response(
    request_id: Optional[int], code: str, message: str, **fields: Any
) -> Dict[str, Any]:
    """Build an error response; ``code`` must be one of :data:`ERROR_CODES`."""
    assert code in ERROR_CODES, f"unregistered error code {code!r}"
    body: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    body.update(fields)
    return body


# -- validation -------------------------------------------------------


def validate_request(message: Dict[str, Any]) -> Tuple[str, int]:
    """Check version/id/op envelope; returns ``(op, request_id)``.

    Raises :class:`ProtocolError` with the precise error code, version
    first (an incompatible peer must learn that before anything else).
    """
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERR_UNSUPPORTED_VERSION,
            f"protocol version {version!r} not supported; this end speaks "
            f"{PROTOCOL_VERSION}",
        )
    request_id = message.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(ERR_BAD_REQUEST, f"request id must be an int, got {request_id!r}")
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError(ERR_BAD_REQUEST, "request has no 'op' field")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            ERR_UNKNOWN_OP, f"unknown op {op!r}; this server speaks {', '.join(KNOWN_OPS)}"
        )
    return op, request_id


def state_digest(state: Dict[str, Any]) -> str:
    """Integrity digest over an exported-checkpoint body.

    SHA-256 over the canonical (sorted-key, compact) JSON of ``state``
    with any existing ``digest`` field removed.  Both ends compute it
    the same way: the server seals exported checkpoints with it, and a
    ``resume`` whose blob does not verify is answered
    ``stale_checkpoint`` — a truncated or bit-flipped checkpoint must
    never be restored into live FSMs.
    """
    body = {k: v for k, v in state.items() if k != "digest"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def int_list_field(message: Dict[str, Any], key: str) -> List[int]:
    """Extract a required list-of-ints field (bus words / wire states)."""
    values = message.get(key)
    if not isinstance(values, list):
        raise ProtocolError(ERR_BAD_REQUEST, f"{key!r} must be a list of integers")
    for v in values:
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise ProtocolError(
                ERR_BAD_REQUEST, f"{key!r} must contain non-negative integers, got {v!r}"
            )
    return values
