"""The wire protocol of the trace-serving frontend.

Newline-delimited JSON, version-tagged, symmetric request/response:

* every **request** is one JSON object on one line:
  ``{"v": 1, "id": 7, "op": "encode", ...op fields...}``;
* every **response** echoes the request id:
  ``{"v": 1, "id": 7, "ok": true, ...result fields...}`` or
  ``{"v": 1, "id": 7, "ok": false,
  "error": {"code": "busy", "message": "..."}}``.

Why JSON-per-line: the payloads are integer vectors (bus words), which
JSON carries exactly at any width up to the library's 64-bit ceiling,
and a line-oriented framing keeps the protocol inspectable with
``nc``/``socat`` and trivially implementable from any language.  The
protocol is versioned from day one: a request whose ``v`` is missing or
unknown is rejected with ``unsupported-version`` *before* the op is
interpreted, so the frame format can evolve without silent
misdecoding.

Error codes (the ``error.code`` field) are a closed, stable set — see
:data:`ERROR_CODES`.  ``busy`` is the backpressure signal (the HTTP-429
analogue): the server's bounded request queue was full, the client
should back off and retry.  ``desync`` reports a detected
encoder/decoder divergence on a resilient session; whether the session
recovered is carried in the response's ``recovered`` field.

This module is pure data-plane: framing, validation and typed errors.
It owns no sockets and no sessions, which keeps it unit-testable and
shared verbatim by server and client.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ERROR_CODES",
    "ERR_BAD_REQUEST",
    "ERR_BUSY",
    "ERR_DESYNC",
    "ERR_INTERNAL",
    "ERR_NO_SESSION",
    "ERR_TIMEOUT",
    "ERR_UNKNOWN_OP",
    "ERR_UNSUPPORTED_VERSION",
    "KNOWN_OPS",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_response",
    "int_list_field",
    "ok_response",
    "request",
    "validate_request",
]

#: Bump on any incompatible change to the frame format or op semantics.
PROTOCOL_VERSION = 1

#: Hard per-frame ceiling (also the server's StreamReader limit): a
#: 64 Ki-cycle chunk of 20-digit words is ~1.4 MB, so 8 MB leaves
#: comfortable headroom while bounding a malicious/buggy client.
MAX_FRAME_BYTES = 8 * 1024 * 1024

# -- error codes (closed set; part of the protocol contract) ----------

ERR_BAD_REQUEST = "bad-request"  #: malformed frame or op fields
ERR_UNSUPPORTED_VERSION = "unsupported-version"  #: bad/missing ``v``
ERR_UNKNOWN_OP = "unknown-op"  #: ``op`` not in :data:`KNOWN_OPS`
ERR_NO_SESSION = "no-session"  #: session id unknown to this connection
ERR_BUSY = "busy"  #: bounded queue full — back off and retry (HTTP 429)
ERR_TIMEOUT = "timeout"  #: request exceeded the server's deadline
ERR_DESYNC = "desync"  #: resilient session detected FSM divergence
ERR_INTERNAL = "internal"  #: unexpected server-side failure

ERROR_CODES = (
    ERR_BAD_REQUEST,
    ERR_UNSUPPORTED_VERSION,
    ERR_UNKNOWN_OP,
    ERR_NO_SESSION,
    ERR_BUSY,
    ERR_TIMEOUT,
    ERR_DESYNC,
    ERR_INTERNAL,
)

#: The operations of protocol version 1.
KNOWN_OPS = (
    "hello",  # server identification + capabilities
    "open",  # create a per-connection streaming session
    "encode",  # advance a session's encoder FSM by one chunk
    "decode",  # advance a session's decoder FSM by one chunk
    "checkpoint",  # snapshot a session's FSM state server-side
    "restore",  # rewind a session to a named checkpoint
    "close",  # drop a session (and its checkpoints)
    "encode_trace",  # one-shot stateless encode (micro-batched)
    "sweep",  # CPU-bound savings sweep (process-pool offloaded)
)


class ProtocolError(ValueError):
    """A typed protocol violation; carries the wire ``error.code``.

    Subclasses ``ValueError`` so the CLI's existing error funnel turns
    client-side protocol failures into the one-line ``repro: error:``
    contract without new plumbing.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.args[0]}"


# -- framing ----------------------------------------------------------


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialise one message as a compact JSON line (trailing ``\\n``)."""
    return (
        json.dumps(message, separators=(",", ":"), ensure_ascii=True) + "\n"
    ).encode("ascii")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict.

    Raises :class:`ProtocolError` (``bad-request``) on anything that is
    not a single JSON object.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ERR_BAD_REQUEST, f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            ERR_BAD_REQUEST, f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


# -- message constructors ---------------------------------------------


def request(op: str, request_id: int, **fields: Any) -> Dict[str, Any]:
    """Build a version-tagged request message."""
    message = {"v": PROTOCOL_VERSION, "id": request_id, "op": op}
    message.update(fields)
    return message


def ok_response(request_id: Optional[int], **fields: Any) -> Dict[str, Any]:
    """Build a success response echoing ``request_id``."""
    message: Dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True}
    message.update(fields)
    return message


def error_response(
    request_id: Optional[int], code: str, message: str, **fields: Any
) -> Dict[str, Any]:
    """Build an error response; ``code`` must be one of :data:`ERROR_CODES`."""
    assert code in ERROR_CODES, f"unregistered error code {code!r}"
    body: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    body.update(fields)
    return body


# -- validation -------------------------------------------------------


def validate_request(message: Dict[str, Any]) -> Tuple[str, int]:
    """Check version/id/op envelope; returns ``(op, request_id)``.

    Raises :class:`ProtocolError` with the precise error code, version
    first (an incompatible peer must learn that before anything else).
    """
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERR_UNSUPPORTED_VERSION,
            f"protocol version {version!r} not supported; this end speaks "
            f"{PROTOCOL_VERSION}",
        )
    request_id = message.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(ERR_BAD_REQUEST, f"request id must be an int, got {request_id!r}")
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError(ERR_BAD_REQUEST, "request has no 'op' field")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            ERR_UNKNOWN_OP, f"unknown op {op!r}; this server speaks {', '.join(KNOWN_OPS)}"
        )
    return op, request_id


def int_list_field(message: Dict[str, Any], key: str) -> List[int]:
    """Extract a required list-of-ints field (bus words / wire states)."""
    values = message.get(key)
    if not isinstance(values, list):
        raise ProtocolError(ERR_BAD_REQUEST, f"{key!r} must be a list of integers")
    for v in values:
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise ProtocolError(
                ERR_BAD_REQUEST, f"{key!r} must contain non-negative integers, got {v!r}"
            )
    return values
