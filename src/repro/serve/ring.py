"""Consistent hashing for session → worker placement.

Sessions are sharded across engine workers by consistent hashing on
the cluster session id.  The ring is the classic construction: each
worker contributes ``replicas`` points (SHA-256 of ``worker:replica``)
on a 64-bit circle; a key is owned by the first point clockwise of its
own hash.  Properties the cluster relies on:

* **stability** — placement is a pure function of (member set, key):
  two routers with the same live-worker view agree on every session's
  home, and a soak's placement is reproducible run to run;
* **minimal movement** — when a worker dies or (re)joins, only the
  keys in its arc move; everyone else stays put, which is what keeps a
  planned rebalance small;
* **spread** — ``replicas`` virtual nodes per worker keep the arcs
  even enough that N workers each take ~1/N of the sessions.

Members are plain strings (worker ids).  The ring is deliberately
synchronous and allocation-light: the router consults it on every
``open`` and during failover/rebalance, never across an await.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

__all__ = ["HashRing"]

#: Virtual nodes per member; 64 keeps the max/min arc ratio tight for
#: single-digit worker counts without measurable lookup cost.
DEFAULT_REPLICAS = 64


def _point(token: str) -> int:
    """64-bit position of a token on the circle."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over string member ids."""

    def __init__(self, replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []  # sorted (position, member)
        self._keys: List[int] = []  # positions only (bisect view)
        self._members: Dict[str, List[int]] = {}

    # -- membership ---------------------------------------------------

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def add(self, member: str) -> None:
        """Join a member (idempotent)."""
        if member in self._members:
            return
        positions = []
        for replica in range(self.replicas):
            position = _point(f"{member}:{replica}")
            bisect.insort(self._points, (position, member))
            positions.append(position)
        self._members[member] = positions
        self._keys = [p for p, _ in self._points]

    def remove(self, member: str) -> None:
        """Leave a member (idempotent)."""
        if member not in self._members:
            return
        del self._members[member]
        self._points = [(p, m) for p, m in self._points if m != member]
        self._keys = [p for p, _ in self._points]

    # -- lookup -------------------------------------------------------

    def lookup(self, key: str) -> Optional[str]:
        """The member owning ``key``, or None on an empty ring."""
        if not self._points:
            return None
        position = _point(key)
        index = bisect.bisect_right(self._keys, position)
        if index == len(self._points):
            index = 0  # wrap: first point clockwise of the top
        return self._points[index][1]

    def lookup_excluding(self, key: str, excluded: set) -> Optional[str]:
        """The owner of ``key`` among members not in ``excluded``.

        Walks clockwise from the key's own point, so the fallback
        owner is deterministic and, when the excluded member rejoins,
        the key's primary owner is unchanged.
        """
        if not self._points:
            return None
        position = _point(key)
        start = bisect.bisect_right(self._keys, position)
        n = len(self._points)
        for step in range(n):
            member = self._points[(start + step) % n][1]
            if member not in excluded:
                return member
        return None
