"""``repro top`` — live cluster RED metrics over the ``telemetry`` op.

The ``telemetry`` protocol op (idempotent, read-only) returns a metrics
snapshot from whatever answers it: a single ``repro serve`` engine, or
— the interesting case — a :class:`~repro.serve.cluster.ClusterRouter`,
which fans the probe out to every live worker and merges the snapshots
into one cluster-wide view with a per-worker breakdown.

This module turns that response into the two ``repro top`` outputs:

* **summary** (:func:`summarize_telemetry`) — a plain JSON document
  with per-op RED rows (request rate, error %, p50/p99 latency), the
  per-worker table, and headline gauges.  ``repro top --once --json``
  prints exactly this, which is what CI asserts against.
* **rendering** (:func:`render_top`) — the human tables, redrawn every
  ``--interval`` seconds in the polling loop (:func:`run_top`).

Rates need two samples: the polling loop diffs ``serve.requests``
counters between refreshes; one-shot mode falls back to the lifetime
mean (count / uptime).  Everything here is pure functions over the
response dict plus one thin fetch coroutine, so the summary logic is
testable without sockets.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Mapping, Optional

from .. import obs
from ..analysis.reporting import format_table
from ..obs.registry import estimate_quantile, parse_key
from .client import TraceClient

__all__ = [
    "fetch_telemetry",
    "summarize_telemetry",
    "render_top",
    "run_top",
]

log = obs.get_logger("serve.telemetry")


async def fetch_telemetry(
    host: str, port: int, span_limit: int = 0, timeout_s: float = 10.0
) -> Dict[str, Any]:
    """One ``telemetry`` round trip; raises on transport/protocol failure."""
    client = await TraceClient.connect(host, port)
    try:
        response = await asyncio.wait_for(
            client.request("telemetry", span_limit=span_limit), timeout_s
        )
    finally:
        await client.close()
    if not response.get("ok"):
        error = response.get("error") or {}
        raise RuntimeError(
            f"telemetry op failed: {error.get('code', '?')}: "
            f"{error.get('message', '?')}"
        )
    return response


def _hist_by_op(hists: Mapping[str, Any], name: str) -> Dict[str, Dict[str, Any]]:
    out: Dict[str, Dict[str, Any]] = {}
    for key, hist in hists.items():
        base, labels = parse_key(key)
        if base == name:
            out[labels.get("op", "?")] = hist
    return out


def _counter_by_op(counters: Mapping[str, Any], name: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, value in counters.items():
        base, labels = parse_key(key)
        if base == name:
            op = labels.get("op", "?")
            out[op] = out.get(op, 0.0) + float(value)
    return out


def _quantile_ms(hist: Optional[Mapping[str, Any]], q: float) -> Optional[float]:
    if not hist:
        return None
    value = estimate_quantile(hist, q)
    return None if value is None else round(value * 1e3, 3)


def summarize_telemetry(
    response: Mapping[str, Any],
    previous: Optional[Mapping[str, Any]] = None,
    interval_s: Optional[float] = None,
) -> Dict[str, Any]:
    """The ``repro top`` document from one ``telemetry`` response.

    ``previous``/``interval_s`` (the prior summary and the seconds since
    it) turn cumulative request counters into live rates; without them
    the rate column is the lifetime mean when uptime is known, else
    null.  The document is JSON-ready — ``--once --json`` prints it
    verbatim.
    """
    metrics = response.get("metrics") or {}
    counters = metrics.get("counters") or {}
    hists = metrics.get("hists") or {}
    gauges = response.get("gauges") or {}
    uptime = gauges.get("uptime_s")

    requests = _counter_by_op(counters, "serve.requests")
    errors = _counter_by_op(counters, "serve.request_errors")
    latency = _hist_by_op(hists, "serve.request_s")
    prev_ops = {
        row["op"]: row for row in (previous or {}).get("ops", [])
    }

    ops: List[Dict[str, Any]] = []
    for op in sorted(set(requests) | set(errors) | set(latency)):
        count = requests.get(op, 0.0)
        errs = errors.get(op, 0.0)
        rate: Optional[float] = None
        prev = prev_ops.get(op)
        if prev is not None and interval_s and interval_s > 0:
            rate = max(0.0, (count - float(prev.get("requests", 0)))) / interval_s
        elif isinstance(uptime, (int, float)) and uptime and uptime > 0:
            rate = count / float(uptime)
        ops.append(
            {
                "op": op,
                "requests": int(count),
                "errors": int(errs),
                "error_pct": round(100.0 * errs / count, 2) if count else 0.0,
                "rate_rps": round(rate, 2) if rate is not None else None,
                "p50_ms": _quantile_ms(latency.get(op), 0.50),
                "p99_ms": _quantile_ms(latency.get(op), 0.99),
            }
        )

    workers: List[Dict[str, Any]] = []
    spans_dropped_total = 0
    for worker_id in sorted(response.get("workers") or {}):
        entry = (response.get("workers") or {})[worker_id]
        telemetry = entry.get("telemetry") or {}
        wgauges = telemetry.get("gauges") or {}
        dropped = int((telemetry.get("spans") or {}).get("dropped") or 0)
        spans_dropped_total += dropped
        workers.append(
            {
                "worker": worker_id,
                "alive": bool(entry.get("alive")),
                "generation": entry.get("generation"),
                "breaker": entry.get("breaker"),
                "queue_depth": wgauges.get("queue_depth"),
                "sessions": wgauges.get("sessions"),
                "outstanding": wgauges.get("outstanding"),
                "batch_occupancy": wgauges.get("batch_occupancy"),
                "admitting": wgauges.get("admitting"),
                "spans_dropped": dropped,
                "flight_dump": entry.get("flight_dump"),
            }
        )

    return {
        "enabled": bool(response.get("enabled")),
        "gauges": dict(gauges),
        "ops": ops,
        "workers": workers,
        "spans_dropped": spans_dropped_total,
    }


def _fmt(value: Any, suffix: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}{suffix}"
    return f"{value}{suffix}"


def render_top(summary: Mapping[str, Any]) -> str:
    """Human tables for one summary (the polling loop's frame)."""
    sections: List[str] = []
    gauges = summary.get("gauges") or {}
    headline = ", ".join(
        f"{key}={_fmt(gauges[key])}"
        for key in (
            "uptime_s",
            "sessions",
            "workers_live",
            "workers_total",
            "queue_depth",
            "admitting",
        )
        if key in gauges
    )
    state = "obs ON" if summary.get("enabled") else "obs OFF (REPRO_OBS=0)"
    sections.append(f"repro top — {state}" + (f" — {headline}" if headline else ""))
    ops = summary.get("ops") or []
    if ops:
        sections.append(
            format_table(
                ["op", "requests", "rate r/s", "err %", "p50 ms", "p99 ms"],
                [
                    (
                        row["op"],
                        row["requests"],
                        _fmt(row["rate_rps"]),
                        _fmt(row["error_pct"]),
                        _fmt(row["p50_ms"]),
                        _fmt(row["p99_ms"]),
                    )
                    for row in ops
                ],
                title="per-op RED",
            )
        )
    workers = summary.get("workers") or []
    if workers:
        sections.append(
            format_table(
                [
                    "worker",
                    "alive",
                    "gen",
                    "breaker",
                    "queue",
                    "sessions",
                    "busy",
                    "dropped",
                ],
                [
                    (
                        row["worker"],
                        _fmt(row["alive"]),
                        _fmt(row["generation"]),
                        _fmt(row["breaker"]),
                        _fmt(row["queue_depth"]),
                        _fmt(row["sessions"]),
                        _fmt(row["batch_occupancy"]),
                        _fmt(row["spans_dropped"]),
                    )
                    for row in workers
                ],
                title="workers",
            )
        )
    if summary.get("spans_dropped"):
        sections.append(
            f"WARNING: {summary['spans_dropped']} spans dropped "
            "(ring full) — traces from this cluster have holes"
        )
    return "\n\n".join(sections)


async def run_top(
    host: str,
    port: int,
    interval_s: float = 2.0,
    once: bool = False,
    as_json: bool = False,
    iterations: Optional[int] = None,
) -> Dict[str, Any]:
    """The ``repro top`` loop; returns the last summary.

    ``once`` (or ``iterations=1``) does a single probe — with
    ``as_json`` that is the CI mode: one JSON document on stdout, exit.
    The polling mode clears the screen between frames like ``top``.
    """
    previous: Optional[Dict[str, Any]] = None
    summary: Dict[str, Any] = {}
    count = 0
    while True:
        response = await fetch_telemetry(host, port)
        summary = summarize_telemetry(
            response, previous=previous, interval_s=None if previous is None else interval_s
        )
        if as_json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            if not once and count > 0:
                print("\x1b[2J\x1b[H", end="")
            print(render_top(summary))
        count += 1
        if once or (iterations is not None and count >= iterations):
            return summary
        previous = summary
        await asyncio.sleep(interval_s)
