"""Load generator for a serving endpoint (``repro loadgen``).

Drives a ``repro serve`` or ``repro cluster`` front door with N
concurrent streaming sessions and measures per-chunk feed latency.
Two arrival disciplines, the classic pair:

* **closed-loop** — each stream feeds its next chunk the moment the
  previous one is acknowledged.  Offered load adapts to the server:
  this measures *capacity* (throughput at concurrency N) but hides
  queueing delay, because a slow server is offered less work.
* **open-loop** — chunk arrivals are a seeded Poisson process at
  ``rate`` chunks/s, assigned round-robin across the streams and
  queued per stream (a stream is a FIFO of its own chunks — session
  ops must stay ordered).  Offered load is *independent* of the
  server, so latency here includes the queueing that coordinated
  omission hides: this is the discipline that shows you saturation.

Latency lands twice: in a local reservoir (exact percentiles for the
run's own table) and in the ``cluster.loadgen_feed_s`` obs histogram,
so ``repro loadgen --obs-dir ... && repro report ...`` shows p50/p90/
p99 next to the router's ``cluster.*`` counters.

Feeds ride :class:`~repro.serve.recovery.ResilientTraceClient`, so the
generator keeps offering load straight through worker failovers — a
kill under load shows up as a latency tail, not a dead run.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import obs
from ..corpus.workload import WorkloadSource, parse_workload_source
from ..workloads import locality_trace
from .recovery import ResilientTraceClient
from .retry import CircuitBreaker, RetryPolicy

__all__ = ["LoadgenConfig", "LoadgenReport", "run_loadgen"]

log = obs.get_logger("serve.loadgen")

#: Coder specs cycled across streams (same diversity as the soaks).
LOADGEN_SPECS = ("window8", "fcm", "stride4", "transition", "invert", "last")


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation scenario (deterministic given ``seed``)."""

    host: str = "127.0.0.1"
    port: int = 7453
    mode: str = "closed"  #: "closed" or "open"
    streams: int = 8  #: concurrent sessions
    chunks: int = 50  #: chunks fed per stream
    chunk: int = 64  #: cycles per chunk
    width: int = 16
    rate: float = 200.0  #: open-loop arrivals per second (all streams)
    seed: int = 0
    checkpoint_every: int = 8
    attempt_timeout_s: float = 5.0
    deadline_s: float = 60.0
    #: Consecutive streams sharing one coder spec.  ``1`` cycles the
    #: spec per stream (maximum diversity); ``streams`` makes every
    #: session identical — the shape that lets the engine's micro-batch
    #: coalesce a whole drain into one columnar kernel call.
    sessions_per_spec: int = 1
    #: Negotiate binary bulk frames on every stream's connection.
    binary: bool = False
    #: Workload-source spec (``corpus:DIR``, ``gen:...``, ``suite:...``;
    #: see :mod:`repro.corpus.workload`).  When set, stream traffic
    #: comes from the source — its bus width overrides ``width`` and
    #: each stream's chunk count follows its own cycle count instead of
    #: ``chunks`` — so the generator drives realistic, reproducible
    #: populations instead of ad-hoc synthetic traces.
    corpus: str = ""

    def __post_init__(self):
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.streams < 1 or self.chunks < 1 or self.chunk < 1:
            raise ValueError("streams, chunks and chunk must all be >= 1")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.sessions_per_spec < 1:
            raise ValueError(
                f"sessions_per_spec must be >= 1, got {self.sessions_per_spec}"
            )


@dataclass
class LoadgenReport:
    """Throughput + latency summary of one run."""

    mode: str = "closed"
    streams: int = 0
    offered: int = 0  #: chunks the scenario set out to feed
    chunks_done: int = 0
    chunks_failed: int = 0
    cycles: int = 0
    elapsed_s: float = 0.0
    resumes: int = 0
    reconnects: int = 0
    latencies_s: List[float] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def throughput_cps(self) -> float:
        """Encoded cycles per second of wall time."""
        return self.cycles / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def quantile(self, q: float) -> float:
        """Exact sample quantile of feed latency (seconds)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "streams": self.streams,
            "offered": self.offered,
            "chunks_done": self.chunks_done,
            "chunks_failed": self.chunks_failed,
            "cycles": self.cycles,
            "elapsed_s": round(self.elapsed_s, 3),
            "throughput_cps": round(self.throughput_cps, 1),
            "latency_p50_ms": round(self.quantile(0.50) * 1e3, 3),
            "latency_p90_ms": round(self.quantile(0.90) * 1e3, 3),
            "latency_p99_ms": round(self.quantile(0.99) * 1e3, 3),
            "resumes": self.resumes,
            "reconnects": self.reconnects,
            "errors": list(self.errors),
        }


def _make_client(
    config: LoadgenConfig, index: int, width: int
) -> ResilientTraceClient:
    return ResilientTraceClient(
        config.host,
        config.port,
        coder=LOADGEN_SPECS[
            (index // config.sessions_per_spec) % len(LOADGEN_SPECS)
        ],
        width=width,
        retry=RetryPolicy(
            attempts=16,
            base_backoff_s=0.02,
            max_backoff_s=0.5,
            attempt_timeout_s=config.attempt_timeout_s,
            deadline_s=config.deadline_s,
            seed=config.seed * 37 + index,
        ),
        breaker=CircuitBreaker(failure_threshold=12, reset_timeout_s=0.1),
        checkpoint_every=config.checkpoint_every,
        binary=config.binary,
    )


def _chunks_for(
    config: LoadgenConfig, index: int, source: Optional[WorkloadSource]
) -> List[List[int]]:
    if source is not None:
        # Corpus/generator traffic: bounded-memory chunked reads, one
        # stream of the population per session (index wraps).
        return [
            [int(v) for v in part.values]
            for part in source.for_stream(index).chunks(config.chunk)
        ]
    trace = locality_trace(
        config.chunks * config.chunk,
        width=config.width,
        seed=config.seed * 1000 + 13 * index + 7,
    )
    values = [int(v) for v in trace.values]
    return [
        values[start : start + config.chunk]
        for start in range(0, len(values), config.chunk)
    ]


async def _feed_timed(
    client: ResilientTraceClient, chunk: List[int], report: LoadgenReport
) -> None:
    t0 = time.monotonic()
    try:
        await client.feed(chunk)
    except (ConnectionError, OSError, asyncio.TimeoutError, ValueError) as exc:
        report.chunks_failed += 1
        if len(report.errors) < 10:
            report.errors.append(f"{type(exc).__name__}: {exc}")
        return
    latency = time.monotonic() - t0
    report.chunks_done += 1
    report.cycles += len(chunk)
    report.latencies_s.append(latency)
    obs.observe("cluster.loadgen_feed_s", latency)


async def _run_closed(
    config: LoadgenConfig,
    report: LoadgenReport,
    per_stream: List[List[List[int]]],
    width: int,
) -> None:
    async def one_stream(index: int) -> None:
        client = _make_client(config, index, width)
        try:
            for chunk in per_stream[index]:
                await _feed_timed(client, chunk, report)
        finally:
            await client.close()
            report.resumes += client.resumes
            report.reconnects += client.reconnects

    await asyncio.gather(*(one_stream(i) for i in range(config.streams)))


async def _run_open(
    config: LoadgenConfig,
    report: LoadgenReport,
    per_stream: List[List[List[int]]],
    width: int,
) -> None:
    """Poisson arrivals at ``rate``, round-robin over per-stream FIFOs."""
    rng = random.Random(config.seed * 0x9E3779B1 + 0xA5)
    queues: List["asyncio.Queue[Optional[List[int]]]"] = [
        asyncio.Queue() for _ in range(config.streams)
    ]

    async def one_stream(index: int) -> None:
        client = _make_client(config, index, width)
        try:
            while True:
                chunk = await queues[index].get()
                if chunk is None:
                    return
                await _feed_timed(client, chunk, report)
        finally:
            await client.close()
            report.resumes += client.resumes
            report.reconnects += client.reconnects

    workers = [
        asyncio.ensure_future(one_stream(i)) for i in range(config.streams)
    ]
    arrivals = [
        (turn, index)
        for turn in range(max(len(chunks) for chunks in per_stream))
        for index in range(config.streams)
        if turn < len(per_stream[index])
    ]
    for turn, index in arrivals:
        await asyncio.sleep(rng.expovariate(config.rate))
        await queues[index].put(per_stream[index][turn])
    for queue in queues:
        await queue.put(None)
    await asyncio.gather(*workers)


async def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Run one scenario; returns its :class:`LoadgenReport`."""
    source = parse_workload_source(config.corpus) if config.corpus else None
    width = source.width if source is not None else config.width
    per_stream = [
        _chunks_for(config, i, source) for i in range(config.streams)
    ]
    report = LoadgenReport(
        mode=config.mode,
        streams=config.streams,
        offered=sum(len(chunks) for chunks in per_stream),
    )
    t0 = time.monotonic()
    if config.mode == "closed":
        await _run_closed(config, report, per_stream, width)
    else:
        await _run_open(config, report, per_stream, width)
    report.elapsed_s = time.monotonic() - t0
    obs.inc("cluster.loadgen_chunks", report.chunks_done)
    obs.set_gauge("cluster.loadgen_throughput_cps", report.throughput_cps)
    if report.latencies_s:
        # Exact sample percentiles ride along as gauges so
        # `repro report` can show the bucketed `cluster.loadgen_feed_s`
        # estimates next to ground truth and flag drift.
        obs.set_gauge("cluster.loadgen_exact_p50_s", report.quantile(0.50))
        obs.set_gauge("cluster.loadgen_exact_p90_s", report.quantile(0.90))
        obs.set_gauge("cluster.loadgen_exact_p99_s", report.quantile(0.99))
    log.info(
        "loadgen finished",
        extra=obs.fields(
            mode=config.mode,
            chunks=report.chunks_done,
            failed=report.chunks_failed,
            throughput_cps=round(report.throughput_cps, 1),
            p99_ms=round(report.quantile(0.99) * 1e3, 2),
        ),
    )
    return report
