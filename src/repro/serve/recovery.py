"""The auto-resuming client: session streams that survive the network.

A plain :class:`~repro.serve.client.TraceClient` treats a dropped
connection as fatal for its sessions — correctly, because blindly
resending a session chunk could double-advance the server-side FSM
(see the idempotency table in :mod:`repro.serve.protocol`).  The
:class:`ResilientTraceClient` turns that contract into transparent
recovery:

* every ``checkpoint_every`` chunks it asks the server for an
  *exported* checkpoint (``checkpoint`` with ``export: true``) and
  keeps the digest-sealed blob client-side;
* it buffers the ``(values, states)`` tail fed since that checkpoint;
* when the connection dies (drop, corruption, stall past its attempt
  timeout), it reconnects, ``resume``\\ s a fresh session from the blob,
  **replays the tail** and verifies the replayed states are
  byte-identical to what the original stream produced — deterministic
  FSMs make the replay exact, which is what turns a non-idempotent
  stream into an idempotent one;
* only then is the in-flight chunk retried, against FSM state
  bit-identical to the moment before the failure.

Attempts are paced by a shared :class:`~repro.serve.retry.RetryPolicy`
(jittered backoff under an overall deadline budget) and gated by a
:class:`~repro.serve.retry.CircuitBreaker` so a dead server fails fast
instead of eating the whole budget per call.

This is the paper's resync-style recovery lifted one layer up: PR 1's
resilient transcoders re-establish *FSM twin agreement* after a wire
fault; this module re-establishes *client/server session agreement*
after a transport fault, from the same kind of checkpoint state.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from . import protocol
from .client import EncodeStream, TraceClient
from .protocol import ProtocolError
from .retry import CircuitBreaker, RetryPolicy

__all__ = ["ReplayBuffer", "ResilientTraceClient"]

log = obs.get_logger("serve.recovery")

#: Default checkpoint cadence: export every N successfully fed chunks.
DEFAULT_CHECKPOINT_EVERY = 3

#: Error codes recoverable by reconnect → resume → replay (the session
#: is gone or fenced, but the exported checkpoint is still good).
_RESUMABLE_CODES = frozenset({protocol.ERR_NO_SESSION, protocol.ERR_INTERNAL})


@dataclass
class ReplayBuffer:
    """Checkpoint blob + acknowledged-op tail = a rebuildable session.

    The migrate-by-checkpoint primitive, shared by the client side
    (:class:`ResilientTraceClient`) and the cluster router's back side
    (:class:`repro.serve.cluster.ClusterRouter` failing a session over
    to another worker): hold the last *exported* digest-sealed
    checkpoint, log every acknowledged ``encode``/``decode`` op since,
    and rebuild the session anywhere by ``resume`` (or a fresh ``open``
    when nothing was ever exported) followed by :meth:`replay`.

    The replay **verifies**: deterministic FSMs must reproduce the
    original outputs bit-for-bit, so a divergence means the restored
    state is not the state we think it is — that is surfaced as
    ``resume_mismatch``, never papered over.
    """

    checkpoint: Optional[Dict[str, Any]] = None
    #: Acknowledged ops since the checkpoint: ``(op, inputs, outputs)``.
    tail: List[Tuple[str, List[int], List[int]]] = field(default_factory=list)

    @property
    def tail_ops(self) -> int:
        return len(self.tail)

    @property
    def tail_cycles(self) -> int:
        return sum(len(inputs) for _, inputs, _ in self.tail)

    def record(self, op: str, inputs: Sequence[int], outputs: Sequence[int]) -> None:
        """Log one acknowledged session op (``encode`` or ``decode``)."""
        assert op in ("encode", "decode"), f"unreplayable op {op!r}"
        self.tail.append((op, [int(v) for v in inputs], [int(v) for v in outputs]))

    def seal(self, exported: Dict[str, Any]) -> None:
        """Adopt a fresh exported checkpoint; the tail is now redundant."""
        self.checkpoint = exported
        self.tail.clear()

    def clear(self) -> None:
        """Forget everything (the session's history was invalidated)."""
        self.checkpoint = None
        self.tail.clear()

    async def replay(self, stream: EncodeStream) -> int:
        """Re-apply the tail to a freshly resumed/opened stream.

        Returns the number of cycles replayed.  Raises
        :class:`ProtocolError` (``resume_mismatch``) if any replayed
        op's outputs differ from the originally acknowledged ones.
        """
        replayed = 0
        for op, inputs, outputs in self.tail:
            if op == "encode":
                produced = await stream.feed(inputs)
            else:
                produced = await stream.decode(inputs)
            if [int(v) for v in produced] != outputs:
                raise ProtocolError(
                    protocol.ERR_RESUME_MISMATCH,
                    f"replayed {op} tail diverged from the original stream "
                    f"({replayed + len(inputs)} cycles after resume)",
                )
            replayed += len(inputs)
        if replayed:
            obs.inc("serve.client_replayed_cycles", replayed)
        return replayed


class ResilientTraceClient:
    """One logical encode stream that survives connection loss.

    Parameters
    ----------
    host, port:
        The server (or chaos proxy) to connect to.
    coder, width, policy:
        The stream's coder spec, bus width, and optional resilience
        policy — identical to :meth:`TraceClient.open_stream`.
    retry:
        The :class:`RetryPolicy` pacing recovery attempts per
        :meth:`feed` / :meth:`close` call.  Defaults to 8 attempts of
        jittered backoff with no overall deadline.
    breaker:
        Shared :class:`CircuitBreaker`; pass one instance to several
        clients to trip collectively against a dead server.
    checkpoint_every:
        Export a checkpoint every N fed chunks.  Smaller = shorter
        replays after a failure, more checkpoint traffic.
    binary:
        Negotiate binary bulk frames on every (re)connection.  The
        chunks go down the wire as raw word arrays; results are still
        returned as plain int lists, and a server that does not
        advertise ``binary_frames`` silently leaves the connection on
        JSON — resilience semantics are framing-independent.
    """

    def __init__(
        self,
        host: str,
        port: int,
        coder: str,
        width: int = 32,
        policy: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        binary: bool = False,
    ):
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.host = host
        self.port = port
        self.coder = coder
        self.width = width
        self.policy = policy
        self.retry = retry if retry is not None else RetryPolicy(
            attempts=8, base_backoff_s=0.02, max_backoff_s=0.5
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=8, reset_timeout_s=0.2
        )
        self.checkpoint_every = int(checkpoint_every)
        self.binary = bool(binary)
        self._client: Optional[TraceClient] = None
        self._stream: Optional[EncodeStream] = None
        self._buffer = ReplayBuffer()
        self._since_ckpt = 0
        #: Recovery telemetry (also mirrored to ``serve.client_*`` obs).
        self.resumes = 0
        self.reconnects = 0
        self.cycles = 0

    @property
    def session_id(self) -> Optional[int]:
        """The live server-side session id, or None between connections.

        Against a cluster router this is the *cluster* session id — the
        stable identity the soak uses to find which worker currently
        hosts the stream (and SIGKILL it).
        """
        return self._stream.session_id if self._stream is not None else None

    # -- lifecycle ----------------------------------------------------

    async def _teardown(self) -> None:
        client, self._client, self._stream = self._client, None, None
        if client is not None:
            try:
                await client.close()
            except (ConnectionError, OSError):  # pragma: no cover - defensive
                pass

    async def close(self) -> None:
        """Close the stream (best-effort) and the connection."""
        stream, client = self._stream, self._client
        if stream is not None and client is not None:
            try:
                # Bounded: a hostile network must never hang shutdown —
                # the server reaps the session with the connection.
                await asyncio.wait_for(stream.close(), timeout=2.0)
            except (ProtocolError, ConnectionError, OSError, asyncio.TimeoutError):
                pass
        await self._teardown()

    async def __aenter__(self) -> "ResilientTraceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- session establishment ----------------------------------------

    async def _ensure_session(self) -> EncodeStream:
        """Connect + open/resume + replay, transactionally.

        Any failure tears the connection down entirely, so a half-
        established session can never be fed: the server drops session
        state with the connection, and the next attempt starts clean.
        """
        if self._stream is not None:
            return self._stream
        client = await TraceClient.connect(self.host, self.port)
        try:
            if self.binary:
                # Re-negotiated on every reconnection: the replacement
                # server (post-failover) may or may not speak binary,
                # and either answer is fine.
                await client.negotiate_binary()
            if self._buffer.checkpoint is not None:
                stream = await client.resume_stream(
                    self._buffer.checkpoint, coder=self.coder, width=self.width
                )
                self.resumes += 1
                obs.inc("serve.client_resumes", coder=self.coder)
                log.info(
                    "session resumed",
                    extra=obs.fields(
                        coder=self.coder, cycles=stream.cycles, session=stream.session_id
                    ),
                )
            else:
                stream = await client.open_stream(
                    self.coder, self.width, policy=self.policy
                )
            # Replay what was fed after the checkpoint.  The FSMs are
            # deterministic, so the replay must reproduce the original
            # states bit-for-bit (ReplayBuffer verifies; a divergence
            # raises `resume_mismatch` rather than streaming on from
            # state we cannot trust).
            await self._buffer.replay(stream)
        except BaseException:
            await client.close()
            raise
        self._client, self._stream = client, stream
        return stream

    # -- the one public verb ------------------------------------------

    async def feed(self, values: Sequence[int]) -> List[int]:
        """Stream-encode one chunk, surviving transport faults.

        Returns the chunk's wire states — bit-identical to what an
        uninterrupted session would have produced, regardless of how
        many reconnect/resume/replay rounds happened underneath.
        """
        chunk = [int(v) for v in values]
        state = self.retry.start(key=self.cycles)
        while True:
            self.breaker.before_attempt()  # CircuitOpenError: fail fast
            state.begin_attempt()
            timeout = state.attempt_timeout()  # RetryBudgetExceeded: give up
            try:
                if timeout is None:
                    states = await self._feed_once(chunk)
                else:
                    states = await asyncio.wait_for(self._feed_once(chunk), timeout)
            except ProtocolError as exc:
                if exc.code == protocol.ERR_BUSY:
                    # Backpressure: the server is alive and never
                    # admitted the request; back off, don't trip the
                    # breaker, retry the same attempt loop.
                    self.breaker.record_success()
                    obs.inc("serve.client_backoffs")
                    last_error: BaseException = exc
                elif exc.code in _RESUMABLE_CODES:
                    # Session gone (reaped / server restart) or fenced
                    # (quarantine): the connection may be fine but the
                    # session is not — re-establish from checkpoint.
                    await self._teardown()
                    obs.inc("serve.client_session_lost", code=exc.code)
                    last_error = exc
                else:
                    raise  # contract violations are not retryable
            except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
                self.breaker.record_failure()
                self.reconnects += 1
                obs.inc("serve.client_reconnects", coder=self.coder)
                await self._teardown()
                last_error = exc
            else:
                self.breaker.record_success()
                self._buffer.record("encode", chunk, states)
                self.cycles += len(chunk)
                self._since_ckpt += 1
                if self._since_ckpt >= self.checkpoint_every:
                    await self._maybe_checkpoint()
                return [int(s) for s in states]
            if not state.more_attempts():
                raise last_error
            await asyncio.sleep(state.next_backoff())

    async def _feed_once(self, chunk: List[int]) -> List[int]:
        stream = await self._ensure_session()
        return await stream.feed(chunk)

    async def _maybe_checkpoint(self) -> None:
        """Export a checkpoint, best-effort.

        A failure here never fails the stream: the data chunks are
        already acknowledged, the old checkpoint + a longer tail still
        recover.  A transport failure does tear the connection down so
        the next :meth:`feed` re-establishes it.
        """
        stream = self._stream
        if stream is None:  # pragma: no cover - defensive
            return
        try:
            _, exported = await stream.checkpoint(export=True)
        except ProtocolError as exc:
            if exc.code == protocol.ERR_BUSY:
                return  # overloaded; try again after the next chunk
            await self._teardown()
            return
        except (asyncio.TimeoutError, ConnectionError, OSError):
            self.breaker.record_failure()
            await self._teardown()
            return
        self._buffer.seal(exported)
        self._since_ckpt = 0
        obs.inc("serve.client_checkpoints", coder=self.coder)
