"""The chaos soak: resilient clients vs. a hostile network, end to end.

``repro chaos-soak`` is the serving layer's acceptance harness, the
analogue of PR 1's savings-vs-BER sweep for the transport layer: a
*real* :class:`~repro.serve.server.TraceServer` behind a seeded
:class:`~repro.serve.chaos.ChaosProxy` (scheduled connection drops,
frame corruption, stalls, partial writes, response reordering), with N
concurrent :class:`~repro.serve.recovery.ResilientTraceClient` streams
driving it.  The run passes only if:

* **every** completed stream's wire states are byte-identical to the
  fault-free library encode of the same trace (the chaos layer may
  delay or destroy *connections*, never *data*);
* at least one session **resume** was observed (the fault schedule
  guarantees cuts, so zero resumes means resumption silently did not
  engage);
* at least one **shed/busy** rejection was observed (the overload
  phase floods a paused engine past its queue bound);
* the server **drains cleanly** (``drained`` and ``outstanding == 0``
  in the stop report).

Determinism: every fault model is a pure FSM of ``(seed, frame
index)``, connection cuts are *scheduled* at fixed frame indices (late
enough that a checkpoint export has always happened), and the overload
phase floods a deliberately paused engine — so the pass/fail verdict
is a function of the seed, not of scheduler luck.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .. import obs
from ..coding.specs import parse_coder_spec
from ..faults.transport import (
    ComposeTransport,
    ConnectionDrop,
    CorruptFrame,
    PartialWrite,
    ReorderFrames,
    StallFrames,
    TransportFault,
)
from ..workloads import locality_trace
from . import protocol
from .chaos import ChaosProxy
from .client import TraceClient
from .recovery import ResilientTraceClient
from .retry import CircuitBreaker, RetryPolicy
from .server import TraceServer

__all__ = ["SoakConfig", "SoakReport", "run_soak"]

log = obs.get_logger("serve.soak")

#: Coder specs cycled across the soak streams — the stateful families
#: included, so resumption genuinely restores non-trivial FSM state.
SOAK_SPECS = ("window8", "fcm", "stride4", "transition", "invert", "last")


@dataclass(frozen=True)
class SoakConfig:
    """One soak scenario; every field participates in determinism."""

    clients: int = 8  #: concurrent resilient streams (acceptance: >= 8)
    cycles: int = 600  #: trace length per stream
    chunk: int = 60  #: values per streamed chunk
    width: int = 16  #: bus width
    seed: int = 0  #: master seed for traces and fault models
    checkpoint_every: int = 3  #: client checkpoint-export cadence
    queue_limit: int = 16  #: server queue bound (shed threshold)
    batch_limit: int = 8
    request_timeout_s: float = 30.0
    session_idle_timeout_s: float = 30.0
    attempt_timeout_s: float = 2.0  #: client per-attempt timeout
    deadline_s: float = 60.0  #: client per-chunk overall budget
    drain_timeout_s: float = 10.0
    #: Scheduled c2s connection cut: frame ``cut_at + (index % cut_spread)``
    #: of every proxied connection.  Late enough that the first exported
    #: checkpoint (open + 3 chunks + export = 5 frames) already exists.
    cut_at: int = 9
    cut_spread: int = 4
    stall_rate: float = 0.05
    stall_s: float = 0.02
    corrupt_rate: float = 0.03  #: s2c frame corruption probability
    partial_rate: float = 0.04  #: c2s split-frame probability
    truncate_rate: float = 0.02  #: s2c died-mid-write probability
    reorder_rate: float = 0.03  #: s2c adjacent-reorder probability

    @classmethod
    def quick(cls, seed: int = 0, clients: int = 8) -> "SoakConfig":
        """The CI profile: small traces, same fault coverage."""
        return cls(clients=clients, cycles=360, chunk=40, seed=seed)


@dataclass
class SoakReport:
    """What the soak observed; :attr:`ok` is the pass/fail verdict."""

    ok: bool = False
    clients: int = 0
    streams_verified: int = 0
    mismatches: List[str] = field(default_factory=list)
    resumes: int = 0
    reconnects: int = 0
    replayed_ok: bool = True
    sheds: int = 0
    drain: Dict[str, Any] = field(default_factory=dict)
    chaos: Dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0
    failures: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "clients": self.clients,
            "streams_verified": self.streams_verified,
            "mismatches": list(self.mismatches),
            "resumes": self.resumes,
            "reconnects": self.reconnects,
            "sheds": self.sheds,
            "drain": dict(self.drain),
            "chaos": dict(self.chaos),
            "elapsed_s": round(self.elapsed_s, 3),
            "failures": list(self.failures),
        }


def _client_faults(config: SoakConfig) -> Any:
    """c2s fault factory: scheduled cuts + stalls + benign splits."""

    def factory(index: int) -> TransportFault:
        return ComposeTransport(
            ConnectionDrop(
                at_frames=(config.cut_at + (index % config.cut_spread),)
            ),
            StallFrames(
                rate=config.stall_rate,
                delay_s=config.stall_s,
                seed=config.seed * 7919 + index * 2 + 1,
            ),
            PartialWrite(
                rate=config.partial_rate,
                seed=config.seed * 6101 + index * 2 + 1,
                truncate=False,
            ),
        )

    return factory


def _server_faults(config: SoakConfig) -> Any:
    """s2c fault factory: corruption + truncation + stalls + reorder.

    Corruption lives on the *response* path only: a corrupted response
    is detected immediately by the client's receive loop (undecodable
    frame → connection declared broken → resume), whereas a corrupted
    *request* would be answered with a null id the client cannot
    correlate — a hang, not a fault model.
    """

    def factory(index: int) -> TransportFault:
        return ComposeTransport(
            CorruptFrame(
                rate=config.corrupt_rate,
                seed=config.seed * 7907 + index * 2,
                nbytes=2,
            ),
            PartialWrite(
                rate=config.truncate_rate,
                seed=config.seed * 6311 + index * 2,
                truncate=True,
            ),
            StallFrames(
                rate=config.stall_rate,
                delay_s=config.stall_s,
                seed=config.seed * 7919 + index * 2,
            ),
            ReorderFrames(
                rate=config.reorder_rate, seed=config.seed * 5987 + index * 2
            ),
        )

    return factory


async def _stream_one(
    config: SoakConfig, host: str, port: int, index: int, report: SoakReport
) -> None:
    """One resilient stream: feed chunks through chaos, verify bytes."""
    spec = SOAK_SPECS[index % len(SOAK_SPECS)]
    trace = locality_trace(
        config.cycles, width=config.width, seed=config.seed * 1000 + 17 * index + 5
    )
    values = [int(v) for v in trace.values]
    client = ResilientTraceClient(
        host,
        port,
        coder=spec,
        width=config.width,
        retry=RetryPolicy(
            attempts=16,
            base_backoff_s=0.02,
            max_backoff_s=0.5,
            attempt_timeout_s=config.attempt_timeout_s,
            deadline_s=config.deadline_s,
            seed=config.seed * 31 + index,
        ),
        breaker=CircuitBreaker(failure_threshold=12, reset_timeout_s=0.1),
        checkpoint_every=config.checkpoint_every,
    )
    states: List[int] = []
    try:
        for start in range(0, len(values), config.chunk):
            states.extend(await client.feed(values[start : start + config.chunk]))
    finally:
        await client.close()
        report.resumes += client.resumes
        report.reconnects += client.reconnects
    expected = parse_coder_spec(spec, config.width).encode_trace(trace)
    if np.array_equal(np.asarray(states, dtype=np.uint64), expected.values):
        report.streams_verified += 1
    else:
        report.mismatches.append(
            f"stream {index} ({spec}): {len(states)} streamed cycles diverged "
            f"from the fault-free encode"
        )


async def _provoke_shed(
    config: SoakConfig, server: TraceServer, report: SoakReport
) -> None:
    """Deterministically overload the bounded queue; count sheds.

    The engine is paused first, so admission outruns service by
    construction — flooding ``2 * queue_limit + 4`` requests *must*
    shed at least ``queue_limit + 4`` of them, independent of timing.
    The flood talks to the server directly (not through the proxy):
    overload is a server property, not a network one.
    """
    engine = server.engine
    engine.pause()
    client = await TraceClient.connect(server.host, server.port)
    try:
        flood = [
            asyncio.ensure_future(client.request("hello"))
            for _ in range(2 * engine.queue_limit + 4)
        ]
        await asyncio.sleep(0.1)  # let rejections land
        engine.resume()
        responses = await asyncio.gather(*flood)
        report.sheds += sum(
            1
            for r in responses
            if not r.get("ok") and r["error"]["code"] == protocol.ERR_BUSY
        )
    finally:
        await client.close()


async def run_soak(config: SoakConfig) -> SoakReport:
    """Run one soak scenario; returns its :class:`SoakReport`."""
    report = SoakReport(clients=config.clients)
    t0 = time.monotonic()
    server = TraceServer(
        port=0,
        queue_limit=config.queue_limit,
        batch_limit=config.batch_limit,
        request_timeout_s=config.request_timeout_s,
        session_idle_timeout_s=config.session_idle_timeout_s,
    )
    await server.start()
    proxy = ChaosProxy(
        server.host,
        server.port,
        client_faults=_client_faults(config),
        server_faults=_server_faults(config),
    )
    await proxy.start()
    try:
        # Phase 1: N concurrent resilient streams through the chaos.
        outcomes = await asyncio.gather(
            *(
                _stream_one(config, proxy.host, proxy.port, i, report)
                for i in range(config.clients)
            ),
            return_exceptions=True,
        )
        for i, outcome in enumerate(outcomes):
            if isinstance(outcome, BaseException):
                report.failures.append(
                    f"stream {i}: {type(outcome).__name__}: {outcome}"
                )
        # Phase 2: deterministic overload against the server itself.
        try:
            await _provoke_shed(config, server, report)
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            report.failures.append(f"shed phase: {type(exc).__name__}: {exc}")
    finally:
        await proxy.stop()
        # Phase 3: the server must drain cleanly under a bounded budget.
        report.drain = await server.stop(config.drain_timeout_s)
    report.chaos = proxy.stats.as_dict()
    report.elapsed_s = time.monotonic() - t0
    obs.inc("soak.runs")
    obs.inc("soak.resumes_observed", report.resumes)
    obs.inc("soak.sheds_observed", report.sheds)

    # -- the verdict ---------------------------------------------------
    if report.streams_verified != config.clients:
        report.failures.append(
            f"only {report.streams_verified}/{config.clients} streams verified "
            f"byte-identical"
        )
    report.failures.extend(report.mismatches)
    if report.resumes < 1:
        report.failures.append(
            "no session resume observed (cuts are scheduled; resumption "
            "did not engage)"
        )
    if report.sheds < 1:
        report.failures.append("no shed/busy rejection observed under overload")
    if not report.drain.get("drained") or report.drain.get("outstanding"):
        report.failures.append(f"server did not drain cleanly: {report.drain}")
    report.ok = not report.failures
    log.info(
        "soak finished",
        extra=obs.fields(
            ok=report.ok,
            verified=report.streams_verified,
            resumes=report.resumes,
            sheds=report.sheds,
            elapsed_s=round(report.elapsed_s, 2),
        ),
    )
    return report
