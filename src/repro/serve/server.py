"""Asyncio TCP frontend over the :class:`~repro.serve.engine.ServeEngine`.

One :class:`TraceServer` owns one engine and one listening socket.  The
transport layer is deliberately thin: read a frame (newline-JSON or
length-prefixed binary — :func:`repro.serve.protocol.read_frame` tells
them apart by the first byte), decode it, hand it to the engine, write
the response framed the same way the request arrived.  Everything
interesting — sessions, batching, backpressure, deadlines — lives in
the engine, which is what makes the serving behaviour unit-testable
without sockets.

Connection model: each accepted connection gets a process-unique id;
sessions opened over it are keyed under that id and die with it
(:meth:`ServeEngine.drop_connection`), so an abandoned client can never
leak FSM state server-side.  Responses to one connection are written
in completion order; request ids (chosen by the client) are what
correlates them — a client may pipeline requests freely.

Shutdown: :meth:`TraceServer.stop` closes the listener (no new
connections), then drains the engine.  In-flight requests get
``drain_timeout_s`` to complete; stragglers are answered ``shutdown``
(the server abandoned them — a different promise than ``timeout``)
and connections observe EOF.  :meth:`stop` returns the engine's drain
report.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from .. import obs
from . import protocol
from .engine import ServeEngine
from .protocol import ProtocolError

__all__ = ["TraceServer"]

log = obs.get_logger("serve.server")

DEFAULT_HOST = "127.0.0.1"


class TraceServer:
    """The asyncio trace-serving frontend (``repro serve``).

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` picks an ephemeral port (tests);
        read it back from :attr:`port` after :meth:`start`.
    engine:
        A pre-configured :class:`ServeEngine`, or None to build one
        from ``engine_kwargs`` (``queue_limit``, ``batch_limit``,
        ``request_timeout_s``, ``sweep_workers``).
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = 0,
        engine: Optional[ServeEngine] = None,
        **engine_kwargs,
    ):
        self.host = host
        self._requested_port = port
        self.engine = engine if engine is not None else ServeEngine(**engine_kwargs)
        self._server: Optional[asyncio.AbstractServer] = None
        self._next_connection = 1
        self._open_connections = 0

    # -- lifecycle ----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the socket and start the engine."""
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        log.info(
            "serving",
            extra=obs.fields(host=self.host, port=self.port),
        )

    async def stop(self, drain_timeout_s: float = 5.0) -> dict:
        """Stop accepting, drain the engine, release the socket.

        Returns the engine's drain report (see
        :meth:`ServeEngine.stop`); the chaos soak asserts ``drained``
        and ``outstanding == 0`` as its clean-shutdown criterion.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        return await self.engine.stop(drain_timeout_s)

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "TraceServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- per-connection loop ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection_id = self._next_connection
        self._next_connection += 1
        self._open_connections += 1
        obs.inc("serve.connections")
        obs.set_gauge("serve.open_connections", self._open_connections)
        write_lock = asyncio.Lock()  # responses interleave task-safely
        pending: "set[asyncio.Task[None]]" = set()

        async def respond(response, bulk_field=None, op="?") -> None:
            # Responses mirror the request's framing: only a request
            # that itself arrived binary gets a binary bulk response
            # (and only when the op produced its bulk field — error
            # responses stay JSON).  Serialization is timed per op and
            # framing kind — the "how much of request_s is framing"
            # segment of the latency-attribution histograms.
            if bulk_field is not None and bulk_field in response:
                with obs.timed("serve.serialize_s", framing="binary", op=op):
                    frame = protocol.encode_binary_frame(
                        response, bulk_field, response[bulk_field]
                    )
            else:
                with obs.timed("serve.serialize_s", framing="json", op=op):
                    frame = protocol.encode_frame(response)
            async with write_lock:
                writer.write(frame)
                await writer.drain()

        async def process(message, bulk_field) -> None:
            response = await self.engine.handle(connection_id, message)
            op = message.get("op")
            await respond(
                response, bulk_field, op=op if isinstance(op, str) else "?"
            )

        try:
            while True:
                try:
                    raw = await protocol.read_frame(reader)
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ):
                    # Framing is lost (overlong line, or a binary frame
                    # truncated / declaring an oversize body): answer
                    # once and drop the connection.
                    await respond(
                        protocol.error_response(
                            None, protocol.ERR_BAD_REQUEST, "oversized or truncated frame"
                        )
                    )
                    break
                if not raw:
                    break  # EOF: client is done
                if not raw.strip():
                    continue  # tolerate keep-alive blank lines
                try:
                    message = protocol.decode_any_frame(raw)
                except ProtocolError as exc:
                    # Frame boundaries are intact (a corrupted binary
                    # frame fails its CRC *after* being read whole), so
                    # this is per-request: report and keep serving.
                    await respond(protocol.error_response(None, exc.code, exc.args[0]))
                    continue
                bulk_field = (
                    protocol.response_bulk_field(message)
                    if protocol.is_binary_frame(raw)
                    else None
                )
                # Pipelining: admit the request now, let the response
                # land whenever the engine finishes it.
                task = asyncio.ensure_future(process(message, bulk_field))
                pending.add(task)
                task.add_done_callback(pending.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-write; sessions are dropped below
        except asyncio.CancelledError:
            pass  # server shutting down mid-read; fall through to cleanup
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self.engine.drop_connection(connection_id)
            self._open_connections -= 1
            obs.set_gauge("serve.open_connections", self._open_connections)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
