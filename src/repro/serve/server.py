"""Asyncio TCP frontend over the :class:`~repro.serve.engine.ServeEngine`.

One :class:`TraceServer` owns one engine and one listening socket.  The
transport layer is deliberately thin: read a line, decode the frame,
hand it to the engine, write the response line.  Everything
interesting — sessions, batching, backpressure, deadlines — lives in
the engine, which is what makes the serving behaviour unit-testable
without sockets.

Connection model: each accepted connection gets a process-unique id;
sessions opened over it are keyed under that id and die with it
(:meth:`ServeEngine.drop_connection`), so an abandoned client can never
leak FSM state server-side.  Responses to one connection are written
in completion order; request ids (chosen by the client) are what
correlates them — a client may pipeline requests freely.

Shutdown: :meth:`TraceServer.stop` closes the listener (no new
connections), then drains the engine.  In-flight requests get
``drain_timeout_s`` to complete; stragglers are answered ``shutdown``
(the server abandoned them — a different promise than ``timeout``)
and connections observe EOF.  :meth:`stop` returns the engine's drain
report.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from .. import obs
from . import protocol
from .engine import ServeEngine
from .protocol import ProtocolError

__all__ = ["TraceServer"]

log = obs.get_logger("serve.server")

DEFAULT_HOST = "127.0.0.1"


class TraceServer:
    """The asyncio trace-serving frontend (``repro serve``).

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` picks an ephemeral port (tests);
        read it back from :attr:`port` after :meth:`start`.
    engine:
        A pre-configured :class:`ServeEngine`, or None to build one
        from ``engine_kwargs`` (``queue_limit``, ``batch_limit``,
        ``request_timeout_s``, ``sweep_workers``).
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = 0,
        engine: Optional[ServeEngine] = None,
        **engine_kwargs,
    ):
        self.host = host
        self._requested_port = port
        self.engine = engine if engine is not None else ServeEngine(**engine_kwargs)
        self._server: Optional[asyncio.AbstractServer] = None
        self._next_connection = 1
        self._open_connections = 0

    # -- lifecycle ----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the socket and start the engine."""
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        log.info(
            "serving",
            extra=obs.fields(host=self.host, port=self.port),
        )

    async def stop(self, drain_timeout_s: float = 5.0) -> dict:
        """Stop accepting, drain the engine, release the socket.

        Returns the engine's drain report (see
        :meth:`ServeEngine.stop`); the chaos soak asserts ``drained``
        and ``outstanding == 0`` as its clean-shutdown criterion.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        return await self.engine.stop(drain_timeout_s)

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "TraceServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- per-connection loop ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection_id = self._next_connection
        self._next_connection += 1
        self._open_connections += 1
        obs.inc("serve.connections")
        obs.set_gauge("serve.open_connections", self._open_connections)
        write_lock = asyncio.Lock()  # responses interleave task-safely
        pending: "set[asyncio.Task[None]]" = set()

        async def respond(response) -> None:
            async with write_lock:
                writer.write(protocol.encode_frame(response))
                await writer.drain()

        async def process(message) -> None:
            response = await self.engine.handle(connection_id, message)
            await respond(response)

        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ):
                    await respond(
                        protocol.error_response(
                            None, protocol.ERR_BAD_REQUEST, "oversized or truncated frame"
                        )
                    )
                    break
                if not line:
                    break  # EOF: client is done
                if not line.strip():
                    continue  # tolerate keep-alive blank lines
                try:
                    message = protocol.decode_frame(line)
                except ProtocolError as exc:
                    await respond(protocol.error_response(None, exc.code, exc.args[0]))
                    continue
                # Pipelining: admit the request now, let the response
                # land whenever the engine finishes it.
                task = asyncio.ensure_future(process(message))
                pending.add(task)
                task.add_done_callback(pending.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-write; sessions are dropped below
        except asyncio.CancelledError:
            pass  # server shutting down mid-read; fall through to cleanup
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self.engine.drop_connection(connection_id)
            self._open_connections -= 1
            obs.set_gauge("serve.open_connections", self._open_connections)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
